//! The network front end: a bounded thread-pool TCP server exposing a
//! [`SearchServer`] over the framed wire protocol of [`crate::proto`].
//!
//! ## Architecture
//!
//! One accept thread pushes connections into a bounded crossbeam
//! channel; a fixed pool of worker threads pops them and runs one
//! connection each to completion (handshake, then a request/response
//! loop). When the queue is full the accept thread answers the
//! connection with a [`ErrorKind::Busy`] error frame and drops it —
//! backpressure is explicit, never an unbounded thread spawn.
//!
//! ## Timeouts and shutdown
//!
//! Worker sockets run with a short poll interval so a blocked read can
//! observe the shutdown flag. The read deadline is armed only once the
//! first byte of a frame arrives: an idle keep-alive connection may
//! sit forever, but a peer that starts a frame must finish it within
//! [`NetServerConfig::read_timeout`]. On [`NetServer::shutdown`] the
//! listener stops accepting, queued-but-unstarted connections are
//! answered with [`ErrorKind::Shutdown`], and connections mid-request
//! finish their in-flight request before closing — no accepted request
//! is ever dropped.

use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel;
use tdess_core::{DbError, QueryMode, SearchServer, Weights};
use tdess_features::{FeatureKind, FeatureSet};
use tdess_obs::{event, FlightRecorder, RecorderConfig, TraceGuard};

use crate::proto::{
    decode, decode_request, encode, write_frame, ErrorKind, ErrorReply, Hello, HitsReport,
    InfoReport, Request, Response, StageStats, StatsReport, TracesReport, TransportStats,
    WireError, DEFAULT_MAX_FRAME_LEN, MAGIC, PROTOCOL_VERSION,
};

/// Event target for this module's structured log events.
const TARGET: &str = "tdess_net::server";

/// Tuning knobs for a [`NetServer`].
#[derive(Debug, Clone)]
pub struct NetServerConfig {
    /// Worker threads; each runs one connection at a time.
    pub workers: usize,
    /// Accepted connections waiting for a free worker; beyond this the
    /// server answers [`ErrorKind::Busy`].
    pub queue_depth: usize,
    /// Time budget for a peer to deliver a frame once its first byte
    /// has arrived. Idle time between frames is not limited.
    pub read_timeout: Duration,
    /// Socket write timeout for response frames.
    pub write_timeout: Duration,
    /// Hard cap on a frame's payload length.
    pub max_frame_len: usize,
    /// How often a blocked read wakes to check the shutdown flag.
    pub poll_interval: Duration,
    /// Requests slower than this emit a warn-level slow-query event
    /// carrying the request's trace id, and are always retained by the
    /// flight recorder (the tail sampler's "slow" class).
    pub slow_request: Duration,
    /// Flight-recorder ring capacity in traces.
    pub trace_capacity: usize,
    /// Keep one in this many unremarkable traces (slow and error
    /// traces are always kept); `0` or `1` keeps every trace.
    pub trace_sample_one_in: u64,
}

impl Default for NetServerConfig {
    fn default() -> NetServerConfig {
        NetServerConfig {
            workers: 4,
            queue_depth: 64,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            poll_interval: Duration::from_millis(25),
            slow_request: Duration::from_secs(1),
            trace_capacity: 128,
            trace_sample_one_in: 16,
        }
    }
}

/// Lock-free transport counters, snapshotted into
/// [`TransportStats`] for `Stats` responses.
#[derive(Debug, Default)]
pub struct TransportCounters {
    connections_accepted: AtomicU64,
    connections_rejected: AtomicU64,
    frames_decoded: AtomicU64,
    decode_errors: AtomicU64,
    requests_served: AtomicU64,
}

impl TransportCounters {
    /// A consistent-enough copy for reporting (individual counters are
    /// read independently; exact cross-counter consistency is not
    /// promised).
    pub fn snapshot(&self) -> TransportStats {
        TransportStats {
            connections_accepted: Self::load(&self.connections_accepted),
            connections_rejected: Self::load(&self.connections_rejected),
            frames_decoded: Self::load(&self.frames_decoded),
            decode_errors: Self::load(&self.decode_errors),
            requests_served: Self::load(&self.requests_served),
        }
    }

    /// All cells are pure event counters: each is complete in itself,
    /// publishes no other memory, and `snapshot` documents that
    /// cross-counter consistency is not promised — so Relaxed is the
    /// correct ordering on both sides.
    fn load(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed) // audit: ordering(pure event counter; no data published, loose snapshot documented)
    }

    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed); // audit: ordering(pure event counter; atomic RMW loses no increments, no data published)
    }
}

/// State shared by the accept thread and all workers.
struct NetShared {
    search: SearchServer,
    cfg: NetServerConfig,
    shutdown: AtomicBool,
    counters: TransportCounters,
    /// Completed request traces under tail-based sampling, served by
    /// the `Traces` wire request and the `/traces` metrics route.
    recorder: Arc<FlightRecorder>,
    /// Receiver clone used only to observe the waiting-connection
    /// count for the metrics page; workers hold their own clones, so
    /// this one never gates shutdown (that is keyed on the Senders).
    queue: channel::Receiver<TcpStream>,
}

/// A running TCP front end over a [`SearchServer`]. Dropping the
/// handle shuts the server down gracefully.
pub struct NetServer {
    shared: Arc<NetShared>,
    local_addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl NetServer {
    /// Binds `addr` and starts the accept thread plus worker pool.
    /// Pass port 0 to bind an ephemeral port; [`NetServer::local_addr`]
    /// reports the actual one.
    pub fn bind(
        addr: impl ToSocketAddrs,
        search: SearchServer,
        cfg: NetServerConfig,
    ) -> std::io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let (tx, rx) = channel::bounded::<TcpStream>(cfg.queue_depth.max(1));
        let shared = Arc::new(NetShared {
            search,
            cfg: cfg.clone(),
            shutdown: AtomicBool::new(false),
            counters: TransportCounters::default(),
            recorder: Arc::new(FlightRecorder::new(RecorderConfig {
                capacity: cfg.trace_capacity,
                slow: cfg.slow_request,
                sample_one_in: cfg.trace_sample_one_in,
            })),
            queue: rx.clone(),
        });

        let mut workers = Vec::with_capacity(cfg.workers.max(1));
        for i in 0..cfg.workers.max(1) {
            let rx = rx.clone();
            let shared = Arc::clone(&shared);
            let handle = std::thread::Builder::new()
                .name(format!("tdess-net-worker-{i}"))
                .spawn(move || worker_loop(&rx, &shared))?;
            workers.push(handle);
        }
        drop(rx);

        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("tdess-net-accept".to_string())
            .spawn(move || accept_loop(&listener, &tx, &accept_shared))?;

        event!(
            Info,
            TARGET,
            "server listening on {local_addr} with {} workers",
            cfg.workers.max(1)
        );
        Ok(NetServer {
            shared,
            local_addr,
            accept_thread: Some(accept_thread),
            workers,
        })
    }

    /// The address the listener is bound to.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A snapshot of the transport counters.
    pub fn transport_stats(&self) -> TransportStats {
        self.shared.counters.snapshot()
    }

    /// Graceful shutdown: stop accepting, drain the queue (answering
    /// not-yet-started connections with [`ErrorKind::Shutdown`]), let
    /// every in-flight request finish, and join all threads. Idempotent.
    pub fn shutdown(&mut self) {
        let already_down = self.shared.shutdown.swap(true, Ordering::AcqRel);
        if !already_down {
            event!(Info, TARGET, "shutdown requested for {}", self.local_addr);
        }
        // Unblock the accept loop with a throwaway connection; if the
        // listener already failed this is a harmless refused dial.
        let _ = TcpStream::connect_timeout(&self.local_addr, Duration::from_millis(250));
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        // The accept thread dropped the Sender; workers drain the
        // queue and exit on the resulting channel disconnect.
        let had_workers = !self.workers.is_empty();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        if had_workers {
            event!(Info, TARGET, "server on {} stopped", self.local_addr);
        }
    }

    /// Number of accepted connections waiting for a free worker.
    pub fn queue_len(&self) -> usize {
        self.shared.queue.len()
    }

    /// Renders the current Prometheus metrics page (text exposition
    /// format 0.0.4): transport counters, queue depth, query/latency
    /// summaries with p50/p90/p99, and per-extraction-stage histograms.
    pub fn metrics_page(&self) -> String {
        render_metrics(&self.shared)
    }

    /// A closure rendering [`NetServer::metrics_page`] that holds only
    /// the shared state — hand it to a
    /// [`crate::metrics::MetricsServer`] so the exposition endpoint
    /// outlives borrows of the `NetServer` handle itself.
    pub fn metrics_renderer(&self) -> Arc<dyn Fn() -> String + Send + Sync> {
        let shared = Arc::clone(&self.shared);
        Arc::new(move || render_metrics(&shared))
    }

    /// The server's flight recorder — share it with a
    /// [`crate::metrics::MetricsServer`] so the `/traces` route reads
    /// the same ring the `Traces` wire request serves.
    pub fn recorder(&self) -> Arc<FlightRecorder> {
        Arc::clone(&self.shared.recorder)
    }
}

/// Builds the Prometheus exposition text for one server's state.
fn render_metrics(shared: &NetShared) -> String {
    let mut page = tdess_obs::PromText::new();
    let metrics = shared.search.metrics();
    let transport = shared.counters.snapshot();
    page.counter(
        "tdess_queries_served_total",
        "Search queries executed by the core server.",
        metrics.queries_served,
    );
    page.counter(
        "tdess_snapshot_swaps_total",
        "Copy-on-write database snapshot publications.",
        metrics.snapshot_swaps,
    );
    page.counter(
        "tdess_connections_accepted_total",
        "TCP connections handed to a worker.",
        transport.connections_accepted,
    );
    page.counter(
        "tdess_connections_rejected_total",
        "TCP connections turned away (queue full or shutdown).",
        transport.connections_rejected,
    );
    page.counter(
        "tdess_frames_decoded_total",
        "Wire frames decoded successfully.",
        transport.frames_decoded,
    );
    page.counter(
        "tdess_decode_errors_total",
        "Frames rejected as malformed, oversized, or truncated.",
        transport.decode_errors,
    );
    page.counter(
        "tdess_requests_served_total",
        "Requests answered with a response frame.",
        transport.requests_served,
    );
    page.gauge(
        "tdess_shapes",
        "Shapes in the current database snapshot.",
        shared.search.len() as f64,
    );
    page.gauge(
        "tdess_queue_depth",
        "Accepted connections waiting for a free worker.",
        shared.queue.len() as f64,
    );
    let lat = shared.search.latency_snapshots();
    page.summary(
        "tdess_one_shot_latency_seconds",
        "One-shot query latency.",
        &lat.one_shot,
    );
    page.summary(
        "tdess_multi_step_latency_seconds",
        "Multi-step query latency.",
        &lat.multi_step,
    );
    page.summary(
        "tdess_transport_latency_seconds",
        "Per-request transport latency (decode to response sent).",
        &lat.transport,
    );
    let stages = tdess_obs::stage_snapshots();
    let labeled: Vec<(&str, tdess_obs::HistogramSnapshot)> = stages
        .into_iter()
        .map(|(stage, snap)| (stage.name(), snap))
        .collect();
    page.stage_histograms(
        "tdess_stage_duration_seconds",
        "Pipeline stage durations, labeled by stage.",
        &labeled,
    );
    // Extraction-cache families only exist when the server runs one,
    // so a scrape distinguishes "cache off" from "cache cold".
    if let Some(cache) = shared.search.cache_stats() {
        page.counter(
            "tdess_cache_hits_total",
            "Query extractions answered from the feature cache.",
            cache.hits,
        );
        page.counter(
            "tdess_cache_misses_total",
            "Query extractions actually run (cache misses).",
            cache.misses,
        );
        page.counter(
            "tdess_cache_coalesced_waits_total",
            "Queries that waited on another query's in-flight extraction.",
            cache.coalesced_waits,
        );
        page.counter(
            "tdess_cache_evictions_total",
            "Cache entries evicted to stay inside the byte budget.",
            cache.evictions,
        );
        page.gauge(
            "tdess_cache_resident_bytes",
            "Bytes of feature vectors currently cached.",
            cache.resident_bytes as f64,
        );
        page.gauge(
            "tdess_cache_entries",
            "Feature sets currently cached.",
            cache.entries as f64,
        );
        page.gauge(
            "tdess_cache_capacity_bytes",
            "Configured cache byte budget.",
            cache.capacity_bytes as f64,
        );
    }
    page.finish()
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Accepts connections until shutdown, pushing them into the bounded
/// worker queue and answering with `Busy` when it is full.
fn accept_loop(listener: &TcpListener, tx: &channel::Sender<TcpStream>, shared: &NetShared) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::Acquire) {
            // The stream that woke us (often the shutdown dial itself)
            // is turned away like any late arrival.
            if let Ok(stream) = stream {
                reject(
                    shared,
                    stream,
                    ErrorKind::Shutdown,
                    "server is shutting down",
                );
            }
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            // Transient per-connection failures (peer gone before
            // accept) don't kill the listener.
            Err(_) => continue,
        };
        match tx.try_send(stream) {
            Ok(()) => {}
            Err(channel::TrySendError::Full(stream)) => {
                reject(
                    shared,
                    stream,
                    ErrorKind::Busy,
                    "accept queue is full; retry",
                );
            }
            Err(channel::TrySendError::Disconnected(_)) => break,
        }
    }
}

/// Answers a turned-away connection with one typed error frame.
fn reject(shared: &NetShared, mut stream: TcpStream, kind: ErrorKind, message: &str) {
    TransportCounters::bump(&shared.counters.connections_rejected);
    event!(Debug, TARGET, "connection rejected: {kind:?} ({message})");
    let _ = stream.set_write_timeout(Some(shared.cfg.write_timeout));
    if let Ok(payload) = encode(&Response::Error(ErrorReply::new(kind, message))) {
        let _ = write_frame(&mut stream, &payload);
    }
}

/// Worker body: pop connections until the channel disconnects (accept
/// thread gone) and the queue is drained.
fn worker_loop(rx: &channel::Receiver<TcpStream>, shared: &NetShared) {
    event!(Debug, TARGET, "worker started");
    while let Ok(stream) = rx.recv() {
        if shared.shutdown.load(Ordering::Acquire) {
            // Queued but never started: turned away, not half-served.
            reject(
                shared,
                stream,
                ErrorKind::Shutdown,
                "server is shutting down",
            );
            continue;
        }
        TransportCounters::bump(&shared.counters.connections_accepted);
        handle_connection(shared, stream);
    }
    event!(Debug, TARGET, "worker exiting");
}

/// What a shutdown-aware frame read produced.
enum Incoming {
    /// A complete in-limit frame payload.
    Frame(Vec<u8>),
    /// Clean EOF between frames, or shutdown observed while idle.
    Closed,
    /// An over-limit frame, fully drained off the wire so the
    /// connection stays usable.
    TooLarge { len: usize, max: usize },
}

/// One connection's socket plus the read policy applied to it.
struct Conn<'a> {
    stream: TcpStream,
    shared: &'a NetShared,
}

impl Conn<'_> {
    /// Sends one response frame.
    fn send(&mut self, resp: &Response) -> Result<(), WireError> {
        let payload = encode(resp)?;
        write_frame(&mut self.stream, &payload)
    }

    /// Reads the next frame, polling so the shutdown flag is observed
    /// while idle. The read deadline starts at the frame's first byte,
    /// so a request already on the wire always completes.
    fn next_frame(&mut self) -> Result<Incoming, WireError> {
        let mut header = [0u8; 4];
        let deadline = match self.fill(&mut header, None)? {
            FillOutcome::Done(deadline) => deadline,
            FillOutcome::Idle => return Ok(Incoming::Closed),
        };
        let len = u32::from_le_bytes(header) as usize;
        let max = self.shared.cfg.max_frame_len;
        if len > max {
            self.drain(len, deadline)?;
            return Ok(Incoming::TooLarge { len, max });
        }
        let mut payload = vec![0u8; len];
        match self.fill(&mut payload, Some(deadline))? {
            FillOutcome::Done(_) => Ok(Incoming::Frame(payload)),
            FillOutcome::Idle => Err(WireError::Disconnected),
        }
    }

    /// Fills `buf` completely. With `deadline: None` the first loop
    /// iteration is "idle": a clean EOF or an observed shutdown flag
    /// returns [`FillOutcome::Idle`] instead of an error, and the
    /// deadline is armed when the first byte lands.
    fn fill(
        &mut self,
        buf: &mut [u8],
        deadline: Option<Instant>,
    ) -> Result<FillOutcome, WireError> {
        let mut filled = 0;
        let mut deadline = deadline;
        while filled < buf.len() {
            match self.stream.read(&mut buf[filled..]) {
                Ok(0) => {
                    if filled == 0 && deadline.is_none() {
                        return Ok(FillOutcome::Idle);
                    }
                    return Err(WireError::Truncated {
                        got: filled,
                        want: buf.len(),
                    });
                }
                Ok(n) => {
                    if deadline.is_none() {
                        deadline = Some(Instant::now() + self.shared.cfg.read_timeout);
                    }
                    filled += n;
                }
                Err(e) if is_poll_timeout(&e) => match deadline {
                    None => {
                        if self.shared.shutdown.load(Ordering::Acquire) {
                            return Ok(FillOutcome::Idle);
                        }
                    }
                    Some(d) => {
                        if Instant::now() >= d {
                            return Err(WireError::Io(std::io::Error::new(
                                std::io::ErrorKind::TimedOut,
                                "frame read exceeded the read timeout",
                            )));
                        }
                    }
                },
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(WireError::Io(e)),
            }
        }
        let armed = deadline.unwrap_or_else(|| Instant::now() + self.shared.cfg.read_timeout);
        Ok(FillOutcome::Done(armed))
    }

    /// Reads and discards `remaining` payload bytes of an over-limit
    /// frame in fixed-size chunks (never allocating the declared
    /// length), honoring `deadline`.
    fn drain(&mut self, mut remaining: usize, deadline: Instant) -> Result<(), WireError> {
        let mut chunk = [0u8; 16 * 1024];
        while remaining > 0 {
            let want = remaining.min(chunk.len());
            match self.stream.read(&mut chunk[..want]) {
                Ok(0) => {
                    return Err(WireError::Truncated {
                        got: 0,
                        want: remaining,
                    })
                }
                Ok(n) => remaining -= n,
                Err(e) if is_poll_timeout(&e) => {
                    if Instant::now() >= deadline {
                        return Err(WireError::Io(std::io::Error::new(
                            std::io::ErrorKind::TimedOut,
                            "oversized frame drain exceeded the read timeout",
                        )));
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(WireError::Io(e)),
            }
        }
        Ok(())
    }
}

/// Result of [`Conn::fill`].
enum FillOutcome {
    /// Buffer filled; carries the deadline armed at the first byte.
    Done(Instant),
    /// Nothing arrived and the connection is done (EOF or shutdown).
    Idle,
}

/// Whether an I/O error is the poll-interval timeout (platform reports
/// `WouldBlock` or `TimedOut` for an expired `SO_RCVTIMEO`).
fn is_poll_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Runs one connection to completion: handshake, then request frames
/// until the peer hangs up, a fatal transport error occurs, or
/// shutdown is observed between frames.
fn handle_connection(shared: &NetShared, stream: TcpStream) {
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "<unknown>".to_string());
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.cfg.poll_interval));
    let _ = stream.set_write_timeout(Some(shared.cfg.write_timeout));
    let mut conn = Conn { stream, shared };

    if !handshake(&mut conn) {
        event!(Debug, TARGET, "connection from {peer} failed handshake");
        return;
    }
    event!(Debug, TARGET, "connection from {peer} established");

    loop {
        match conn.next_frame() {
            Ok(Incoming::Closed) => {
                event!(Debug, TARGET, "connection from {peer} closed");
                return;
            }
            Ok(Incoming::TooLarge { len, max }) => {
                TransportCounters::bump(&shared.counters.decode_errors);
                event!(
                    Warn,
                    TARGET,
                    "oversized frame from {peer}: {len} bytes exceeds the {max}-byte limit"
                );
                let reply = Response::Error(ErrorReply::new(
                    ErrorKind::FrameTooLarge,
                    format!("frame of {len} bytes exceeds the {max}-byte limit"),
                ));
                if conn.send(&reply).is_err() {
                    return;
                }
            }
            Ok(Incoming::Frame(payload)) => {
                // determinism: allow(time-taint) — transport latency feeds the metrics histograms; reply frames never embed it
                let t0 = Instant::now();
                let resp = match decode_request(&payload) {
                    Ok((trace_id, req)) => {
                        TransportCounters::bump(&shared.counters.frames_decoded);
                        serve_request(shared, trace_id, req, t0)
                    }
                    Err(e) => {
                        TransportCounters::bump(&shared.counters.decode_errors);
                        event!(Warn, TARGET, "malformed frame from {peer}: {e}");
                        Response::Error(ErrorReply::new(ErrorKind::Malformed, e.to_string()))
                    }
                };
                if conn.send(&resp).is_err() {
                    return;
                }
                TransportCounters::bump(&shared.counters.requests_served);
                shared.search.record_transport(t0.elapsed());
            }
            Err(_) => {
                TransportCounters::bump(&shared.counters.decode_errors);
                event!(Debug, TARGET, "connection from {peer} dropped mid-frame");
                return;
            }
        }
    }
}

/// Dispatches one decoded request under its trace id (generating one
/// when the client sent none), collecting the request's span tree and
/// offering it to the flight recorder, emitting a debug event per
/// request and a warn-level slow-query event past
/// [`NetServerConfig::slow_request`].
fn serve_request(
    shared: &NetShared,
    trace_id: Option<String>,
    req: Request,
    t0: Instant,
) -> Response {
    let trace_id = trace_id.unwrap_or_else(tdess_obs::gen_trace_id);
    let kind = request_name(&req);
    // The root span opens before dispatch so every StageTimer the
    // request reaches hangs its span off this tree (same thread).
    let guard = tdess_obs::begin_request(&trace_id, kind);
    let run = || {
        let resp = dispatch(shared, req);
        // determinism: allow(time-taint) — elapsed drives the debug event and the slow-query recorder threshold, not the response bytes
        let elapsed = t0.elapsed();
        event!(
            Debug,
            TARGET,
            "request {kind} served in {:.3} ms",
            elapsed.as_secs_f64() * 1e3
        );
        if elapsed >= shared.cfg.slow_request {
            // event_kv! renders the fields only when Warn passes the
            // filter, so a disabled logger costs no allocations here.
            tdess_obs::event_kv!(Warn, TARGET, "slow request", {
                request: kind,
                elapsed_ms: format_args!("{:.3}", elapsed.as_secs_f64() * 1e3),
            });
        }
        resp
    };
    let resp = tdess_obs::with_trace_id(Some(trace_id), run);
    let errored = matches!(resp, Response::Error(_));
    // Fully qualified: `.finish(...)` would pull every workspace
    // `finish` into the static hot-path scan's reachable set.
    if let Some(trace) = TraceGuard::finish(guard, errored) {
        shared.recorder.offer(trace);
    }
    resp
}

/// Stable request-variant label for log events.
fn request_name(req: &Request) -> &'static str {
    match req {
        Request::SearchFeatures { .. } => "SearchFeatures",
        Request::SearchMesh { .. } => "SearchMesh",
        Request::MultiStep { .. } => "MultiStep",
        Request::Insert { .. } => "Insert",
        Request::Remove { .. } => "Remove",
        Request::Info => "Info",
        Request::Stats => "Stats",
        Request::Traces { .. } => "Traces",
        Request::Ping => "Ping",
    }
}

/// Performs the server side of the handshake. Returns whether the
/// connection may proceed to the request loop.
fn handshake(conn: &mut Conn<'_>) -> bool {
    let shared = conn.shared;
    match conn.next_frame() {
        Ok(Incoming::Closed) => false,
        Ok(Incoming::TooLarge { len, max }) => {
            TransportCounters::bump(&shared.counters.decode_errors);
            let _ = conn.send(&Response::Error(ErrorReply::new(
                ErrorKind::FrameTooLarge,
                format!("handshake frame of {len} bytes exceeds the {max}-byte limit"),
            )));
            false
        }
        Ok(Incoming::Frame(payload)) => match decode::<Hello>(&payload) {
            Ok(hello) if hello.compatible() => {
                TransportCounters::bump(&shared.counters.frames_decoded);
                conn.send(&Response::HelloAck {
                    version: PROTOCOL_VERSION,
                })
                .is_ok()
            }
            Ok(hello) => {
                TransportCounters::bump(&shared.counters.decode_errors);
                let _ = conn.send(&Response::Error(ErrorReply::new(
                    ErrorKind::VersionMismatch,
                    format!(
                        "peer speaks {}/v{}, this server speaks {MAGIC}/v{PROTOCOL_VERSION}",
                        hello.magic, hello.version
                    ),
                )));
                false
            }
            Err(e) => {
                TransportCounters::bump(&shared.counters.decode_errors);
                let _ = conn.send(&Response::Error(ErrorReply::new(
                    ErrorKind::Malformed,
                    format!("expected Hello handshake: {e}"),
                )));
                false
            }
        },
        Err(_) => {
            TransportCounters::bump(&shared.counters.decode_errors);
            false
        }
    }
}

/// Validates the parts of a request that the core layer `assert!`s on,
/// so a hostile or buggy client gets a typed error instead of panicking
/// a worker thread.
fn validate(shared: &NetShared, req: &Request) -> Result<(), ErrorReply> {
    match req {
        Request::SearchFeatures { features, query } => {
            validate_features(shared, features)?;
            validate_query(shared, query.kind, &query.weights, &query.mode)
        }
        Request::SearchMesh { mesh: _, query } => {
            validate_query(shared, query.kind, &query.weights, &query.mode)
        }
        Request::MultiStep { mesh: _, plan } => {
            if plan.steps.is_empty() {
                return Err(ErrorReply::new(
                    ErrorKind::Malformed,
                    "multi-step plan needs at least one step",
                ));
            }
            if plan.candidates == 0 || plan.presented == 0 {
                return Err(ErrorReply::new(
                    ErrorKind::Malformed,
                    "multi-step candidate and presented counts must be at least 1",
                ));
            }
            Ok(())
        }
        _ => Ok(()),
    }
}

/// Checks a query's weights (length + finiteness) and threshold range.
fn validate_query(
    shared: &NetShared,
    kind: FeatureKind,
    weights: &Weights,
    mode: &QueryMode,
) -> Result<(), ErrorReply> {
    let dim = shared.search.with_db(|db| db.extractor().dim(kind));
    if let Weights(Some(w)) = weights {
        if w.len() != dim {
            return Err(ErrorReply::new(
                ErrorKind::Malformed,
                // hotpath: allow(hot-alloc) — formats only on the rejected-request path
                format!("{} weights for a {dim}-dimensional space", w.len()),
            ));
        }
        if !w.iter().all(|v| v.is_finite() && *v >= 0.0) {
            return Err(ErrorReply::new(
                ErrorKind::Malformed,
                "weights must be finite and non-negative",
            ));
        }
    }
    if let QueryMode::Threshold(s) = mode {
        if !(0.0..=1.0).contains(s) {
            return Err(ErrorReply::new(
                ErrorKind::Malformed,
                format!("similarity threshold {s} outside [0, 1]"),
            ));
        }
    }
    Ok(())
}

/// Checks a submitted feature set: every space's vector must match the
/// server extractor's dimension and contain only finite values.
fn validate_features(shared: &NetShared, features: &FeatureSet) -> Result<(), ErrorReply> {
    for kind in FeatureKind::ALL {
        let dim = shared.search.with_db(|db| db.extractor().dim(kind));
        let v = features.get(kind);
        if v.len() != dim {
            return Err(ErrorReply::new(
                ErrorKind::Malformed,
                // hotpath: allow(hot-alloc) — formats only on the rejected-request path
                format!(
                    "{kind:?} vector has {} values, server expects {dim}",
                    v.len()
                ),
            ));
        }
        if !v.iter().all(|x| x.is_finite()) {
            return Err(ErrorReply::new(
                ErrorKind::Malformed,
                format!("{kind:?} vector contains non-finite values"),
            ));
        }
    }
    Ok(())
}

/// Executes one validated request against the wrapped [`SearchServer`].
fn dispatch(shared: &NetShared, req: Request) -> Response {
    if let Err(reply) = validate(shared, &req) {
        return Response::Error(reply);
    }
    let search = &shared.search;
    match req {
        Request::SearchFeatures { features, query } => {
            let snap = search.snapshot();
            let hits = search.search_features(&features, &query);
            Response::Hits(HitsReport::new(&snap, &hits))
        }
        Request::SearchMesh { mesh, query } => match search.search_mesh(&mesh, &query) {
            Ok(hits) => Response::Hits(HitsReport::new(&search.snapshot(), &hits)),
            Err(e) => db_error_reply(&e),
        },
        Request::MultiStep { mesh, plan } => match search.multi_step_mesh(&mesh, &plan) {
            Ok(hits) => Response::Hits(HitsReport::new(&search.snapshot(), &hits)),
            Err(e) => db_error_reply(&e),
        },
        Request::Insert { name, mesh } => match search.insert(name, mesh) {
            Ok(id) => Response::Inserted { id },
            Err(e) => db_error_reply(&e),
        },
        Request::Remove { id } => match search.remove(id) {
            Ok(()) => Response::Removed { id },
            Err(e) => db_error_reply(&e),
        },
        Request::Info => Response::Info(InfoReport::for_db(&search.snapshot())),
        Request::Stats => Response::Stats(StatsReport {
            shapes: search.len(),
            server: search.metrics(),
            transport: shared.counters.snapshot(),
            stages: StageStats::collect(),
            cache: search.cache_stats(),
        }),
        Request::Traces { last, slow } => Response::Traces(TracesReport {
            slow_threshold_us: shared.recorder.slow_threshold_us(),
            traces: shared.recorder.snapshot(last, slow),
        }),
        Request::Ping => Response::Pong,
    }
}

/// Maps a core database error onto a typed wire error reply.
fn db_error_reply(e: &DbError) -> Response {
    let kind = match e {
        DbError::Extraction(_) => ErrorKind::Extraction,
        DbError::UnknownShape(_) => ErrorKind::UnknownShape,
        DbError::WorkerFailure(_) => ErrorKind::Internal,
    };
    // hotpath: allow(hot-alloc) — the error envelope owns its message
    Response::Error(ErrorReply::new(kind, e.to_string()))
}
