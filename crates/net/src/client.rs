//! A blocking, typed client for the 3DESS network tier.
//!
//! [`NetClient`] holds one connection, performs the version-checked
//! handshake on dial, and offers typed wrappers over
//! [`NetClient::request`]. On a disconnect-class failure
//! ([`WireError::is_disconnect`]) of an idempotent request it
//! reconnects and retries exactly once — a server restart between two
//! queries is invisible to the caller, while a non-idempotent request
//! (insert/remove) whose response was lost is surfaced as the error it
//! is, never silently re-executed.
//!
//! Every request is wrapped in a [`crate::proto::RequestEnvelope`]
//! carrying a fresh `tdess-obs` trace id; the server runs the dispatch
//! under that id, so its structured events (including slow-query
//! warnings) can be correlated with the client call via
//! [`NetClient::last_trace_id`].

use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use tdess_core::{MultiStepPlan, Query, ShapeId};
use tdess_features::FeatureSet;
use tdess_geom::TriMesh;

use crate::proto::{
    decode, encode, read_frame, write_frame, Hello, HitsReport, InfoReport, Request, Response,
    StatsReport, TracesReport, WireError, DEFAULT_MAX_FRAME_LEN, PROTOCOL_VERSION,
};

/// Tuning knobs for a [`NetClient`].
#[derive(Debug, Clone)]
pub struct NetClientConfig {
    /// TCP connect timeout.
    pub connect_timeout: Duration,
    /// Socket read/write timeout covering one request/response pair.
    pub request_timeout: Duration,
    /// Hard cap on an incoming frame's payload length.
    pub max_frame_len: usize,
    /// Whether to reconnect and retry once when a pooled connection
    /// turns out broken (idempotent requests only).
    pub retry_on_disconnect: bool,
}

impl Default for NetClientConfig {
    fn default() -> NetClientConfig {
        NetClientConfig {
            connect_timeout: Duration::from_secs(5),
            request_timeout: Duration::from_secs(30),
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            retry_on_disconnect: true,
        }
    }
}

/// A blocking connection to a [`crate::NetServer`].
pub struct NetClient {
    addr: SocketAddr,
    cfg: NetClientConfig,
    stream: Option<TcpStream>,
    last_trace: Option<String>,
}

impl NetClient {
    /// Resolves `addr`, dials it, and completes the handshake.
    pub fn connect(addr: impl ToSocketAddrs, cfg: NetClientConfig) -> Result<NetClient, WireError> {
        let addr = addr
            .to_socket_addrs()
            .map_err(WireError::Io)?
            .next()
            .ok_or_else(|| WireError::Handshake("address resolved to nothing".to_string()))?;
        let mut client = NetClient {
            addr,
            cfg,
            stream: None,
            last_trace: None,
        };
        client.stream = Some(client.dial()?);
        Ok(client)
    }

    /// Like [`NetClient::connect`] with the default configuration.
    pub fn connect_default(addr: impl ToSocketAddrs) -> Result<NetClient, WireError> {
        NetClient::connect(addr, NetClientConfig::default())
    }

    /// The server address this client dials.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Opens a fresh connection and completes the handshake.
    fn dial(&self) -> Result<TcpStream, WireError> {
        // hotpath: allow(hot-block) — client-side dial, in the server graph only via name-level over-approximation
        let mut stream = TcpStream::connect_timeout(&self.addr, self.cfg.connect_timeout)?;
        let _ = stream.set_nodelay(true);
        stream.set_read_timeout(Some(self.cfg.request_timeout))?;
        stream.set_write_timeout(Some(self.cfg.request_timeout))?;
        let payload = encode(&Hello::current())?;
        write_frame(&mut stream, &payload)?;
        let Some(reply) = read_frame(&mut stream, self.cfg.max_frame_len)? else {
            return Err(WireError::Disconnected);
        };
        match decode::<Response>(&reply)? {
            Response::HelloAck { version } if version == PROTOCOL_VERSION => Ok(stream),
            // hotpath: allow(hot-alloc) — client-side error path, in the server graph only via name-level over-approximation
            Response::HelloAck { version } => Err(WireError::Handshake(format!(
                "server speaks protocol v{version}, this client v{PROTOCOL_VERSION}"
            ))),
            Response::Error(reply) => Err(WireError::Remote(reply)),
            other => Err(WireError::Handshake(format!(
                "unexpected handshake reply: {}",
                variant_name(&other)
            ))),
        }
    }

    /// The trace id sent with the most recent request, for correlating
    /// client calls with the server's structured events.
    pub fn last_trace_id(&self) -> Option<&str> {
        self.last_trace.as_deref()
    }

    /// Sends one request and reads its response, reconnecting and
    /// retrying once if a *reused* connection turns out broken and the
    /// request is safe to repeat (see the module docs). The request
    /// travels in an envelope with a fresh trace id (the retry reuses
    /// the same id — it is the same logical request).
    pub fn request(&mut self, req: &Request) -> Result<Response, WireError> {
        let trace_id = tdess_obs::gen_trace_id();
        // Build the envelope value by hand to avoid cloning the
        // request (meshes can be large) just to attach two fields.
        // hotpath: allow(hot-alloc) — client-side retry state, in the server graph only via name-level over-approximation
        let envelope = serde::Value::Obj(vec![
            ("trace_id".to_string(), serde::Value::Str(trace_id.clone())),
            ("request".to_string(), serde::Serialize::to_value(req)),
        ]);
        self.last_trace = Some(trace_id);
        let payload = encode(&envelope)?;
        let reused = self.stream.is_some();
        let (sent, err) = match self.attempt(&payload) {
            Ok(resp) => return Ok(resp),
            Err(e) => e,
        };
        // Any transport failure poisons the pooled connection.
        self.stream = None;
        let safe_to_retry = !sent || req.is_idempotent();
        if !(self.cfg.retry_on_disconnect && reused && err.is_disconnect() && safe_to_retry) {
            return Err(err);
        }
        self.attempt(&payload).map_err(|(_, e)| {
            self.stream = None;
            e
        })
    }

    /// One write+read round trip. The error carries whether the
    /// request frame was fully written (`true` means the server may
    /// have executed it).
    fn attempt(&mut self, payload: &[u8]) -> Result<Response, (bool, WireError)> {
        if self.stream.is_none() {
            self.stream = Some(self.dial().map_err(|e| (false, e))?);
        }
        let Some(stream) = self.stream.as_mut() else {
            return Err((false, WireError::Disconnected));
        };
        // hotpath: allow(hot-block) — client-side frame exchange, in the server graph only via name-level over-approximation
        if let Err(e) = write_frame(stream, payload) {
            return Err((false, e));
        }
        match read_frame(stream, self.cfg.max_frame_len) {
            Ok(Some(reply)) => decode::<Response>(&reply).map_err(|e| (true, e)),
            Ok(None) => Err((true, WireError::Disconnected)),
            Err(e) => Err((true, e)),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), WireError> {
        match self.request(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// One-shot search with already-extracted query features.
    pub fn search_features(
        &mut self,
        features: &FeatureSet,
        query: &Query,
    ) -> Result<HitsReport, WireError> {
        match self.request(&Request::SearchFeatures {
            // hotpath: allow(hot-alloc) — client-side request body, in the server graph only via name-level over-approximation
            features: features.clone(),
            query: query.clone(),
        })? {
            Response::Hits(report) => Ok(report),
            other => Err(unexpected(&other)),
        }
    }

    /// One-shot query-by-example; the server extracts features.
    pub fn search_mesh(&mut self, mesh: &TriMesh, query: &Query) -> Result<HitsReport, WireError> {
        match self.request(&Request::SearchMesh {
            // hotpath: allow(hot-alloc) — client-side request body, in the server graph only via name-level over-approximation
            mesh: mesh.clone(),
            query: query.clone(),
        })? {
            Response::Hits(report) => Ok(report),
            other => Err(unexpected(&other)),
        }
    }

    /// Multi-step search (candidate retrieval + re-ranking).
    pub fn multi_step(
        &mut self,
        mesh: &TriMesh,
        plan: &MultiStepPlan,
    ) -> Result<HitsReport, WireError> {
        match self.request(&Request::MultiStep {
            mesh: mesh.clone(),
            plan: plan.clone(),
        })? {
            Response::Hits(report) => Ok(report),
            other => Err(unexpected(&other)),
        }
    }

    /// Inserts a shape; returns the id the server assigned.
    pub fn insert(
        &mut self,
        name: impl Into<String>,
        mesh: &TriMesh,
    ) -> Result<ShapeId, WireError> {
        match self.request(&Request::Insert {
            name: name.into(),
            // hotpath: allow(hot-alloc) — client-side request body, in the server graph only via name-level over-approximation
            mesh: mesh.clone(),
        })? {
            Response::Inserted { id } => Ok(id),
            other => Err(unexpected(&other)),
        }
    }

    /// Removes a shape by id.
    pub fn remove(&mut self, id: ShapeId) -> Result<(), WireError> {
        match self.request(&Request::Remove { id })? {
            Response::Removed { .. } => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Database summary.
    pub fn info(&mut self) -> Result<InfoReport, WireError> {
        match self.request(&Request::Info)? {
            Response::Info(report) => Ok(report),
            other => Err(unexpected(&other)),
        }
    }

    /// Query + transport metrics.
    pub fn stats(&mut self) -> Result<StatsReport, WireError> {
        match self.request(&Request::Stats)? {
            Response::Stats(report) => Ok(report),
            other => Err(unexpected(&other)),
        }
    }

    /// Recent request traces from the server's flight recorder.
    /// `last > 0` limits to the most recent traces; `slow` keeps only
    /// slow/error retentions.
    pub fn traces(&mut self, last: usize, slow: bool) -> Result<TracesReport, WireError> {
        match self.request(&Request::Traces { last, slow })? {
            Response::Traces(report) => Ok(report),
            other => Err(unexpected(&other)),
        }
    }
}

/// Maps an off-script response onto a typed error: server error
/// replies pass through, anything else is a protocol violation.
fn unexpected(resp: &Response) -> WireError {
    match resp {
        // hotpath: allow(hot-alloc) — client-side error reporting, in the server graph only via name-level over-approximation
        Response::Error(reply) => WireError::Remote(reply.clone()),
        other => WireError::Protocol(format!(
            "unexpected response variant: {}",
            variant_name(other)
        )),
    }
}

/// Stable variant label for protocol-violation messages.
fn variant_name(resp: &Response) -> &'static str {
    match resp {
        Response::HelloAck { .. } => "HelloAck",
        Response::Hits(_) => "Hits",
        Response::Inserted { .. } => "Inserted",
        Response::Removed { .. } => "Removed",
        Response::Info(_) => "Info",
        Response::Stats(_) => "Stats",
        Response::Traces(_) => "Traces",
        Response::Pong => "Pong",
        Response::Error(_) => "Error",
    }
}
