//! The 3DESS wire protocol: length-prefixed frames carrying
//! JSON-encoded, externally tagged [`Request`]/[`Response`] payloads,
//! preceded by a version-checked [`Hello`] handshake.
//!
//! ## Frame layout
//!
//! ```text
//! +----------------+---------------------------+
//! | u32 LE length  |  length bytes of payload  |
//! +----------------+---------------------------+
//! ```
//!
//! The payload is UTF-8 JSON (the same `serde` encoding the
//! persistence layer uses, so meshes and feature vectors round-trip
//! bit-identically — floats print as the shortest string that parses
//! back to the same bits). A frame whose declared length exceeds the
//! agreed maximum ([`DEFAULT_MAX_FRAME_LEN`] unless configured
//! otherwise) is answered with a [`ErrorKind::FrameTooLarge`] error
//! and drained, not trusted: decode errors are *typed* ([`WireError`])
//! and never panic on malformed or truncated input.
//!
//! ## Handshake
//!
//! The first frame a client sends is a [`Hello`] (magic string +
//! protocol version). The server answers [`Response::HelloAck`] on a
//! match and a [`ErrorKind::VersionMismatch`] error otherwise. Every
//! subsequent client frame is a [`Request`]; every server frame is a
//! [`Response`].

use std::io::{Read, Write};

use bytes::{Buf, BufMut};
use serde::{Deserialize, Serialize};
use tdess_core::MultiStepPlan;
use tdess_core::{CacheStatsSnapshot, Query, SearchHit, ServerMetrics, ShapeDatabase, ShapeId};
use tdess_features::{FeatureKind, FeatureSet};
use tdess_geom::TriMesh;
use tdess_obs::RequestTrace;

/// Version of the wire protocol spoken by this build. Bumped on any
/// incompatible frame or payload change; the handshake rejects peers
/// speaking a different version.
pub const PROTOCOL_VERSION: u32 = 1;

/// Magic string carried in the handshake so a 3DESS endpoint can
/// reject arbitrary TCP traffic with a typed error instead of a
/// confusing decode failure.
pub const MAGIC: &str = "tdess";

/// Default hard cap on a frame's payload length (32 MiB — comfortably
/// above any corpus mesh, far below a memory-exhaustion attack).
pub const DEFAULT_MAX_FRAME_LEN: usize = 32 * 1024 * 1024;

/// The handshake frame: first thing on the wire from a client.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Hello {
    /// Must equal [`MAGIC`].
    pub magic: String,
    /// Must equal the server's [`PROTOCOL_VERSION`].
    pub version: u32,
}

impl Hello {
    /// The handshake this build sends.
    pub fn current() -> Hello {
        Hello {
            // hotpath: allow(hot-alloc) — version string built once per handshake
            magic: MAGIC.to_string(),
            version: PROTOCOL_VERSION,
        }
    }

    /// Whether this hello is acceptable to this build.
    pub fn compatible(&self) -> bool {
        self.magic == MAGIC && self.version == PROTOCOL_VERSION
    }
}

/// A client request. One frame each; the server answers every request
/// with exactly one [`Response`] frame on the same connection.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Request {
    /// One-shot search with already-extracted query features.
    SearchFeatures {
        /// The query's feature vectors (extracted with settings
        /// compatible with the server's database).
        features: FeatureSet,
        /// Feature space, weights, and selection mode.
        query: Query,
    },
    /// One-shot query-by-example: the server extracts features.
    SearchMesh {
        /// The query mesh.
        mesh: TriMesh,
        /// Feature space, weights, and selection mode.
        query: Query,
    },
    /// Multi-step search (candidate retrieval + re-ranking).
    MultiStep {
        /// The query mesh.
        mesh: TriMesh,
        /// Step sequence and candidate/presented counts.
        plan: MultiStepPlan,
    },
    /// Insert a shape into the served database (in-memory snapshot;
    /// the server's on-disk file is not rewritten per insert).
    Insert {
        /// Human-readable shape name.
        name: String,
        /// The shape's mesh.
        mesh: TriMesh,
    },
    /// Remove a shape by id.
    Remove {
        /// Database id to remove.
        id: ShapeId,
    },
    /// Database summary (shape count, extractor settings, per-space
    /// dimensions and diameters).
    Info,
    /// Query + transport metrics.
    Stats,
    /// Recent request traces from the server's flight recorder.
    Traces {
        /// Return at most this many traces, newest last (0 = all
        /// currently retained).
        #[serde(default)]
        last: usize,
        /// Only traces the tail sampler marked interesting (slow or
        /// error), dropping the probabilistic baseline sample.
        #[serde(default)]
        slow: bool,
    },
    /// Liveness probe.
    Ping,
}

impl Request {
    /// Whether retrying this request after a connection failure is
    /// safe (it does not mutate the database).
    pub fn is_idempotent(&self) -> bool {
        !matches!(self, Request::Insert { .. } | Request::Remove { .. })
    }
}

/// The request envelope: a [`Request`] plus the observability metadata
/// that travels with it. [`crate::NetClient`] generates a fresh
/// `trace_id` per request; the server runs the dispatch under it so
/// every event the request causes — including slow-query warnings —
/// carries the id the client knows.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RequestEnvelope {
    /// Client-generated correlation id (16 hex digits by convention,
    /// but any string is accepted and propagated opaquely).
    #[serde(default)]
    pub trace_id: Option<String>,
    /// The request itself.
    pub request: Request,
}

/// Decodes a request payload, accepting both the enveloped form
/// (`{"trace_id":...,"request":{...}}`) and a bare [`Request`] from
/// pre-envelope peers. Returns the trace id (if any) with the request.
pub fn decode_request(payload: &[u8]) -> Result<(Option<String>, Request), WireError> {
    let value: serde::Value = decode(payload)?;
    if value.get("request").is_some() {
        let env =
            RequestEnvelope::from_value(&value).map_err(|e| WireError::Malformed(e.to_string()))?;
        Ok((env.trace_id, env.request))
    } else {
        let req = Request::from_value(&value).map_err(|e| WireError::Malformed(e.to_string()))?;
        Ok((None, req))
    }
}

/// One search result, with the shape's name resolved server-side so
/// clients need no follow-up lookup.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NamedHit {
    /// Database id of the matching shape.
    pub id: ShapeId,
    /// The shape's name in the served database.
    pub name: String,
    /// Weighted Euclidean distance to the query (Eq. 4.3).
    pub distance: f64,
    /// Similarity (Eq. 4.4).
    pub similarity: f64,
}

/// Payload of a search response: ranked hits with names resolved.
///
/// Also the `--json` output of the local `tdess query`/`multistep`
/// CLI verbs — one source of truth for machine-readable results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HitsReport {
    /// Ranked results, most similar first.
    pub hits: Vec<NamedHit>,
}

impl HitsReport {
    /// Resolves hit names against `db` (the snapshot the search ran
    /// on). A hit whose shape vanished concurrently gets an empty
    /// name rather than an error.
    pub fn new(db: &ShapeDatabase, hits: &[SearchHit]) -> HitsReport {
        HitsReport {
            hits: hits
                .iter()
                .map(|h| NamedHit {
                    id: h.id,
                    // hotpath: allow(hot-alloc) — the error reply owns its message
                    name: db.get(h.id).map(|s| s.name.clone()).unwrap_or_default(),
                    distance: h.distance,
                    similarity: h.similarity,
                })
                .collect(),
        }
    }
}

/// Per-feature-space summary inside an [`InfoReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpaceInfo {
    /// The feature space.
    pub kind: FeatureKind,
    /// Its vector dimension.
    pub dim: usize,
    /// Its similarity-normalization diameter.
    pub dmax: f64,
}

/// Payload of an Info response; also the `--json` output of the local
/// `tdess info` verb.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InfoReport {
    /// Number of stored shapes.
    pub shapes: usize,
    /// The extractor's voxel resolution.
    pub voxel_resolution: usize,
    /// The extractor's eigenvalue-spectrum dimension.
    pub spectrum_dim: usize,
    /// One entry per feature space.
    pub spaces: Vec<SpaceInfo>,
}

impl InfoReport {
    /// Builds the report for a database snapshot.
    pub fn for_db(db: &ShapeDatabase) -> InfoReport {
        InfoReport {
            shapes: db.len(),
            voxel_resolution: db.extractor().voxel_resolution,
            spectrum_dim: db.extractor().spectrum_dim,
            spaces: FeatureKind::ALL
                .into_iter()
                .map(|kind| SpaceInfo {
                    kind,
                    dim: db.extractor().dim(kind),
                    dmax: db.dmax(kind),
                })
                // hotpath: allow(hot-alloc) — the info reply assembles the returned summary
                .collect(),
        }
    }
}

/// Transport-level counters maintained by the network server,
/// reported alongside the query metrics in a [`StatsReport`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransportStats {
    /// Connections accepted into the worker pool.
    pub connections_accepted: u64,
    /// Connections turned away with a `Busy` (queue full) or
    /// `Shutdown` reply.
    pub connections_rejected: u64,
    /// Frames whose payload decoded into a valid handshake/request.
    pub frames_decoded: u64,
    /// Frames rejected as malformed, truncated, or over-limit.
    pub decode_errors: u64,
    /// Requests answered with a response frame.
    pub requests_served: u64,
}

/// Latency summary of one instrumented pipeline/query stage, keyed by
/// the stage's stable snake_case name (`tdess_obs::Stage::name`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageStats {
    /// Stage name (e.g. `voxelize`, `index_search`).
    pub stage: String,
    /// The stage's latency summary with quantiles.
    pub latency: ServerLatency,
}

/// Re-export alias so [`StageStats`] reads naturally on the wire.
pub type ServerLatency = tdess_core::LatencyStats;

impl StageStats {
    /// Builds the per-stage summaries from the process-wide stage
    /// histograms, skipping stages that never ran.
    pub fn collect() -> Vec<StageStats> {
        tdess_obs::stage_snapshots()
            .into_iter()
            .filter_map(|(stage, snap)| {
                ServerLatency::from_snapshot(&snap).map(|latency| StageStats {
                    // hotpath: allow(hot-alloc) — the stats reply assembles the returned summary
                    stage: stage.name().to_string(),
                    latency,
                })
            })
            .collect()
    }
}

/// Payload of a Stats response; also the `--json` output of the
/// remote `tdess remote <addr> stats` verb.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatsReport {
    /// Number of stored shapes at snapshot time.
    pub shapes: usize,
    /// Query metrics of the wrapped [`tdess_core::SearchServer`].
    pub server: ServerMetrics,
    /// Transport counters of the network front end.
    pub transport: TransportStats,
    /// Per-stage latency summaries (empty from pre-obs servers, and
    /// ignored by pre-obs clients).
    #[serde(default)]
    pub stages: Vec<StageStats>,
    /// Extraction-cache counters; `None` from servers running without
    /// a cache (or predating one), so older reports still decode.
    #[serde(default)]
    pub cache: Option<CacheStatsSnapshot>,
}

/// Payload of a Traces response: completed request traces retained by
/// the server's flight recorder, oldest first. Also the `--format
/// jsonl` source of the `tdess remote <addr> trace` verb.
///
/// Traces ride the wire as plain [`RequestTrace`] values (the `Arc` is
/// a server-side sharing detail that serializes transparently), so the
/// report decodes against any build carrying the span types.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TracesReport {
    /// The slow-over-this-threshold retention cutoff, microseconds —
    /// lets clients label "slow" consistently with the server.
    #[serde(default)]
    pub slow_threshold_us: u64,
    /// Retained traces, oldest first (empty from pre-trace servers,
    /// and ignored by pre-trace clients).
    #[serde(default)]
    pub traces: Vec<std::sync::Arc<RequestTrace>>,
}

/// Machine-readable category of a server-reported error.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorKind {
    /// Handshake magic/version did not match.
    VersionMismatch,
    /// A frame exceeded the server's maximum payload length.
    FrameTooLarge,
    /// A frame's payload was not a valid request.
    Malformed,
    /// The accept queue was full; retry later.
    Busy,
    /// The server is shutting down; no new requests are accepted.
    Shutdown,
    /// Feature extraction failed for the submitted mesh.
    Extraction,
    /// The referenced shape id does not exist.
    UnknownShape,
    /// Any other server-side failure.
    Internal,
}

/// A typed error reply: category plus human-readable detail.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ErrorReply {
    /// Machine-readable category.
    pub kind: ErrorKind,
    /// Human-readable detail.
    pub message: String,
}

impl ErrorReply {
    /// Convenience constructor.
    pub fn new(kind: ErrorKind, message: impl Into<String>) -> ErrorReply {
        ErrorReply {
            kind,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for ErrorReply {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}: {}", self.kind, self.message)
    }
}

/// A server response. Exactly one per request (and one `HelloAck` or
/// error for the handshake).
// `Stats` dominates the enum's size now that reports carry quantiles
// and per-stage timings, but a `Response` only ever lives for the
// instant between dispatch and frame encode (or decode and match), so
// indirection would buy nothing and cost an allocation per response.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Handshake accepted; carries the server's protocol version.
    HelloAck {
        /// The server's [`PROTOCOL_VERSION`].
        version: u32,
    },
    /// Ranked search results.
    Hits(HitsReport),
    /// A shape was inserted.
    Inserted {
        /// The id assigned by the server.
        id: ShapeId,
    },
    /// A shape was removed.
    Removed {
        /// The id that was removed.
        id: ShapeId,
    },
    /// Database summary.
    Info(InfoReport),
    /// Query + transport metrics.
    Stats(StatsReport),
    /// Flight-recorder traces.
    Traces(TracesReport),
    /// Liveness reply.
    Pong,
    /// The request failed; the connection stays usable.
    Error(ErrorReply),
}

/// Errors crossing the wire layer — every decode failure is typed;
/// nothing in this module panics on hostile input.
#[derive(Debug)]
pub enum WireError {
    /// Socket-level I/O failure (includes read/write timeouts).
    Io(std::io::Error),
    /// The peer closed the connection mid-frame.
    Truncated {
        /// Bytes actually received.
        got: usize,
        /// Bytes the frame header promised.
        want: usize,
    },
    /// A frame's declared payload length exceeds the agreed maximum.
    FrameTooLarge {
        /// Declared payload length.
        len: usize,
        /// The configured maximum.
        max: usize,
    },
    /// The payload was not valid UTF-8 JSON for the expected type.
    Malformed(String),
    /// The handshake failed (bad magic, version, or unexpected reply).
    Handshake(String),
    /// The peer sent a response of an unexpected type.
    Protocol(String),
    /// The server answered with a typed error reply.
    Remote(ErrorReply),
    /// The connection closed cleanly where a frame was required.
    Disconnected,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "network I/O error: {e}"),
            WireError::Truncated { got, want } => {
                write!(f, "connection closed mid-frame ({got}/{want} bytes)")
            }
            WireError::FrameTooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte limit")
            }
            WireError::Malformed(msg) => write!(f, "malformed payload: {msg}"),
            WireError::Handshake(msg) => write!(f, "handshake failed: {msg}"),
            WireError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            WireError::Remote(reply) => write!(f, "server error — {reply}"),
            WireError::Disconnected => write!(f, "connection closed by peer"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

impl WireError {
    /// Whether this failure means the underlying connection is gone
    /// (as opposed to a per-request error on a healthy connection) —
    /// the condition under which [`crate::NetClient`] reconnects.
    pub fn is_disconnect(&self) -> bool {
        match self {
            WireError::Disconnected | WireError::Truncated { .. } => true,
            WireError::Io(e) => matches!(
                e.kind(),
                std::io::ErrorKind::BrokenPipe
                    | std::io::ErrorKind::ConnectionReset
                    | std::io::ErrorKind::ConnectionAborted
                    | std::io::ErrorKind::UnexpectedEof
                    | std::io::ErrorKind::NotConnected
            ),
            _ => false,
        }
    }
}

/// Serializes a value into a frame payload.
pub fn encode<T: Serialize>(value: &T) -> Result<Vec<u8>, WireError> {
    serde_json::to_string(value)
        .map(String::into_bytes)
        // hotpath: allow(hot-alloc) — encoding produces the owned wire body
        .map_err(|e| WireError::Malformed(e.to_string()))
}

/// Deserializes a frame payload into a value.
pub fn decode<T: Deserialize>(payload: &[u8]) -> Result<T, WireError> {
    let text = std::str::from_utf8(payload)
        // hotpath: allow(hot-alloc) — formats only on the malformed-frame error path
        .map_err(|e| WireError::Malformed(format!("payload is not UTF-8: {e}")))?;
    serde_json::from_str(text).map_err(|e| WireError::Malformed(e.to_string()))
}

/// Writes one frame: 4-byte little-endian payload length, then the
/// payload, then a flush.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> Result<(), WireError> {
    if u32::try_from(payload.len()).is_err() {
        return Err(WireError::FrameTooLarge {
            len: payload.len(),
            max: u32::MAX as usize,
        });
    }
    let mut header: Vec<u8> = Vec::with_capacity(4);
    header.put_u32_le(payload.len() as u32);
    // hotpath: allow(hot-block) — frame I/O is the request itself
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Reads up to `buf.len()` bytes, stopping early only at EOF. Returns
/// the number of bytes actually read.
fn read_full<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<usize, WireError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    Ok(filled)
}

/// Reads one frame. Returns `Ok(None)` on a clean EOF before the
/// first header byte (the peer hung up between frames); every other
/// short read is a typed [`WireError::Truncated`]. A declared length
/// over `max_len` returns [`WireError::FrameTooLarge`] without
/// reading (or allocating) the payload.
pub fn read_frame<R: Read>(r: &mut R, max_len: usize) -> Result<Option<Vec<u8>>, WireError> {
    let mut header = [0u8; 4];
    let got = read_full(r, &mut header)?;
    if got == 0 {
        return Ok(None);
    }
    if got < header.len() {
        return Err(WireError::Truncated {
            got,
            want: header.len(),
        });
    }
    let len = (&header[..]).get_u32_le() as usize;
    if len > max_len {
        return Err(WireError::FrameTooLarge { len, max: max_len });
    }
    // hotpath: allow(hot-alloc) — the frame buffer is the received artifact
    let mut payload = vec![0u8; len];
    let got = read_full(r, &mut payload)?;
    if got < len {
        return Err(WireError::Truncated { got, want: len });
    }
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let mut buf: Vec<u8> = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut cur: &[u8] = &buf;
        assert_eq!(read_frame(&mut cur, 1024).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut cur, 1024).unwrap().unwrap(), b"");
        assert!(read_frame(&mut cur, 1024).unwrap().is_none());
    }

    #[test]
    fn truncated_header_and_payload_are_typed_errors() {
        // Partial header.
        let mut cur: &[u8] = &[1, 2];
        assert!(matches!(
            read_frame(&mut cur, 1024),
            Err(WireError::Truncated { got: 2, want: 4 })
        ));
        // Header promising more payload than exists.
        let mut buf: Vec<u8> = Vec::new();
        write_frame(&mut buf, b"abcdef").unwrap();
        buf.truncate(7); // 4-byte header + 3 of 6 payload bytes
        let mut cur: &[u8] = &buf;
        assert!(matches!(
            read_frame(&mut cur, 1024),
            Err(WireError::Truncated { got: 3, want: 6 })
        ));
    }

    #[test]
    fn oversized_frame_is_rejected_without_allocation() {
        let mut buf: Vec<u8> = Vec::new();
        buf.put_u32_le(u32::MAX);
        let mut cur: &[u8] = &buf;
        assert!(matches!(
            read_frame(&mut cur, 1024),
            Err(WireError::FrameTooLarge { max: 1024, .. })
        ));
    }

    #[test]
    fn request_response_roundtrip() {
        let req = Request::Remove { id: 42 };
        let payload = encode(&req).unwrap();
        let back: Request = decode(&payload).unwrap();
        assert!(matches!(back, Request::Remove { id: 42 }));

        let resp = Response::Error(ErrorReply::new(ErrorKind::Busy, "queue full"));
        let payload = encode(&resp).unwrap();
        let back: Response = decode(&payload).unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn garbage_payload_is_a_typed_decode_error() {
        assert!(matches!(
            decode::<Request>(b"{ not json"),
            Err(WireError::Malformed(_))
        ));
        assert!(matches!(
            decode::<Request>(&[0xff, 0xfe, 0x00]),
            Err(WireError::Malformed(_))
        ));
        // Valid JSON, wrong shape.
        assert!(matches!(
            decode::<Request>(b"{\"NoSuchVariant\": 1}"),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn hello_compatibility() {
        assert!(Hello::current().compatible());
        let old = Hello {
            magic: MAGIC.into(),
            version: PROTOCOL_VERSION + 1,
        };
        assert!(!old.compatible());
        let alien = Hello {
            magic: "http".into(),
            version: PROTOCOL_VERSION,
        };
        assert!(!alien.compatible());
    }

    #[test]
    fn idempotence_classification() {
        assert!(Request::Ping.is_idempotent());
        assert!(Request::Info.is_idempotent());
        assert!(!Request::Remove { id: 1 }.is_idempotent());
    }

    #[test]
    fn decode_request_accepts_bare_and_enveloped_forms() {
        // Bare request, as a pre-envelope client would send it.
        let (tid, req) = decode_request(&encode(&Request::Ping).unwrap()).unwrap();
        assert_eq!(tid, None);
        assert!(matches!(req, Request::Ping));

        // Enveloped with a trace id.
        let env = RequestEnvelope {
            trace_id: Some("aabbccdd00112233".into()),
            request: Request::Remove { id: 7 },
        };
        let (tid, req) = decode_request(&encode(&env).unwrap()).unwrap();
        assert_eq!(tid.as_deref(), Some("aabbccdd00112233"));
        assert!(matches!(req, Request::Remove { id: 7 }));

        // Enveloped without a trace id (`null` on the wire).
        let env = RequestEnvelope {
            trace_id: None,
            request: Request::Info,
        };
        let (tid, req) = decode_request(&encode(&env).unwrap()).unwrap();
        assert_eq!(tid, None);
        assert!(matches!(req, Request::Info));

        // Garbage still fails with a typed error.
        assert!(matches!(
            decode_request(b"{\"request\": 17}"),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn stats_report_without_stages_still_decodes() {
        // A pre-obs server's StatsReport has no `stages` key; the
        // field must default to empty.
        let report = StatsReport {
            shapes: 3,
            server: ServerMetrics::default(),
            transport: TransportStats::default(),
            stages: vec![StageStats {
                stage: "voxelize".into(),
                latency: ServerLatency::default(),
            }],
            cache: Some(CacheStatsSnapshot::default()),
        };
        let mut value = report.to_value();
        if let serde::Value::Obj(pairs) = &mut value {
            pairs.retain(|(k, _)| k != "stages" && k != "cache");
        }
        let back = StatsReport::from_value(&value).unwrap();
        assert_eq!(back.shapes, 3);
        assert!(back.stages.is_empty());
        assert!(back.cache.is_none(), "missing cache key defaults to None");
    }

    #[test]
    fn traces_request_and_report_tolerate_missing_fields() {
        // `Traces` sent by a minimal client (`{"Traces":{}}`) decodes
        // with both knobs defaulted.
        let req: Request = decode(b"{\"Traces\": {}}").unwrap();
        assert!(matches!(
            req,
            Request::Traces {
                last: 0,
                slow: false
            }
        ));
        assert!(req.is_idempotent(), "trace reads are safe to retry");

        // A populated report round-trips through the wire encoding.
        let report = TracesReport {
            slow_threshold_us: 1_000_000,
            traces: vec![std::sync::Arc::new(tdess_obs::RequestTrace {
                trace_id: "aabb".into(),
                name: "SearchMesh".into(),
                ts_unix_us: 7,
                dur_us: 1_500_000,
                error: false,
                retained: "slow".into(),
                dropped_spans: 0,
                spans: Vec::new(),
            })],
        };
        let back: TracesReport = decode(&encode(&report).unwrap()).unwrap();
        assert_eq!(back, report);

        // And a pre-trace peer's empty object still decodes.
        let bare: TracesReport = decode(b"{}").unwrap();
        assert!(bare.traces.is_empty());
        assert_eq!(bare.slow_threshold_us, 0);
    }
}
