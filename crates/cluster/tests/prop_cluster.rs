//! Property tests for the clustering module.

use proptest::prelude::*;
use tdess_cluster::{build_hierarchy, kmeans, rand_index, silhouette, HierarchyParams};

fn arb_points() -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(-50.0f64..50.0, 3..=3), 2..150)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// k-means SSE never increases when k grows (more clusters can
    /// only tighten the partition, given the same seed discipline this
    /// holds in expectation; we assert the weaker k = n bound: zero).
    #[test]
    fn kmeans_sse_nonnegative_and_zero_at_full_k(pts in arb_points()) {
        let k3 = kmeans(&pts, 3, 7);
        prop_assert!(k3.sse >= 0.0);
        let kn = kmeans(&pts, pts.len(), 7);
        prop_assert!(kn.sse < 1e-6, "sse {} with k = n", kn.sse);
    }

    /// Assignments always index a valid centroid and every centroid is
    /// finite.
    #[test]
    fn kmeans_output_wellformed(pts in arb_points(), k in 1usize..10, seed in 0u64..100) {
        let c = kmeans(&pts, k, seed);
        prop_assert_eq!(c.assignments.len(), pts.len());
        for &a in &c.assignments {
            prop_assert!(a < c.k());
        }
        for cent in &c.centroids {
            prop_assert!(cent.iter().all(|v| v.is_finite()));
        }
    }

    /// The Rand index is symmetric, reflexive, and bounded.
    #[test]
    fn rand_index_properties(
        a in prop::collection::vec(0usize..5, 2..60),
        seed in 0u64..100,
    ) {
        // Random second labeling of the same length.
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let b: Vec<usize> = a.iter().map(|_| {
            s ^= s << 13; s ^= s >> 7; s ^= s << 17;
            (s % 5) as usize
        }).collect();
        let ab = rand_index(&a, &b);
        let ba = rand_index(&b, &a);
        prop_assert!((ab - ba).abs() < 1e-12, "not symmetric");
        prop_assert!((0.0..=1.0).contains(&ab));
        prop_assert_eq!(rand_index(&a, &a), 1.0);
    }

    /// Silhouette is bounded in [-1, 1] for any labeling.
    #[test]
    fn silhouette_bounded(pts in arb_points(), k in 1usize..6, seed in 0u64..50) {
        let c = kmeans(&pts, k, seed);
        let s = silhouette(&pts, &c.assignments);
        prop_assert!((-1.0..=1.0).contains(&s), "silhouette {s}");
    }

    /// Hierarchies partition the items exactly, respect leaf size (up
    /// to the identical-points escape hatch), and every node's items
    /// equal the union of its children's.
    #[test]
    fn hierarchy_partition_invariants(pts in arb_points(), leaf in 2usize..12) {
        let h = build_hierarchy(&pts, &HierarchyParams { branching: 3, leaf_size: leaf }, 11);
        fn check(n: &tdess_cluster::HierarchyNode) -> Vec<usize> {
            if n.is_leaf() {
                return n.items.clone();
            }
            let mut union: Vec<usize> = n.children.iter().flat_map(check).collect();
            union.sort_unstable();
            let mut own = n.items.clone();
            own.sort_unstable();
            assert_eq!(union, own, "node items != union of children");
            union
        }
        let mut all = check(&h);
        all.sort_unstable();
        let want: Vec<usize> = (0..pts.len()).collect();
        prop_assert_eq!(all, want);
    }
}
