//! Self-Organizing Map clustering (§2.2 of the paper lists SOM among
//! the implemented clustering algorithms).
//!
//! A rectangular lattice of units is trained with the classic online
//! rule: at each step the best-matching unit (BMU) and its lattice
//! neighborhood move toward the sample, with exponentially decaying
//! learning rate and neighborhood radius. Points are then assigned to
//! their BMU, giving a flat clustering with at most `width × height`
//! clusters.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::kmeans::{dist_sq, Clustering};

/// SOM training configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SomParams {
    /// Lattice width (number of unit columns).
    pub width: usize,
    /// Lattice height (number of unit rows).
    pub height: usize,
    /// Training epochs (full passes over the data).
    pub epochs: usize,
    /// Initial learning rate.
    pub learning_rate: f64,
}

impl Default for SomParams {
    fn default() -> Self {
        SomParams {
            width: 4,
            height: 4,
            epochs: 30,
            learning_rate: 0.5,
        }
    }
}

/// A trained self-organizing map.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Som {
    /// Unit weight vectors, row-major (`height × width`).
    pub units: Vec<Vec<f64>>,
    /// Lattice width.
    pub width: usize,
    /// Lattice height.
    pub height: usize,
}

impl Som {
    /// Index of the best-matching unit for `p`.
    pub fn bmu(&self, p: &[f64]) -> usize {
        let mut best = 0;
        let mut best_d = f64::INFINITY;
        for (u, w) in self.units.iter().enumerate() {
            let d = dist_sq(p, w);
            if d < best_d {
                best_d = d;
                best = u;
            }
        }
        best
    }

    /// Lattice coordinates of unit `u`.
    pub fn coords(&self, u: usize) -> (f64, f64) {
        ((u % self.width) as f64, (u / self.width) as f64)
    }
}

/// Trains a SOM on `points` and returns it together with the induced
/// clustering (points assigned to their BMU; empty units produce empty
/// clusters that are dropped, with assignments renumbered).
pub fn som_cluster(points: &[Vec<f64>], params: &SomParams, seed: u64) -> (Som, Clustering) {
    assert!(!points.is_empty(), "cannot cluster an empty point set");
    assert!(
        params.width >= 1 && params.height >= 1,
        "lattice must be non-empty"
    );
    let dim = points[0].len();
    let n_units = params.width * params.height;
    let mut rng = StdRng::seed_from_u64(seed);

    // Initialize units at random data points (with jitter).
    let mut units: Vec<Vec<f64>> = (0..n_units)
        .map(|_| {
            let base = &points[rng.gen_range(0..points.len())];
            base.iter()
                .map(|v| v + rng.gen_range(-1e-6..1e-6))
                .collect()
        })
        .collect();

    let total_steps = (params.epochs * points.len()).max(1) as f64;
    let radius0 = (params.width.max(params.height) as f64) / 2.0;
    let mut step = 0f64;
    let mut order: Vec<usize> = (0..points.len()).collect();

    let som_coords = |u: usize| ((u % params.width) as f64, (u / params.width) as f64);

    for _epoch in 0..params.epochs {
        // Shuffle sample order each epoch.
        for i in (1..order.len()).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        for &pi in &order {
            let p = &points[pi];
            let t = step / total_steps;
            let lr = params.learning_rate * (-3.0 * t).exp();
            let radius = (radius0 * (-3.0 * t).exp()).max(0.5);

            // BMU.
            let mut bmu = 0;
            let mut best_d = f64::INFINITY;
            for (u, w) in units.iter().enumerate() {
                let d = dist_sq(p, w);
                if d < best_d {
                    best_d = d;
                    bmu = u;
                }
            }
            let (bx, by) = som_coords(bmu);
            // Update neighborhood.
            for (u, w) in units.iter_mut().enumerate() {
                let (ux, uy) = som_coords(u);
                let lat_d2 = (ux - bx).powi(2) + (uy - by).powi(2);
                let h = (-lat_d2 / (2.0 * radius * radius)).exp();
                if h < 1e-4 {
                    continue;
                }
                for d in 0..dim {
                    w[d] += lr * h * (p[d] - w[d]);
                }
            }
            step += 1.0;
        }
    }

    let som = Som {
        units,
        width: params.width,
        height: params.height,
    };

    // Assign points to BMUs, dropping empty units.
    let raw: Vec<usize> = points.iter().map(|p| som.bmu(p)).collect();
    let mut remap = vec![usize::MAX; n_units];
    let mut centroids: Vec<Vec<f64>> = Vec::new();
    let mut counts: Vec<usize> = Vec::new();
    let mut assignments = vec![0usize; points.len()];
    for (i, &u) in raw.iter().enumerate() {
        if remap[u] == usize::MAX {
            remap[u] = centroids.len();
            centroids.push(vec![0.0; dim]);
            counts.push(0);
        }
        let c = remap[u];
        assignments[i] = c;
        counts[c] += 1;
        for d in 0..dim {
            centroids[c][d] += points[i][d];
        }
    }
    for (c, count) in counts.iter().enumerate() {
        for x in centroids[c].iter_mut() {
            *x /= *count as f64;
        }
    }
    let sse = points
        .iter()
        .zip(&assignments)
        .map(|(p, &a)| dist_sq(p, &centroids[a]))
        .sum();
    (
        som,
        Clustering {
            assignments,
            centroids,
            sse,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn blobs(seed: u64) -> (Vec<Vec<f64>>, Vec<usize>) {
        let centers = [(0.0, 0.0), (10.0, 0.0), (5.0, 10.0)];
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pts = Vec::new();
        let mut truth = Vec::new();
        for (c, &(cx, cy)) in centers.iter().enumerate() {
            for _ in 0..30 {
                pts.push(vec![
                    cx + rng.gen_range(-1.0..1.0),
                    cy + rng.gen_range(-1.0..1.0),
                ]);
                truth.push(c);
            }
        }
        (pts, truth)
    }

    #[test]
    fn som_separates_blobs() {
        let (pts, truth) = blobs(2);
        let (_, c) = som_cluster(&pts, &SomParams::default(), 7);
        // Points from different blobs must not share a BMU cluster:
        // check that each cluster is pure.
        for cl in 0..c.k() {
            let members = c.members(cl);
            if members.is_empty() {
                continue;
            }
            let label = truth[members[0]];
            for &m in &members {
                assert_eq!(truth[m], label, "cluster {cl} mixes blobs");
            }
        }
    }

    #[test]
    fn assignments_in_range_and_nonempty() {
        let (pts, _) = blobs(9);
        let (som, c) = som_cluster(
            &pts,
            &SomParams {
                width: 3,
                height: 2,
                ..Default::default()
            },
            1,
        );
        assert_eq!(som.units.len(), 6);
        assert_eq!(c.assignments.len(), pts.len());
        assert!(c.k() >= 1 && c.k() <= 6);
        for &a in &c.assignments {
            assert!(a < c.k());
        }
        // Every reported cluster has at least one member (empties dropped).
        for cl in 0..c.k() {
            assert!(!c.members(cl).is_empty());
        }
    }

    #[test]
    fn som_is_deterministic_for_seed() {
        let (pts, _) = blobs(4);
        let (_, a) = som_cluster(&pts, &SomParams::default(), 5);
        let (_, b) = som_cluster(&pts, &SomParams::default(), 5);
        assert_eq!(a.assignments, b.assignments);
    }

    #[test]
    fn bmu_is_nearest_unit() {
        let som = Som {
            units: vec![vec![0.0, 0.0], vec![10.0, 0.0]],
            width: 2,
            height: 1,
        };
        assert_eq!(som.bmu(&[1.0, 0.0]), 0);
        assert_eq!(som.bmu(&[9.0, 0.0]), 1);
        let _ = som.coords(1);
    }
}
