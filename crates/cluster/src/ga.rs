//! Genetic-algorithm clustering (§2.2 of the paper lists GA among the
//! implemented clustering algorithms).
//!
//! Chromosomes encode `k` centroids; fitness is the negative
//! within-cluster SSE. The GA runs tournament selection, single-point
//! centroid crossover, and Gaussian mutation, with a one-step Lloyd
//! refinement per generation (a standard memetic hybrid that keeps the
//! search effective on small populations).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::kmeans::{dist_sq, nearest, Clustering};

/// GA clustering configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct GaParams {
    /// Population size.
    pub population: usize,
    /// Number of generations.
    pub generations: usize,
    /// Per-gene mutation probability.
    pub mutation_rate: f64,
    /// Tournament size for selection.
    pub tournament: usize,
}

impl Default for GaParams {
    fn default() -> Self {
        GaParams {
            population: 24,
            generations: 40,
            mutation_rate: 0.05,
            tournament: 3,
        }
    }
}

/// Runs GA clustering into `k` clusters. Deterministic for a fixed
/// seed.
pub fn ga_cluster(points: &[Vec<f64>], k: usize, params: &GaParams, seed: u64) -> Clustering {
    assert!(!points.is_empty(), "cannot cluster an empty point set");
    let k = k.max(1).min(points.len());
    let dim = points[0].len();
    let mut rng = StdRng::seed_from_u64(seed);

    // Data spread for mutation step size.
    let mut lo = vec![f64::INFINITY; dim];
    let mut hi = vec![f64::NEG_INFINITY; dim];
    for p in points {
        for d in 0..dim {
            lo[d] = lo[d].min(p[d]);
            hi[d] = hi[d].max(p[d]);
        }
    }
    let spread: Vec<f64> = lo.iter().zip(&hi).map(|(a, b)| (b - a).max(1e-9)).collect();

    type Chromosome = Vec<Vec<f64>>;
    let random_chromosome = |rng: &mut StdRng| -> Chromosome {
        (0..k)
            .map(|_| points[rng.gen_range(0..points.len())].clone())
            .collect()
    };

    let sse_of = |c: &Chromosome| -> f64 { points.iter().map(|p| nearest(p, c).1).sum() };

    // One Lloyd step: reassign and move centroids to member means.
    let lloyd_step = |c: &mut Chromosome| {
        let mut sums = vec![vec![0.0; dim]; k];
        let mut counts = vec![0usize; k];
        for p in points {
            let a = nearest(p, c).0;
            counts[a] += 1;
            for d in 0..dim {
                sums[a][d] += p[d];
            }
        }
        for i in 0..k {
            if counts[i] > 0 {
                for d in 0..dim {
                    c[i][d] = sums[i][d] / counts[i] as f64;
                }
            }
        }
    };

    let mut population: Vec<(Chromosome, f64)> = (0..params.population.max(2))
        .map(|_| {
            let c = random_chromosome(&mut rng);
            let f = sse_of(&c);
            (c, f)
        })
        .collect();

    for _gen in 0..params.generations {
        let mut next: Vec<(Chromosome, f64)> = Vec::with_capacity(population.len());
        // Elitism: carry the best chromosome over.
        let best = population
            .iter()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            // lint: allow(unwrap) — population.max(2) guarantees at least two entries
            .expect("non-empty population")
            .clone();
        next.push(best);

        while next.len() < population.len() {
            // Tournament selection of two parents.
            let pick = |rng: &mut StdRng| -> &Chromosome {
                let mut best_i = rng.gen_range(0..population.len());
                for _ in 1..params.tournament {
                    let j = rng.gen_range(0..population.len());
                    if population[j].1 < population[best_i].1 {
                        best_i = j;
                    }
                }
                &population[best_i].0
            };
            let pa = pick(&mut rng).clone();
            let pb = pick(&mut rng).clone();
            // Single-point crossover on centroid boundaries.
            let cut = rng.gen_range(0..=k);
            let mut child: Chromosome = pa[..cut].to_vec();
            child.extend_from_slice(&pb[cut..]);
            // Gaussian-ish mutation (uniform perturbation scaled to the
            // data spread).
            for gene in child.iter_mut() {
                for d in 0..dim {
                    if rng.gen_bool(params.mutation_rate) {
                        gene[d] += rng.gen_range(-0.1..0.1) * spread[d];
                    }
                }
            }
            lloyd_step(&mut child);
            let f = sse_of(&child);
            next.push((child, f));
        }
        population = next;
    }

    let (best, _) = population
        .into_iter()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        // lint: allow(unwrap) — population.max(2) guarantees at least two entries
        .expect("non-empty population");

    let assignments: Vec<usize> = points.iter().map(|p| nearest(p, &best).0).collect();
    let sse = points
        .iter()
        .zip(&assignments)
        .map(|(p, &a)| dist_sq(p, &best[a]))
        .sum();
    Clustering {
        assignments,
        centroids: best,
        sse,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmeans::kmeans;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn blobs(seed: u64) -> (Vec<Vec<f64>>, Vec<usize>) {
        let centers = [(0.0, 0.0), (10.0, 0.0), (5.0, 10.0)];
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pts = Vec::new();
        let mut truth = Vec::new();
        for (c, &(cx, cy)) in centers.iter().enumerate() {
            for _ in 0..25 {
                pts.push(vec![
                    cx + rng.gen_range(-1.0..1.0),
                    cy + rng.gen_range(-1.0..1.0),
                ]);
                truth.push(c);
            }
        }
        (pts, truth)
    }

    #[test]
    fn ga_recovers_blobs() {
        let (pts, truth) = blobs(6);
        let c = ga_cluster(&pts, 3, &GaParams::default(), 13);
        for g in 0..3 {
            let labels: std::collections::HashSet<usize> = truth
                .iter()
                .zip(&c.assignments)
                .filter(|(&t, _)| t == g)
                .map(|(_, &a)| a)
                .collect();
            assert_eq!(labels.len(), 1, "blob {g} split");
        }
    }

    #[test]
    fn ga_sse_close_to_kmeans() {
        let (pts, _) = blobs(8);
        let km = kmeans(&pts, 3, 1);
        let ga = ga_cluster(&pts, 3, &GaParams::default(), 2);
        assert!(
            ga.sse <= km.sse * 1.5 + 1e-9,
            "GA sse {} much worse than k-means {}",
            ga.sse,
            km.sse
        );
    }

    #[test]
    fn deterministic_for_seed() {
        let (pts, _) = blobs(10);
        let a = ga_cluster(&pts, 3, &GaParams::default(), 77);
        let b = ga_cluster(&pts, 3, &GaParams::default(), 77);
        assert_eq!(a.assignments, b.assignments);
    }

    #[test]
    fn single_point_input() {
        let c = ga_cluster(&[vec![1.0, 2.0]], 5, &GaParams::default(), 0);
        assert_eq!(c.k(), 1);
        assert_eq!(c.assignments, vec![0]);
        assert!(c.sse < 1e-12);
    }
}
