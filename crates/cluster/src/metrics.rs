//! Clustering quality metrics.

use crate::kmeans::dist_sq;

/// Mean silhouette coefficient of a clustering, in [-1, 1]; higher is
/// better. Points in singleton clusters contribute 0.
pub fn silhouette(points: &[Vec<f64>], assignments: &[usize]) -> f64 {
    assert_eq!(points.len(), assignments.len());
    let n = points.len();
    if n == 0 {
        return 0.0;
    }
    let k = assignments.iter().copied().max().map_or(0, |m| m + 1);
    if k <= 1 {
        return 0.0;
    }
    let mut total = 0.0;
    for i in 0..n {
        let own = assignments[i];
        // Mean intra-cluster distance (a) and smallest mean distance to
        // another cluster (b).
        let mut sums = vec![0.0f64; k];
        let mut counts = vec![0usize; k];
        for j in 0..n {
            if i == j {
                continue;
            }
            let d = dist_sq(&points[i], &points[j]).sqrt();
            sums[assignments[j]] += d;
            counts[assignments[j]] += 1;
        }
        if counts[own] == 0 {
            continue; // singleton
        }
        let a = sums[own] / counts[own] as f64;
        let b = (0..k)
            .filter(|&c| c != own && counts[c] > 0)
            .map(|c| sums[c] / counts[c] as f64)
            .fold(f64::INFINITY, f64::min);
        if b.is_finite() {
            total += (b - a) / a.max(b);
        }
    }
    total / n as f64
}

/// Rand index between two labelings, in [0, 1]; 1 means identical
/// partitions (up to label permutation).
pub fn rand_index(a: &[usize], b: &[usize]) -> f64 {
    assert_eq!(a.len(), b.len());
    let n = a.len();
    if n < 2 {
        return 1.0;
    }
    let mut agree = 0usize;
    let mut total = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            let same_a = a[i] == a[j];
            let same_b = b[i] == b[j];
            if same_a == same_b {
                agree += 1;
            }
            total += 1;
        }
    }
    agree as f64 / total as f64
}

/// Within-cluster sum of squared distances to centroids.
pub fn sse(points: &[Vec<f64>], assignments: &[usize], centroids: &[Vec<f64>]) -> f64 {
    points
        .iter()
        .zip(assignments)
        .map(|(p, &a)| dist_sq(p, &centroids[a]))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rand_index_identical_and_permuted() {
        let a = vec![0, 0, 1, 1, 2];
        assert_eq!(rand_index(&a, &a), 1.0);
        let permuted = vec![2, 2, 0, 0, 1];
        assert_eq!(rand_index(&a, &permuted), 1.0);
    }

    #[test]
    fn rand_index_detects_disagreement() {
        let a = vec![0, 0, 1, 1];
        let b = vec![0, 1, 0, 1];
        // Pairs: (0,1) same-diff, (2,3) same-diff, (0,2) diff-same,
        // (1,3) diff-same, (0,3) diff-diff agree, (1,2) diff-diff agree.
        assert!((rand_index(&a, &b) - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn silhouette_high_for_separated_clusters() {
        let mut pts = Vec::new();
        let mut asg = Vec::new();
        for i in 0..10 {
            pts.push(vec![i as f64 * 0.1, 0.0]);
            asg.push(0);
            pts.push(vec![100.0 + i as f64 * 0.1, 0.0]);
            asg.push(1);
        }
        assert!(silhouette(&pts, &asg) > 0.95);
    }

    #[test]
    fn silhouette_low_for_random_assignment() {
        let mut pts = Vec::new();
        let mut asg = Vec::new();
        for i in 0..20 {
            pts.push(vec![(i % 10) as f64, 0.0]);
            asg.push(i % 2); // interleaved labels: no structure
        }
        assert!(silhouette(&pts, &asg) < 0.2);
    }

    #[test]
    fn sse_zero_when_points_equal_centroids() {
        let pts = vec![vec![1.0], vec![2.0]];
        let asg = vec![0, 1];
        let cents = vec![vec![1.0], vec![2.0]];
        assert_eq!(sse(&pts, &asg, &cents), 0.0);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(silhouette(&[], &[]), 0.0);
        assert_eq!(silhouette(&[vec![1.0]], &[0]), 0.0);
        assert_eq!(rand_index(&[0], &[5]), 1.0);
    }
}
