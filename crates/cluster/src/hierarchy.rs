//! Hierarchical organization of shapes for query-by-browsing (§2.1).
//!
//! The paper organizes the database into a hierarchy the user drills
//! down through. We build it by recursive k-means: each internal node
//! splits its items into at most `branching` children until a node
//! holds `leaf_size` items or fewer.

use serde::{Deserialize, Serialize};

use crate::kmeans::kmeans;

/// A node of the browsing hierarchy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HierarchyNode {
    /// Centroid of all items beneath this node.
    pub centroid: Vec<f64>,
    /// Indices (into the original point set) of the items beneath this
    /// node.
    pub items: Vec<usize>,
    /// Child nodes (empty for leaves).
    pub children: Vec<HierarchyNode>,
}

impl HierarchyNode {
    /// Whether this node is a leaf.
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }

    /// Depth of the subtree rooted here (leaf = 1).
    pub fn depth(&self) -> usize {
        1 + self.children.iter().map(|c| c.depth()).max().unwrap_or(0)
    }

    /// Total number of nodes in the subtree.
    pub fn node_count(&self) -> usize {
        1 + self.children.iter().map(|c| c.node_count()).sum::<usize>()
    }
}

/// Parameters for hierarchy construction.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct HierarchyParams {
    /// Maximum children per internal node.
    pub branching: usize,
    /// Maximum items in a leaf.
    pub leaf_size: usize,
}

impl Default for HierarchyParams {
    fn default() -> Self {
        HierarchyParams {
            branching: 4,
            leaf_size: 8,
        }
    }
}

/// Builds the browsing hierarchy over `points`.
pub fn build_hierarchy(points: &[Vec<f64>], params: &HierarchyParams, seed: u64) -> HierarchyNode {
    assert!(!points.is_empty(), "cannot build a hierarchy over nothing");
    assert!(params.branching >= 2, "branching must be at least 2");
    let items: Vec<usize> = (0..points.len()).collect();
    build_node(points, items, params, seed)
}

fn build_node(
    points: &[Vec<f64>],
    items: Vec<usize>,
    params: &HierarchyParams,
    seed: u64,
) -> HierarchyNode {
    let dim = points[0].len();
    let mut centroid = vec![0.0; dim];
    for &i in &items {
        for d in 0..dim {
            centroid[d] += points[i][d];
        }
    }
    for v in centroid.iter_mut() {
        *v /= items.len() as f64;
    }

    if items.len() <= params.leaf_size {
        return HierarchyNode {
            centroid,
            items,
            children: Vec::new(),
        };
    }

    let subset: Vec<Vec<f64>> = items.iter().map(|&i| points[i].clone()).collect();
    let clustering = kmeans(&subset, params.branching, seed);
    // Group item ids by cluster.
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); clustering.k()];
    for (local, &a) in clustering.assignments.iter().enumerate() {
        groups[a].push(items[local]);
    }
    let groups: Vec<Vec<usize>> = groups.into_iter().filter(|g| !g.is_empty()).collect();

    // Degenerate split (all points identical): stop here.
    if groups.len() <= 1 {
        return HierarchyNode {
            centroid,
            items,
            children: Vec::new(),
        };
    }

    let children = groups
        .into_iter()
        .enumerate()
        .map(|(gi, g)| build_node(points, g, params, seed.wrapping_add(gi as u64 + 1)))
        .collect();
    HierarchyNode {
        centroid,
        items,
        children,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn blobs(n_per: usize) -> Vec<Vec<f64>> {
        let centers = [(0.0, 0.0), (20.0, 0.0), (0.0, 20.0), (20.0, 20.0)];
        let mut rng = StdRng::seed_from_u64(3);
        let mut pts = Vec::new();
        for &(cx, cy) in &centers {
            for _ in 0..n_per {
                pts.push(vec![
                    cx + rng.gen_range(-1.0..1.0),
                    cy + rng.gen_range(-1.0..1.0),
                ]);
            }
        }
        pts
    }

    #[test]
    fn hierarchy_covers_all_items_exactly_once() {
        let pts = blobs(20);
        let h = build_hierarchy(&pts, &HierarchyParams::default(), 5);
        assert_eq!(h.items.len(), pts.len());
        // Leaves partition the items.
        fn leaf_items(n: &HierarchyNode, out: &mut Vec<usize>) {
            if n.is_leaf() {
                out.extend(&n.items);
            } else {
                for c in &n.children {
                    leaf_items(c, out);
                }
            }
        }
        let mut all = Vec::new();
        leaf_items(&h, &mut all);
        all.sort_unstable();
        let want: Vec<usize> = (0..pts.len()).collect();
        assert_eq!(all, want);
    }

    #[test]
    fn leaves_respect_leaf_size() {
        let pts = blobs(25);
        let params = HierarchyParams {
            branching: 3,
            leaf_size: 10,
        };
        let h = build_hierarchy(&pts, &params, 2);
        fn check(n: &HierarchyNode, leaf_size: usize) {
            if n.is_leaf() {
                assert!(
                    n.items.len() <= leaf_size,
                    "leaf with {} items",
                    n.items.len()
                );
            } else {
                for c in &n.children {
                    check(c, leaf_size);
                }
            }
        }
        check(&h, 10);
        assert!(h.depth() >= 2);
    }

    #[test]
    fn identical_points_terminate() {
        let pts = vec![vec![1.0, 1.0]; 50];
        let h = build_hierarchy(
            &pts,
            &HierarchyParams {
                branching: 4,
                leaf_size: 8,
            },
            0,
        );
        // Can't split identical points: becomes a single (oversize) leaf.
        assert!(h.is_leaf());
        assert_eq!(h.items.len(), 50);
    }

    #[test]
    fn root_centroid_is_global_mean() {
        let pts = vec![
            vec![0.0, 0.0],
            vec![4.0, 0.0],
            vec![0.0, 4.0],
            vec![4.0, 4.0],
        ];
        let h = build_hierarchy(&pts, &HierarchyParams::default(), 1);
        assert!((h.centroid[0] - 2.0).abs() < 1e-12);
        assert!((h.centroid[1] - 2.0).abs() < 1e-12);
        assert_eq!(h.node_count(), 1);
    }

    #[test]
    fn drill_down_reaches_single_blob() {
        let pts = blobs(20);
        let h = build_hierarchy(
            &pts,
            &HierarchyParams {
                branching: 4,
                leaf_size: 25,
            },
            7,
        );
        // The four blobs should separate at the first level.
        assert!(h.children.len() >= 2);
        for c in &h.children {
            // Each child's items should be spatially tight.
            let xs: Vec<f64> = c.items.iter().map(|&i| pts[i][0]).collect();
            let spread = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
                - xs.iter().cloned().fold(f64::INFINITY, f64::min);
            assert!(spread < 25.0, "child spans {spread}");
        }
    }
}
