//! k-means clustering (Lloyd's algorithm with k-means++ seeding).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A flat clustering of a point set.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Clustering {
    /// Cluster index per input point.
    pub assignments: Vec<usize>,
    /// Cluster centroids.
    pub centroids: Vec<Vec<f64>>,
    /// Sum of squared distances of points to their centroids.
    pub sse: f64,
}

impl Clustering {
    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    /// Indices of the points assigned to cluster `c`.
    pub fn members(&self, c: usize) -> Vec<usize> {
        self.assignments
            .iter()
            .enumerate()
            .filter(|(_, &a)| a == c)
            .map(|(i, _)| i)
            .collect()
    }
}

/// Squared Euclidean distance.
pub(crate) fn dist_sq(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Runs k-means with k-means++ initialization.
///
/// `points` must be non-empty and share a dimension; `k` is clamped to
/// the number of points. Deterministic for a fixed `seed`.
///
/// ```
/// use tdess_cluster::kmeans;
/// let points = vec![vec![0.0], vec![0.1], vec![9.0], vec![9.1]];
/// let c = kmeans(&points, 2, 42);
/// assert_eq!(c.assignments[0], c.assignments[1]);
/// assert_ne!(c.assignments[0], c.assignments[2]);
/// ```
pub fn kmeans(points: &[Vec<f64>], k: usize, seed: u64) -> Clustering {
    assert!(!points.is_empty(), "cannot cluster an empty point set");
    let k = k.max(1).min(points.len());
    let mut rng = StdRng::seed_from_u64(seed);

    let mut centroids = kmeans_pp_init(points, k, &mut rng);
    let mut assignments = vec![0usize; points.len()];

    for _iter in 0..200 {
        // Assign.
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let best = nearest(p, &centroids).0;
            if assignments[i] != best {
                assignments[i] = best;
                changed = true;
            }
        }
        // Update.
        let dim = points[0].len();
        let mut sums = vec![vec![0.0; dim]; k];
        let mut counts = vec![0usize; k];
        for (p, &a) in points.iter().zip(&assignments) {
            counts[a] += 1;
            for d in 0..dim {
                sums[a][d] += p[d];
            }
        }
        for c in 0..k {
            if counts[c] == 0 {
                // Re-seed an empty cluster at the point farthest from
                // its centroid.
                let far = points
                    .iter()
                    .enumerate()
                    .max_by(|(_, a), (_, b)| {
                        let da = dist_sq(a, &centroids[assignments[0]]);
                        let db = dist_sq(b, &centroids[assignments[0]]);
                        da.total_cmp(&db)
                    })
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                centroids[c] = points[far].clone();
            } else {
                for d in 0..dim {
                    centroids[c][d] = sums[c][d] / counts[c] as f64;
                }
            }
        }
        if !changed {
            break;
        }
    }

    let sse = points
        .iter()
        .zip(&assignments)
        .map(|(p, &a)| dist_sq(p, &centroids[a]))
        .sum();
    Clustering {
        assignments,
        centroids,
        sse,
    }
}

/// Index and squared distance of the nearest centroid.
pub(crate) fn nearest(p: &[f64], centroids: &[Vec<f64>]) -> (usize, f64) {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (c, cent) in centroids.iter().enumerate() {
        let d = dist_sq(p, cent);
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    (best, best_d)
}

/// k-means++ seeding: the first centroid is uniform; each further
/// centroid is sampled proportionally to D²(x).
fn kmeans_pp_init(points: &[Vec<f64>], k: usize, rng: &mut StdRng) -> Vec<Vec<f64>> {
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(points[rng.gen_range(0..points.len())].clone());
    while centroids.len() < k {
        let d2: Vec<f64> = points.iter().map(|p| nearest(p, &centroids).1).collect();
        let total: f64 = d2.iter().sum();
        if total <= 0.0 {
            // All points coincide with centroids: duplicate one.
            centroids.push(points[rng.gen_range(0..points.len())].clone());
            continue;
        }
        let mut target = rng.gen_range(0.0..total);
        let mut chosen = points.len() - 1;
        for (i, &d) in d2.iter().enumerate() {
            target -= d;
            if target <= 0.0 {
                chosen = i;
                break;
            }
        }
        centroids.push(points[chosen].clone());
    }
    centroids
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three well-separated 2-D blobs.
    pub(crate) fn blobs(seed: u64) -> (Vec<Vec<f64>>, Vec<usize>) {
        let centers = [(0.0, 0.0), (10.0, 0.0), (5.0, 10.0)];
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pts = Vec::new();
        let mut truth = Vec::new();
        for (c, &(cx, cy)) in centers.iter().enumerate() {
            for _ in 0..30 {
                pts.push(vec![
                    cx + rng.gen_range(-1.0..1.0),
                    cy + rng.gen_range(-1.0..1.0),
                ]);
                truth.push(c);
            }
        }
        (pts, truth)
    }

    #[test]
    fn recovers_separated_blobs() {
        let (pts, truth) = blobs(1);
        let c = kmeans(&pts, 3, 42);
        assert_eq!(c.k(), 3);
        // Every ground-truth cluster maps to exactly one k-means label.
        for g in 0..3 {
            let labels: std::collections::HashSet<usize> = truth
                .iter()
                .zip(&c.assignments)
                .filter(|(&t, _)| t == g)
                .map(|(_, &a)| a)
                .collect();
            assert_eq!(labels.len(), 1, "blob {g} split across labels");
        }
        assert!(c.sse < 90.0 * 2.0, "sse {}", c.sse);
    }

    #[test]
    fn k_clamped_to_point_count() {
        let pts = vec![vec![0.0], vec![1.0]];
        let c = kmeans(&pts, 10, 0);
        assert_eq!(c.k(), 2);
        assert!(c.sse < 1e-12);
    }

    #[test]
    fn single_cluster_centroid_is_mean() {
        let pts = vec![
            vec![0.0, 0.0],
            vec![2.0, 0.0],
            vec![0.0, 2.0],
            vec![2.0, 2.0],
        ];
        let c = kmeans(&pts, 1, 7);
        assert_eq!(c.centroids.len(), 1);
        assert!((c.centroids[0][0] - 1.0).abs() < 1e-12);
        assert!((c.centroids[0][1] - 1.0).abs() < 1e-12);
        assert!((c.sse - 8.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let (pts, _) = blobs(3);
        let a = kmeans(&pts, 3, 99);
        let b = kmeans(&pts, 3, 99);
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.sse, b.sse);
    }

    #[test]
    fn members_partition_points() {
        let (pts, _) = blobs(5);
        let c = kmeans(&pts, 3, 11);
        let total: usize = (0..c.k()).map(|k| c.members(k).len()).sum();
        assert_eq!(total, pts.len());
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_input_rejected() {
        let _ = kmeans(&[], 3, 0);
    }
}
