//! # tdess-cluster — clustering for 3DESS hierarchical browsing
//!
//! Implements the SERVER-layer clustering module of §2.2: k-means
//! (with k-means++ seeding), self-organizing maps, genetic-algorithm
//! clustering, a recursive partition hierarchy for query-by-browsing,
//! and quality metrics (silhouette, Rand index, SSE).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ga;
pub mod hierarchy;
pub mod kmeans;
pub mod metrics;
pub mod som;

pub use ga::{ga_cluster, GaParams};
pub use hierarchy::{build_hierarchy, HierarchyNode, HierarchyParams};
pub use kmeans::{kmeans, Clustering};
pub use metrics::{rand_index, silhouette, sse};
pub use som::{som_cluster, Som, SomParams};
