//! Property tests for the feature extractors: invariance under
//! similarity transforms across the full family zoo, and normalization
//! idempotence on random profiles.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tdess_dataset::Family;
use tdess_features::{moment_invariants, normalize, principal_moments};
use tdess_geom::polygon::regular_ngon;
use tdess_geom::{extrude, mesh_moments, Mat3, Polygon, Vec3};

fn arb_family() -> impl Strategy<Value = Family> {
    prop::sample::select(Family::ALL.to_vec())
}

fn arb_rotation() -> impl Strategy<Value = Mat3> {
    (
        (-1.0f64..1.0, -1.0f64..1.0, -1.0f64..1.0),
        0.0f64..std::f64::consts::TAU,
    )
        .prop_filter_map("axis too short", |((x, y, z), angle)| {
            Vec3::new(x, y, z)
                .normalized()
                .map(|axis| Mat3::rotation_axis_angle(axis, angle))
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Moment invariants of ANY corpus family are invariant under
    /// similarity transforms (translation + rotation + uniform scale).
    #[test]
    fn family_moment_invariants_are_invariant(
        fam in arb_family(),
        seed in 0u64..500,
        r in arb_rotation(),
        s in 0.5f64..2.5,
        tx in -20.0f64..20.0,
    ) {
        let mesh = fam.generate(&mut StdRng::seed_from_u64(seed));
        let f0 = moment_invariants(&mesh_moments(&mesh));
        let mut moved = mesh.clone();
        moved.scale_uniform(s);
        moved.rotate(&r);
        moved.translate(Vec3::new(tx, -tx * 0.5, tx * 0.3));
        let f1 = moment_invariants(&mesh_moments(&moved));
        for i in 0..3 {
            prop_assert!(
                (f0[i] - f1[i]).abs() < 1e-7 * (1.0 + f0[i].abs()),
                "{}: F{} {} vs {}", fam.name(), i + 1, f0[i], f1[i]
            );
        }
    }

    /// Principal moments of the normalized model are similarity-
    /// invariant for every family, and always sorted.
    #[test]
    fn family_principal_moments_are_invariant(
        fam in arb_family(),
        seed in 0u64..500,
        r in arb_rotation(),
        s in 0.5f64..2.5,
    ) {
        let mesh = fam.generate(&mut StdRng::seed_from_u64(seed));
        let p0 = principal_moments(&normalize(&mesh).unwrap());
        prop_assert!(p0[0] >= p0[1] && p0[1] >= p0[2], "{p0:?}");
        let mut moved = mesh.clone();
        moved.scale_uniform(s);
        moved.rotate(&r);
        let p1 = principal_moments(&normalize(&moved).unwrap());
        for i in 0..3 {
            prop_assert!(
                (p0[i] - p1[i]).abs() < 1e-6 * (1.0 + p0[i].abs()),
                "{}: PM{} {} vs {}", fam.name(), i, p0[i], p1[i]
            );
        }
    }

    /// Normalization of random extruded n-gon prisms is idempotent and
    /// produces unit volume with sorted second moments.
    #[test]
    fn normalization_idempotent_on_random_prisms(
        n in 3usize..16,
        radius in 0.3f64..3.0,
        height in 0.2f64..5.0,
        phase in 0.0f64..6.0,
    ) {
        let mesh = extrude(
            &Polygon::simple(regular_ngon(n, radius, 0.0, 0.0, phase)),
            height,
        );
        let nm1 = normalize(&mesh).unwrap();
        prop_assert!((nm1.mesh.signed_volume() - 1.0).abs() < 1e-9);
        let nm2 = normalize(&nm1.mesh).unwrap();
        prop_assert!((nm2.scale - 1.0).abs() < 1e-9, "rescaled by {}", nm2.scale);
        let mu1 = mesh_moments(&nm1.mesh).central();
        let mu2 = mesh_moments(&nm2.mesh).central();
        prop_assert!((mu1.m200 - mu2.m200).abs() < 1e-9);
        prop_assert!((mu1.m020 - mu2.m020).abs() < 1e-9);
        prop_assert!((mu1.m002 - mu2.m002).abs() < 1e-9);
    }
}
