//! Pose normalization (§3.1 of the paper).
//!
//! A model is brought to canonical form by imposing the paper's
//! normalization criteria on its moments (Eq. 3.2–3.4):
//!
//! 1. **translation** — the centroid moves to the origin
//!    (`m100 = m010 = m001 = 0`);
//! 2. **scale** — the volume is fixed to a constant (`m000 = 1`);
//! 3. **orientation** — the principal axes align with the coordinate
//!    axes (`m110 = m101 = m011 = 0`) with `µxx ≥ µyy ≥ µzz`, and the
//!    reflection ambiguity is resolved by requiring the model's extent
//!    in each positive half-space to dominate.

use serde::{Deserialize, Serialize};
use tdess_geom::{mesh_moments, sym3_eigen, Mat3, TriMesh, Vec3};

/// Result of normalizing a model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NormalizedModel {
    /// The canonical-form mesh (unit volume, centroid at origin,
    /// principal axes on X ≥ Y ≥ Z).
    pub mesh: TriMesh,
    /// Translation applied *before* scaling and rotation
    /// (the negated original centroid).
    pub translation: Vec3,
    /// Uniform scale factor applied to reach unit volume.
    pub scale: f64,
    /// Rotation applied after translation and scaling (rows are the
    /// original principal axes).
    pub rotation: Mat3,
    /// Axis sign flips applied to resolve the reflection ambiguity
    /// (+1 or -1 per axis).
    pub flips: Vec3,
}

/// Errors from normalization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NormalizeError {
    /// The mesh has (numerically) zero volume, so scale normalization
    /// is impossible.
    ZeroVolume,
}

impl std::fmt::Display for NormalizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NormalizeError::ZeroVolume => write!(f, "mesh volume is zero; cannot normalize scale"),
        }
    }
}

impl std::error::Error for NormalizeError {}

/// Normalizes a mesh to canonical pose per §3.1.
///
/// ```
/// use tdess_features::normalize;
/// use tdess_geom::{primitives, Vec3};
///
/// let mut mesh = primitives::box_mesh(Vec3::new(1.0, 4.0, 2.0));
/// mesh.translate(Vec3::new(7.0, -3.0, 2.0));
/// let nm = normalize(&mesh).unwrap();
/// // Unit volume, centroid at origin, longest axis on X.
/// assert!((nm.mesh.signed_volume() - 1.0).abs() < 1e-9);
/// let e = nm.mesh.bounding_box().extent();
/// assert!(e.x >= e.y && e.y >= e.z);
/// ```
pub fn normalize(mesh: &TriMesh) -> Result<NormalizedModel, NormalizeError> {
    let _stage = tdess_obs::StageTimer::start(tdess_obs::Stage::Normalize);
    let m = mesh_moments(mesh);
    if m.m000 <= 1e-12 {
        return Err(NormalizeError::ZeroVolume);
    }

    // 1. Translate the centroid to the origin (Eq. 3.2).
    let centroid = m.centroid();
    // hotpath: allow(hot-alloc) — the normalized mesh is the returned artifact
    let mut out = mesh.clone();
    out.translate(-centroid);

    // 2. Scale to unit volume (Eq. 3.3 with C = 1).
    let scale = m.m000.powf(-1.0 / 3.0);
    out.scale_uniform(scale);

    // 3. Rotate so the second-moment matrix is diagonal with
    //    µxx ≥ µyy ≥ µzz (Eq. 3.4 plus the ordering constraint).
    let mu = mesh_moments(&out); // central by construction
    let eig = sym3_eigen(&mu.second_moment_matrix());
    // Columns of eig.vectors are the principal axes (descending
    // eigenvalue); mapping x' = Vᵀ x sends axis i to coordinate i.
    let rotation = eig.vectors.transpose();
    out.rotate(&rotation);

    // 4. Resolve the reflection ambiguity: require the maximum extent
    //    on each axis to lie in the positive half-space.
    let bb = out.bounding_box();
    let mut flips = Vec3::ONE;
    for axis in 0..3 {
        if -bb.min[axis] > bb.max[axis] + 1e-12 {
            flips[axis] = -1.0;
        }
    }
    if flips != Vec3::ONE {
        let f = flips;
        out.map_vertices(|v| Vec3::new(v.x * f.x, v.y * f.y, v.z * f.z));
        // An odd number of flips mirrors the solid; restore outward
        // orientation.
        if f.x * f.y * f.z < 0.0 {
            out.flip_orientation();
        }
    }

    Ok(NormalizedModel {
        mesh: out,
        translation: -centroid,
        scale,
        rotation,
        flips,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdess_geom::primitives;

    fn canonical_checks(nm: &NormalizedModel) {
        let m = mesh_moments(&nm.mesh);
        // Unit volume.
        assert!((m.m000 - 1.0).abs() < 1e-9, "volume {}", m.m000);
        // Centroid at origin.
        assert!(
            m.centroid().approx_eq(Vec3::ZERO, 1e-9),
            "{:?}",
            m.centroid()
        );
        // Off-diagonal second moments vanish.
        assert!(m.m110.abs() < 1e-8, "m110 {}", m.m110);
        assert!(m.m101.abs() < 1e-8, "m101 {}", m.m101);
        assert!(m.m011.abs() < 1e-8, "m011 {}", m.m011);
        // Ordered principal moments.
        assert!(m.m200 >= m.m020 - 1e-9);
        assert!(m.m020 >= m.m002 - 1e-9);
    }

    #[test]
    fn box_normalizes_to_canonical_form() {
        let mesh = primitives::box_mesh(Vec3::new(3.0, 1.0, 2.0));
        let nm = normalize(&mesh).unwrap();
        canonical_checks(&nm);
        // The longest box axis (x = 3) must land on X; extents sorted.
        let e = nm.mesh.bounding_box().extent();
        assert!(e.x >= e.y && e.y >= e.z, "extents {e:?}");
        assert!(nm.mesh.is_watertight());
    }

    #[test]
    fn normalization_is_invariant_to_rigid_motion_and_scale() {
        let base = primitives::box_mesh(Vec3::new(3.0, 1.0, 2.0));
        let nm0 = normalize(&base).unwrap();
        let mu0 = mesh_moments(&nm0.mesh);

        let mut moved = base.clone();
        moved.scale_uniform(2.7);
        moved.rotate(&Mat3::rotation_axis_angle(Vec3::new(0.3, 1.0, -0.5), 1.2));
        moved.translate(Vec3::new(10.0, -4.0, 6.0));
        let nm1 = normalize(&moved).unwrap();
        canonical_checks(&nm1);
        let mu1 = mesh_moments(&nm1.mesh);
        assert!((mu0.m200 - mu1.m200).abs() < 1e-8);
        assert!((mu0.m020 - mu1.m020).abs() < 1e-8);
        assert!((mu0.m002 - mu1.m002).abs() < 1e-8);
    }

    #[test]
    fn normalization_is_idempotent() {
        let mesh = primitives::cylinder(0.8, 3.0, 32);
        let nm1 = normalize(&mesh).unwrap();
        let nm2 = normalize(&nm1.mesh).unwrap();
        canonical_checks(&nm2);
        // Second normalization should be nearly the identity.
        assert!((nm2.scale - 1.0).abs() < 1e-9, "scale {}", nm2.scale);
        let mu1 = mesh_moments(&nm1.mesh);
        let mu2 = mesh_moments(&nm2.mesh);
        assert!((mu1.m200 - mu2.m200).abs() < 1e-9);
    }

    #[test]
    fn scale_factor_recorded_correctly() {
        let mut mesh = primitives::box_mesh(Vec3::ONE);
        mesh.scale_uniform(2.0); // volume 8
        let nm = normalize(&mesh).unwrap();
        assert!((nm.scale - 0.5).abs() < 1e-12, "scale {}", nm.scale);
    }

    #[test]
    fn asymmetric_shape_flips_to_positive_half_space() {
        // A cone pointing down -z has more extent below the centroid.
        let mesh = primitives::cone(1.0, 2.0, 32);
        let nm = normalize(&mesh).unwrap();
        let bb = nm.mesh.bounding_box();
        for axis in 0..3 {
            assert!(
                bb.max[axis] >= -bb.min[axis] - 1e-9,
                "axis {axis}: max {} < |min| {}",
                bb.max[axis],
                -bb.min[axis]
            );
        }
        // Orientation must remain outward after any mirror fix.
        assert!(nm.mesh.signed_volume() > 0.0);
        assert!(nm.mesh.is_watertight());
    }

    #[test]
    fn degenerate_mesh_rejected() {
        // A single triangle has no volume.
        let mesh = TriMesh::new(vec![Vec3::ZERO, Vec3::X, Vec3::Y], vec![[0, 1, 2]]);
        assert!(matches!(normalize(&mesh), Err(NormalizeError::ZeroVolume)));
    }
}
