//! Baseline shape descriptors from the paper's related work (§1).
//!
//! The paper positions its feature vectors against two families of
//! competing descriptors:
//!
//! * **shape distributions** (Osada et al., the paper's reference 15) — the D2
//!   histogram of distances between random surface point pairs;
//! * **shape histograms** (Ankerst et al., the paper's reference 14) — a
//!   complete, disjoint partitioning of space into cells; we implement
//!   the *shell* model: a histogram over concentric spherical shells
//!   around the centroid.
//!
//! Both are implemented here so the effectiveness comparison can
//! include the baselines (`tab_baselines`). Each descriptor is
//! translation- and rotation-invariant by construction and is
//! scale-normalized internally, matching the invariances of the
//! paper's own features.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tdess_geom::{mesh_moments, sample_surface, TriMesh};

/// Fixed RNG seed for descriptor sampling: descriptors must be a
/// deterministic function of the mesh.
const SAMPLE_SEED: u64 = 0x3D_E55;

/// Parameters for the D2 shape distribution.
#[derive(Debug, Clone, Copy)]
pub struct D2Params {
    /// Number of random surface points.
    pub samples: usize,
    /// Number of random point pairs measured.
    pub pairs: usize,
    /// Histogram bins.
    pub bins: usize,
}

impl Default for D2Params {
    fn default() -> Self {
        D2Params {
            samples: 512,
            pairs: 4096,
            bins: 64,
        }
    }
}

/// Computes the D2 shape distribution: a normalized histogram of
/// pairwise distances between random surface points, with the distance
/// axis scaled by the mean pair distance (Osada's normalization, which
/// grants scale invariance). Histogram mass sums to 1; the axis spans
/// [0, 3·mean].
pub fn shape_distribution_d2(mesh: &TriMesh, params: &D2Params) -> Vec<f64> {
    assert!(params.samples >= 2 && params.pairs >= 1 && params.bins >= 1);
    let mut rng = StdRng::seed_from_u64(SAMPLE_SEED);
    let pts = sample_surface(mesh, params.samples, &mut rng);

    use rand::Rng;
    // hotpath: allow(hot-alloc) — sample pairs and histogram are the computed artifact
    let mut dists = Vec::with_capacity(params.pairs);
    for _ in 0..params.pairs {
        let a = rng.gen_range(0..pts.len());
        let mut b = rng.gen_range(0..pts.len());
        if a == b {
            b = (b + 1) % pts.len();
        }
        dists.push(pts[a].distance(pts[b]));
    }
    let mean = dists.iter().sum::<f64>() / dists.len() as f64;
    let scale = 3.0 * mean.max(1e-12);

    let mut hist = vec![0.0; params.bins];
    for d in dists {
        let bin = ((d / scale) * params.bins as f64) as usize;
        hist[bin.min(params.bins - 1)] += 1.0;
    }
    let total: f64 = hist.iter().sum();
    for h in hist.iter_mut() {
        *h /= total;
    }
    hist
}

/// Parameters for the shell-model shape histogram.
#[derive(Debug, Clone, Copy)]
pub struct ShellParams {
    /// Number of random surface points.
    pub samples: usize,
    /// Number of concentric shells.
    pub shells: usize,
}

impl Default for ShellParams {
    fn default() -> Self {
        ShellParams {
            samples: 2048,
            shells: 32,
        }
    }
}

/// Computes the shell-model shape histogram: surface samples are
/// binned by their distance from the solid's centroid, with the radial
/// axis scaled by the maximum sample radius (scale invariance). Mass
/// sums to 1.
pub fn shell_histogram(mesh: &TriMesh, params: &ShellParams) -> Vec<f64> {
    assert!(params.samples >= 1 && params.shells >= 1);
    let mut rng = StdRng::seed_from_u64(SAMPLE_SEED ^ 0xA5A5);
    let pts = sample_surface(mesh, params.samples, &mut rng);
    let centroid = mesh_moments(mesh).centroid();

    // hotpath: allow(hot-alloc) — shell counts are the computed artifact
    let radii: Vec<f64> = pts.iter().map(|p| p.distance(centroid)).collect();
    let rmax = radii.iter().cloned().fold(0.0f64, f64::max).max(1e-12);

    let mut hist = vec![0.0; params.shells];
    for r in radii {
        let bin = ((r / rmax) * params.shells as f64) as usize;
        hist[bin.min(params.shells - 1)] += 1.0;
    }
    let total: f64 = hist.iter().sum();
    for h in hist.iter_mut() {
        *h /= total;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdess_geom::{primitives, Mat3, Vec3};

    fn l2(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt()
    }

    #[test]
    fn d2_is_a_distribution() {
        let mesh = primitives::box_mesh(Vec3::new(2.0, 1.0, 0.5));
        let h = shape_distribution_d2(&mesh, &D2Params::default());
        assert_eq!(h.len(), 64);
        assert!((h.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(h.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn d2_invariant_under_similarity_transform() {
        let mesh = primitives::cylinder(0.7, 2.0, 32);
        let h0 = shape_distribution_d2(&mesh, &D2Params::default());
        let mut moved = mesh.clone();
        moved.scale_uniform(2.4);
        moved.rotate(&Mat3::rotation_axis_angle(Vec3::new(1.0, 0.2, -0.4), 1.3));
        moved.translate(Vec3::new(10.0, -5.0, 3.0));
        let h1 = shape_distribution_d2(&moved, &D2Params::default());
        // Sampling is deterministic on the *mesh data*, which changed
        // coordinates — so histograms agree statistically, not exactly.
        assert!(l2(&h0, &h1) < 0.05, "distance {}", l2(&h0, &h1));
    }

    #[test]
    fn d2_distinguishes_sphere_from_rod() {
        let sphere =
            shape_distribution_d2(&primitives::uv_sphere(1.0, 24, 12), &D2Params::default());
        let rod = shape_distribution_d2(&primitives::cylinder(0.2, 6.0, 24), &D2Params::default());
        assert!(l2(&sphere, &rod) > 0.1, "distance {}", l2(&sphere, &rod));
    }

    #[test]
    fn shell_histogram_concentrates_for_sphere() {
        // All sphere surface points sit at the same radius: the mass
        // must concentrate in the outer shells.
        let h = shell_histogram(&primitives::uv_sphere(1.0, 32, 16), &ShellParams::default());
        assert_eq!(h.len(), 32);
        let outer: f64 = h[28..].iter().sum();
        assert!(outer > 0.95, "outer mass {outer}");
    }

    #[test]
    fn shell_histogram_spreads_for_rod() {
        let h = shell_histogram(&primitives::cylinder(0.2, 6.0, 24), &ShellParams::default());
        let occupied = h.iter().filter(|&&v| v > 0.0).count();
        assert!(occupied > 16, "only {occupied} shells occupied");
    }

    #[test]
    fn descriptors_are_deterministic() {
        let mesh = primitives::torus(1.5, 0.4, 24, 12);
        let a = shape_distribution_d2(&mesh, &D2Params::default());
        let b = shape_distribution_d2(&mesh, &D2Params::default());
        assert_eq!(a, b);
        let a = shell_histogram(&mesh, &ShellParams::default());
        let b = shell_histogram(&mesh, &ShellParams::default());
        assert_eq!(a, b);
    }
}
