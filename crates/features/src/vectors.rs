//! The four feature vectors of §3.5.

use serde::{Deserialize, Serialize};
use tdess_geom::{mesh_moments, sym3_eigen, Moments, TriMesh};

use crate::normalize::NormalizedModel;

/// Which feature vector to use for a search (§3.5). The interface
/// layer of the paper lets the user pick any of these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FeatureKind {
    /// F1–F3 moment invariants (Eq. 3.6–3.9), dimension 3.
    MomentInvariants,
    /// Geometric parameters (aspect ratios, surface/volume, scale,
    /// volume), dimension 5.
    GeometricParams,
    /// Principal moments of the normalized model (Eq. 3.10),
    /// dimension 3.
    PrincipalMoments,
    /// Eigenvalues of the skeletal-graph adjacency matrix, dimension
    /// [`crate::pipeline::DEFAULT_SPECTRUM_DIM`].
    Eigenvalues,
    /// Higher-order (third) central moments of the normalized model,
    /// dimension 10 — the "higher order invariants" of the paper's
    /// architecture (Fig. 1). Pose normalization supplies the
    /// invariance; §3.5.3 notes such moments are noise-sensitive,
    /// which the `abl_noise_sensitivity` experiment quantifies.
    HigherOrder,
    /// D2 shape distribution (Osada et al., the paper's related-work
    /// baseline, reference 15): histogram of random surface pair distances,
    /// dimension 64.
    ShapeDistribution,
    /// Shell-model shape histogram (Ankerst et al., the paper's
    /// related-work baseline, reference 14): radial surface-mass histogram,
    /// dimension 32.
    ShellHistogram,
}

impl FeatureKind {
    /// All feature kinds: the paper's four, the higher-order
    /// extension, and the two related-work baseline descriptors.
    pub const ALL: [FeatureKind; 7] = [
        FeatureKind::MomentInvariants,
        FeatureKind::GeometricParams,
        FeatureKind::PrincipalMoments,
        FeatureKind::Eigenvalues,
        FeatureKind::HigherOrder,
        FeatureKind::ShapeDistribution,
        FeatureKind::ShellHistogram,
    ];

    /// The four feature vectors evaluated in the paper (§3.5).
    pub const PAPER_FOUR: [FeatureKind; 4] = [
        FeatureKind::MomentInvariants,
        FeatureKind::GeometricParams,
        FeatureKind::PrincipalMoments,
        FeatureKind::Eigenvalues,
    ];

    /// Short human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            FeatureKind::MomentInvariants => "moment invariants",
            FeatureKind::GeometricParams => "geometric parameters",
            FeatureKind::PrincipalMoments => "principal moments",
            FeatureKind::Eigenvalues => "eigenvalues",
            FeatureKind::HigherOrder => "higher-order moments",
            FeatureKind::ShapeDistribution => "shape distribution (D2)",
            FeatureKind::ShellHistogram => "shell histogram",
        }
    }
}

/// Computes the three moment invariants F1, F2, F3 (Eq. 3.7–3.9) from
/// the central, scale-normalized second-order moments.
///
/// `I_lmn = µ_lmn / µ000^{5/3}` is invariant to translation (central
/// moments) and scale; F1–F3 are the coefficients of the
/// characteristic polynomial of the I-matrix, hence rotation invariant.
pub fn moment_invariants(moments: &Moments) -> [f64; 3] {
    let mu = moments.central();
    let denom = mu.m000.powf(5.0 / 3.0);
    assert!(denom > 0.0, "moment invariants of zero-volume solid");
    let i200 = mu.m200 / denom;
    let i020 = mu.m020 / denom;
    let i002 = mu.m002 / denom;
    let i110 = mu.m110 / denom;
    let i101 = mu.m101 / denom;
    let i011 = mu.m011 / denom;

    let f1 = i200 + i020 + i002;
    let f2 = i002 * i200 + i002 * i020 + i020 * i200 - i101 * i101 - i110 * i110 - i011 * i011;
    let f3 = i002 * i200 * i020 + 2.0 * i110 * i011 * i101
        - i101 * i101 * i020
        - i011 * i011 * i200
        - i110 * i110 * i002;
    [f1, f2, f3]
}

/// Computes the geometric-parameter feature vector (§3.5.2):
/// `[aspect₁, aspect₂, surface/volume, scale factor, volume]`.
///
/// * The aspect ratios come from the normalized model's bounding box
///   (extents sorted by the principal axes): `e_x/e_y` and `e_y/e_z`.
/// * Surface/volume ratio and volume are taken from the original
///   model, as the paper specifies; the scale factor is the one used
///   to normalize.
pub fn geometric_params(original: &TriMesh, normalized: &NormalizedModel) -> [f64; 5] {
    let e = normalized.mesh.bounding_box().extent();
    let aspect1 = e.x / e.y.max(1e-12);
    let aspect2 = e.y / e.z.max(1e-12);
    let area = original.surface_area();
    let volume = original.signed_volume();
    let sv = area / volume.max(1e-12);
    [aspect1, aspect2, sv, normalized.scale, volume]
}

/// Computes the higher-order feature vector: the ten central
/// third-order moments of the normalized model. Translation, scale,
/// and rotation are fixed by normalization, so the vector is
/// pose-invariant up to the normalization's own stability.
pub fn higher_order_moments(normalized: &NormalizedModel) -> [f64; 10] {
    tdess_geom::central_third_moments(&normalized.mesh).to_array()
}

/// Computes the principal moments of the normalized model
/// (Eq. 3.10): the eigenvalues of its second-moment matrix, in
/// descending order. After normalization the matrix is already nearly
/// diagonal; the eigenvalues make the vector exactly
/// rotation-independent.
pub fn principal_moments(normalized: &NormalizedModel) -> [f64; 3] {
    let mu = mesh_moments(&normalized.mesh).central();
    let eig = sym3_eigen(&mu.second_moment_matrix());
    [eig.values.x, eig.values.y, eig.values.z]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normalize::normalize;
    use tdess_geom::{primitives, Mat3, Vec3};

    #[test]
    fn cube_moment_invariants_known_values() {
        // Cube side s: I200 = 1/12 regardless of s, so F1 = 1/4,
        // F2 = 3/144, F3 = 1/1728.
        for s in [1.0, 2.5] {
            let mut mesh = primitives::box_mesh(Vec3::ONE);
            mesh.scale_uniform(s);
            let f = moment_invariants(&mesh_moments(&mesh));
            assert!((f[0] - 0.25).abs() < 1e-12, "F1 {}", f[0]);
            assert!((f[1] - 3.0 / 144.0).abs() < 1e-12, "F2 {}", f[1]);
            assert!((f[2] - 1.0 / 1728.0).abs() < 1e-12, "F3 {}", f[2]);
        }
    }

    #[test]
    fn sphere_moment_invariants_known_values() {
        // Sphere: I200 = r² / (5 V^{2/3}) with V = 4πr³/3.
        let mesh = primitives::uv_sphere(1.0, 64, 32);
        let f = moment_invariants(&mesh_moments(&mesh));
        let v: f64 = 4.0 / 3.0 * std::f64::consts::PI;
        let i = 1.0 / (5.0 * v.powf(2.0 / 3.0));
        assert!(
            (f[0] - 3.0 * i).abs() / (3.0 * i) < 0.01,
            "F1 {} vs {}",
            f[0],
            3.0 * i
        );
        assert!((f[1] - 3.0 * i * i).abs() / (3.0 * i * i) < 0.02);
        assert!((f[2] - i * i * i).abs() / (i * i * i) < 0.03);
    }

    #[test]
    fn moment_invariants_invariant_under_similarity_transform() {
        let mesh = primitives::box_mesh(Vec3::new(2.0, 1.0, 0.7));
        let f0 = moment_invariants(&mesh_moments(&mesh));
        let mut moved = mesh.clone();
        moved.scale_uniform(3.1);
        moved.rotate(&Mat3::rotation_axis_angle(Vec3::new(1.0, 2.0, 0.3), 0.8));
        moved.translate(Vec3::new(-5.0, 2.0, 9.0));
        let f1 = moment_invariants(&mesh_moments(&moved));
        for i in 0..3 {
            assert!(
                (f0[i] - f1[i]).abs() < 1e-10 * (1.0 + f0[i].abs()),
                "F{} changed: {} vs {}",
                i + 1,
                f0[i],
                f1[i]
            );
        }
    }

    #[test]
    fn principal_moments_sorted_and_scale_free() {
        let mesh = primitives::box_mesh(Vec3::new(3.0, 2.0, 1.0));
        let nm = normalize(&mesh).unwrap();
        let pm = principal_moments(&nm);
        assert!(pm[0] >= pm[1] && pm[1] >= pm[2], "{pm:?}");
        // Scaling the input must not change principal moments of the
        // normalized model.
        let mut big = mesh.clone();
        big.scale_uniform(4.0);
        let pm2 = principal_moments(&normalize(&big).unwrap());
        for i in 0..3 {
            assert!((pm[i] - pm2[i]).abs() < 1e-9, "{pm:?} vs {pm2:?}");
        }
    }

    #[test]
    fn principal_moments_of_normalized_cube() {
        // Unit-volume cube: all principal moments = 1/12.
        let mesh = primitives::box_mesh(Vec3::ONE);
        let pm = principal_moments(&normalize(&mesh).unwrap());
        for v in pm {
            assert!((v - 1.0 / 12.0).abs() < 1e-9, "{pm:?}");
        }
    }

    #[test]
    fn geometric_params_of_box() {
        let mesh = primitives::box_mesh(Vec3::new(4.0, 2.0, 1.0));
        let nm = normalize(&mesh).unwrap();
        let g = geometric_params(&mesh, &nm);
        assert!((g[0] - 2.0).abs() < 1e-9, "aspect1 {}", g[0]);
        assert!((g[1] - 2.0).abs() < 1e-9, "aspect2 {}", g[1]);
        // S/V = 2(8+4+2)/8 = 3.5.
        assert!((g[2] - 3.5).abs() < 1e-9, "s/v {}", g[2]);
        // Scale = volume^(-1/3) = 0.5.
        assert!((g[3] - 0.5).abs() < 1e-9, "scale {}", g[3]);
        assert!((g[4] - 8.0).abs() < 1e-9, "volume {}", g[4]);
    }

    #[test]
    fn geometric_params_distinguish_shell_from_block() {
        // A thin-walled tube has a much larger S/V than a solid block
        // of the same outer size.
        let tube = tdess_geom::extrude(
            &tdess_geom::Polygon::new(
                tdess_geom::polygon::regular_ngon(32, 1.0, 0.0, 0.0, 0.0),
                vec![tdess_geom::polygon::regular_ngon(32, 0.9, 0.0, 0.0, 0.0)],
            ),
            2.0,
        );
        let block = primitives::cylinder(1.0, 2.0, 32);
        let g_tube = geometric_params(&tube, &normalize(&tube).unwrap());
        let g_block = geometric_params(&block, &normalize(&block).unwrap());
        assert!(
            g_tube[2] > 3.0 * g_block[2],
            "tube S/V {} vs block {}",
            g_tube[2],
            g_block[2]
        );
    }

    #[test]
    fn feature_kind_labels_unique() {
        let labels: std::collections::HashSet<_> =
            FeatureKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), FeatureKind::ALL.len());
    }

    #[test]
    fn higher_order_zero_for_symmetric_solids() {
        let mesh = primitives::box_mesh(Vec3::new(2.0, 1.0, 0.5));
        let h = higher_order_moments(&normalize(&mesh).unwrap());
        for v in h {
            assert!(v.abs() < 1e-9, "{h:?}");
        }
    }

    #[test]
    fn higher_order_detects_asymmetry_invariantly() {
        let mesh = primitives::cone(1.0, 2.0, 48);
        let h0 = higher_order_moments(&normalize(&mesh).unwrap());
        assert!(h0.iter().any(|v| v.abs() > 1e-4), "{h0:?}");
        let mut moved = mesh.clone();
        moved.scale_uniform(2.3);
        moved.translate(Vec3::new(5.0, 1.0, -2.0));
        let h1 = higher_order_moments(&normalize(&moved).unwrap());
        for (a, b) in h0.iter().zip(&h1) {
            assert!((a - b).abs() < 1e-7, "{a} vs {b}");
        }
    }
}
