//! The feature-extraction pipeline (Fig. 2 of the paper).
//!
//! A query or database shape flows through normalization →
//! voxelization → skeletonization → skeletal-graph construction, and
//! the four feature vectors are read off along the way. This module
//! packages that flow behind [`FeatureExtractor`].

use serde::{Deserialize, Serialize};
use tdess_geom::{mesh_moments, TriMesh, Vec3};
use tdess_skeleton::{
    build_graph, prune_spurs, skeletonize_into, spectral_signature, SkeletalGraph, ThinScratch,
    ThinningParams,
};
use tdess_voxel::{voxelize_into, FloodScratch, VoxelGrid, VoxelizeParams};

use crate::baselines::{shape_distribution_d2, shell_histogram, D2Params, ShellParams};
use crate::normalize::{normalize, NormalizeError, NormalizedModel};
use crate::vectors::{
    geometric_params, higher_order_moments, moment_invariants, principal_moments, FeatureKind,
};

/// Default dimension of the eigenvalue feature vector.
pub const DEFAULT_SPECTRUM_DIM: usize = 8;

/// The complete set of feature vectors for one shape.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FeatureSet {
    /// Moment invariants F1–F3.
    pub moment_invariants: Vec<f64>,
    /// Geometric parameters.
    pub geometric: Vec<f64>,
    /// Principal moments of the normalized model.
    pub principal_moments: Vec<f64>,
    /// Skeletal-graph eigenvalue signature.
    pub eigenvalues: Vec<f64>,
    /// Higher-order (third) central moments of the normalized model.
    #[serde(default)]
    pub higher_order: Vec<f64>,
    /// D2 shape-distribution histogram (related-work baseline).
    #[serde(default)]
    pub shape_distribution: Vec<f64>,
    /// Shell-model shape histogram (related-work baseline).
    #[serde(default)]
    pub shell_histogram: Vec<f64>,
}

impl FeatureSet {
    /// The vector for a given feature kind.
    pub fn get(&self, kind: FeatureKind) -> &[f64] {
        match kind {
            FeatureKind::MomentInvariants => &self.moment_invariants,
            FeatureKind::GeometricParams => &self.geometric,
            FeatureKind::PrincipalMoments => &self.principal_moments,
            FeatureKind::Eigenvalues => &self.eigenvalues,
            FeatureKind::HigherOrder => &self.higher_order,
            FeatureKind::ShapeDistribution => &self.shape_distribution,
            FeatureKind::ShellHistogram => &self.shell_histogram,
        }
    }
}

/// Intermediate artifacts of the pipeline, useful for inspection,
/// debugging, and the browsing interface.
#[derive(Debug, Clone)]
pub struct PipelineArtifacts {
    /// The normalized model.
    pub normalized: NormalizedModel,
    /// Voxelization of the normalized model.
    pub voxels: VoxelGrid,
    /// The thinned skeleton.
    pub skeleton: VoxelGrid,
    /// The skeletal graph.
    pub graph: SkeletalGraph,
    /// The extracted feature vectors.
    pub features: FeatureSet,
}

/// Configuration of the feature-extraction pipeline.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FeatureExtractor {
    /// Voxel resolution along the longest axis (the paper's `N`).
    pub voxel_resolution: usize,
    /// Dimension of the eigenvalue signature.
    pub spectrum_dim: usize,
}

impl Default for FeatureExtractor {
    fn default() -> Self {
        FeatureExtractor {
            voxel_resolution: 48,
            spectrum_dim: DEFAULT_SPECTRUM_DIM,
        }
    }
}

/// Reusable buffers for [`FeatureExtractor::extract_with_scratch`]:
/// the voxel grid, the skeleton grid, and the per-stage scratch of the
/// voxelizer and thinner. One `ExtractScratch` held across queries
/// eliminates the per-query dense-grid allocations of the pipeline.
#[derive(Debug)]
pub struct ExtractScratch {
    voxels: VoxelGrid,
    skeleton: VoxelGrid,
    flood: FloodScratch,
    thin: ThinScratch,
}

impl Default for ExtractScratch {
    fn default() -> Self {
        ExtractScratch {
            voxels: VoxelGrid::new(1, 1, 1, Vec3::ZERO, 1.0),
            skeleton: VoxelGrid::new(1, 1, 1, Vec3::ZERO, 1.0),
            flood: FloodScratch::default(),
            thin: ThinScratch::default(),
        }
    }
}

std::thread_local! {
    /// Per-thread scratch behind [`FeatureExtractor::extract`], so the
    /// zero-argument API reuses buffers without any caller changes.
    static EXTRACT_SCRATCH: std::cell::RefCell<ExtractScratch> =
        std::cell::RefCell::new(ExtractScratch::default());
}

impl FeatureExtractor {
    /// Extracts all four feature vectors from a mesh.
    ///
    /// Reuses a per-thread [`ExtractScratch`], so repeated calls on one
    /// thread avoid re-allocating the dense grids. Results are
    /// bit-identical to [`FeatureExtractor::extract_detailed`].
    pub fn extract(&self, mesh: &TriMesh) -> Result<FeatureSet, NormalizeError> {
        EXTRACT_SCRATCH.with(|cell| match cell.try_borrow_mut() {
            Ok(mut scratch) => self.extract_with_scratch(mesh, &mut scratch),
            // Reentrant call (extractor invoked from inside another
            // extraction on this thread): fall back to fresh buffers.
            Err(_) => self.extract_with_scratch(mesh, &mut ExtractScratch::default()),
        })
    }

    /// [`FeatureExtractor::extract`] with caller-owned scratch buffers.
    pub fn extract_with_scratch(
        &self,
        mesh: &TriMesh,
        scratch: &mut ExtractScratch,
    ) -> Result<FeatureSet, NormalizeError> {
        let normalized = normalize(mesh)?;
        let ExtractScratch {
            voxels,
            skeleton,
            flood,
            thin,
        } = scratch;
        let (_graph, features) =
            self.run_pipeline(mesh, &normalized, voxels, skeleton, flood, thin);
        Ok(features)
    }

    /// Runs the pipeline on a model the caller already normalized —
    /// the extraction cache normalizes once to derive the content key
    /// and hands the result here, skipping a second normalization.
    ///
    /// `normalized` must be [`normalize`]\(`mesh`\)'s output for this
    /// same `mesh`; results are then bit-identical to
    /// [`FeatureExtractor::extract`]. Reuses the per-thread scratch
    /// like `extract`.
    pub fn extract_from_normalized(
        &self,
        mesh: &TriMesh,
        normalized: &NormalizedModel,
    ) -> FeatureSet {
        EXTRACT_SCRATCH.with(|cell| match cell.try_borrow_mut() {
            Ok(mut scratch) => {
                let ExtractScratch {
                    voxels,
                    skeleton,
                    flood,
                    thin,
                } = &mut *scratch;
                self.run_pipeline(mesh, normalized, voxels, skeleton, flood, thin)
                    .1
            }
            // Reentrant call: fresh buffers, same output.
            Err(_) => {
                let mut scratch = ExtractScratch::default();
                let ExtractScratch {
                    voxels,
                    skeleton,
                    flood,
                    thin,
                } = &mut scratch;
                self.run_pipeline(mesh, normalized, voxels, skeleton, flood, thin)
                    .1
            }
        })
    }

    /// Extracts features and returns every intermediate artifact.
    pub fn extract_detailed(&self, mesh: &TriMesh) -> Result<PipelineArtifacts, NormalizeError> {
        let normalized = normalize(mesh)?;
        // Artifacts are returned to the caller, so they get fresh
        // buffers instead of the per-thread scratch.
        let mut voxels = VoxelGrid::new(1, 1, 1, Vec3::ZERO, 1.0);
        let mut skeleton = VoxelGrid::new(1, 1, 1, Vec3::ZERO, 1.0);
        let (graph, features) = self.run_pipeline(
            mesh,
            &normalized,
            &mut voxels,
            &mut skeleton,
            &mut FloodScratch::default(),
            &mut ThinScratch::default(),
        );
        Ok(PipelineArtifacts {
            normalized,
            voxels,
            skeleton,
            graph,
            features,
        })
    }

    /// The shared stage sequence: voxelize → thin → prune → graph →
    /// spectrum, plus the mesh-side vectors. Grids and stage scratch
    /// come from the caller; output does not depend on their prior
    /// contents.
    fn run_pipeline(
        &self,
        mesh: &TriMesh,
        normalized: &NormalizedModel,
        voxels: &mut VoxelGrid,
        skeleton: &mut VoxelGrid,
        flood: &mut FloodScratch,
        thin: &mut ThinScratch,
    ) -> (SkeletalGraph, FeatureSet) {
        let mi = moment_invariants(&mesh_moments(mesh));
        let gp = geometric_params(mesh, normalized);
        let pm = principal_moments(normalized);
        let ho = higher_order_moments(normalized);
        let d2 = shape_distribution_d2(mesh, &D2Params::default());
        let sh = shell_histogram(mesh, &ShellParams::default());

        voxelize_into(
            &normalized.mesh,
            &VoxelizeParams {
                resolution: self.voxel_resolution,
                ..Default::default()
            },
            voxels,
            flood,
        );
        skeletonize_into(voxels, &ThinningParams::default(), skeleton, thin);
        // Remove thinning whiskers shorter than ~1/6 of the model's
        // voxel extent; they create fake junctions that fragment the
        // skeletal graph.
        prune_spurs(skeleton, (self.voxel_resolution / 8).max(3));
        let graph = build_graph(skeleton);
        let ev = spectral_signature(&graph, self.spectrum_dim);

        let features = FeatureSet {
            // hotpath: allow(hot-alloc) — the feature vectors are the returned artifact
            moment_invariants: mi.to_vec(),
            geometric: gp.to_vec(),
            principal_moments: pm.to_vec(),
            eigenvalues: ev,
            higher_order: ho.to_vec(),
            shape_distribution: d2,
            shell_histogram: sh,
        };
        debug_assert!(
            FeatureKind::ALL
                .iter()
                .all(|&k| features.get(k).iter().all(|v| v.is_finite())),
            "extracted feature vectors must be finite"
        );
        (graph, features)
    }

    /// Dimension of the vector produced for `kind` by this extractor.
    pub fn dim(&self, kind: FeatureKind) -> usize {
        match kind {
            FeatureKind::MomentInvariants => 3,
            FeatureKind::GeometricParams => 5,
            FeatureKind::PrincipalMoments => 3,
            FeatureKind::Eigenvalues => self.spectrum_dim,
            FeatureKind::HigherOrder => 10,
            FeatureKind::ShapeDistribution => D2Params::default().bins,
            FeatureKind::ShellHistogram => ShellParams::default().shells,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdess_geom::{primitives, Mat3, Vec3};

    #[test]
    fn extractor_produces_all_vectors_with_correct_dims() {
        let ex = FeatureExtractor::default();
        let mesh = primitives::box_mesh(Vec3::new(2.0, 1.0, 0.5));
        let fs = ex.extract(&mesh).unwrap();
        assert_eq!(
            fs.moment_invariants.len(),
            ex.dim(FeatureKind::MomentInvariants)
        );
        assert_eq!(fs.geometric.len(), ex.dim(FeatureKind::GeometricParams));
        assert_eq!(
            fs.principal_moments.len(),
            ex.dim(FeatureKind::PrincipalMoments)
        );
        assert_eq!(fs.eigenvalues.len(), ex.dim(FeatureKind::Eigenvalues));
        for kind in FeatureKind::ALL {
            assert!(!fs.get(kind).is_empty());
            assert!(fs.get(kind).iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn features_stable_under_rigid_motion() {
        let ex = FeatureExtractor {
            voxel_resolution: 32,
            ..Default::default()
        };
        let mesh = primitives::box_mesh(Vec3::new(3.0, 1.5, 0.8));
        let f0 = ex.extract(&mesh).unwrap();

        let mut moved = mesh.clone();
        moved.rotate(&Mat3::rotation_axis_angle(Vec3::new(0.2, 1.0, 0.7), 0.9));
        moved.translate(Vec3::new(4.0, -2.0, 1.0));
        let f1 = ex.extract(&moved).unwrap();

        // Moment invariants and principal moments are exactly
        // pose-invariant (up to numerics).
        for (a, b) in f0.moment_invariants.iter().zip(&f1.moment_invariants) {
            assert!((a - b).abs() < 1e-9, "MI {a} vs {b}");
        }
        for (a, b) in f0.principal_moments.iter().zip(&f1.principal_moments) {
            assert!((a - b).abs() < 1e-8, "PM {a} vs {b}");
        }
        // Aspect ratios (normalized-bbox based) are pose-invariant too.
        for i in 0..2 {
            assert!(
                (f0.geometric[i] - f1.geometric[i]).abs() < 1e-6,
                "aspect {i}: {} vs {}",
                f0.geometric[i],
                f1.geometric[i]
            );
        }
    }

    #[test]
    fn eigenvalue_signature_reflects_topology() {
        let ex = FeatureExtractor {
            voxel_resolution: 40,
            ..Default::default()
        };
        let rod = ex
            .extract(&primitives::box_mesh(Vec3::new(4.0, 0.5, 0.5)))
            .unwrap();
        let ring = ex.extract(&primitives::torus(1.0, 0.28, 48, 20)).unwrap();
        let d: f64 = rod
            .eigenvalues
            .iter()
            .zip(&ring.eigenvalues)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        assert!(d > 0.5, "rod and ring signatures too close: {d}");
    }

    #[test]
    fn artifacts_are_consistent() {
        let ex = FeatureExtractor {
            voxel_resolution: 32,
            ..Default::default()
        };
        let mesh = primitives::cylinder(0.6, 2.5, 24);
        let art = ex.extract_detailed(&mesh).unwrap();
        // Skeleton is a subset of the voxel model.
        for (i, j, k) in art.skeleton.iter_filled() {
            assert!(art.voxels.get(i as isize, j as isize, k as isize));
        }
        // Graph signature matches the features.
        let sig = spectral_signature(&art.graph, ex.spectrum_dim);
        assert_eq!(sig, art.features.eigenvalues);
        // Normalized model has unit volume.
        assert!((art.normalized.mesh.signed_volume() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn warm_scratch_matches_detailed_extraction_exactly() {
        // The per-thread scratch path must be bit-identical to the
        // fresh-buffer path, including when grid sizes shrink and grow
        // between consecutive shapes.
        let ex = FeatureExtractor {
            voxel_resolution: 32,
            ..Default::default()
        };
        let meshes = [
            primitives::box_mesh(Vec3::new(2.0, 1.0, 0.5)),
            primitives::torus(1.0, 0.28, 32, 12),
            primitives::cylinder(0.6, 2.5, 24),
        ];
        let mut scratch = ExtractScratch::default();
        for mesh in &meshes {
            let warm = ex.extract_with_scratch(mesh, &mut scratch).unwrap();
            let threaded = ex.extract(mesh).unwrap();
            let cold = ex.extract_detailed(mesh).unwrap().features;
            for kind in FeatureKind::ALL {
                assert_eq!(warm.get(kind), cold.get(kind), "{kind:?} diverged");
                assert_eq!(threaded.get(kind), cold.get(kind), "{kind:?} diverged");
            }
        }
    }

    #[test]
    fn zero_volume_input_errors() {
        let ex = FeatureExtractor::default();
        let mesh = TriMesh::new(vec![Vec3::ZERO, Vec3::X, Vec3::Y], vec![[0, 1, 2]]);
        assert!(ex.extract(&mesh).is_err());
    }
}
