//! # tdess-features — feature extraction for 3DESS
//!
//! Implements §3 of the paper: pose normalization (§3.1) and the four
//! shape feature vectors (§3.5) — moment invariants, geometric
//! parameters, principal moments, and skeletal-graph eigenvalues —
//! orchestrated by a pipeline that mirrors Fig. 2's query processing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
pub mod normalize;
pub mod pipeline;
pub mod vectors;

pub use baselines::{shape_distribution_d2, shell_histogram, D2Params, ShellParams};
pub use normalize::{normalize, NormalizeError, NormalizedModel};
pub use pipeline::{
    ExtractScratch, FeatureExtractor, FeatureSet, PipelineArtifacts, DEFAULT_SPECTRUM_DIM,
};
pub use vectors::{
    geometric_params, higher_order_moments, moment_invariants, principal_moments, FeatureKind,
};
