//! Multi-step similarity search (§4.2 of the paper).
//!
//! Instead of a single one-shot query, the user retrieves a candidate
//! set with one feature vector and *filters/re-ranks* it with others —
//! the paper's example retrieves 30 shapes by moment invariants,
//! re-orders them by geometric parameters, and presents the 10 most
//! similar. The paper reports this strategy beating every one-shot
//! search (average recall +51% over principal moments).

use serde::{Deserialize, Serialize};
use tdess_features::{FeatureKind, FeatureSet};
use tdess_index::QueryStats;
use tdess_obs::{Stage, StageTimer};

use crate::db::{Query, QueryMode, SearchHit, ShapeDatabase};
use crate::similarity::{similarity, weighted_distance, Weights};

/// A multi-step search plan.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MultiStepPlan {
    /// Feature vector per step; the first retrieves candidates, later
    /// ones re-rank them.
    pub steps: Vec<FeatureKind>,
    /// Candidate-set size retrieved by the first step (the paper uses
    /// 30).
    pub candidates: usize,
    /// Number of results presented after the last step (the paper uses
    /// 10).
    pub presented: usize,
}

impl MultiStepPlan {
    /// The paper's §4.2 configuration: moment invariants first, then
    /// geometric parameters; 30 candidates, 10 presented.
    pub fn paper_default() -> MultiStepPlan {
        MultiStepPlan {
            steps: vec![FeatureKind::MomentInvariants, FeatureKind::GeometricParams],
            candidates: 30,
            presented: 10,
        }
    }
}

/// Runs a multi-step search. Step 1 uses the database index; each
/// subsequent step re-ranks the surviving candidates by its feature
/// vector's distance. Results carry the similarity of the *final*
/// step's feature space.
pub fn multi_step_search(
    db: &ShapeDatabase,
    query: &FeatureSet,
    plan: &MultiStepPlan,
) -> Vec<SearchHit> {
    let mut stats = QueryStats::default();
    multi_step_search_with_stats(db, query, plan, &mut stats)
}

/// Like [`multi_step_search`], also accumulating index traversal
/// statistics: step 1's index accesses, plus one checked entry per
/// candidate distance computed in each re-ranking step.
pub fn multi_step_search_with_stats(
    db: &ShapeDatabase,
    query: &FeatureSet,
    plan: &MultiStepPlan,
    stats: &mut QueryStats,
) -> Vec<SearchHit> {
    assert!(!plan.steps.is_empty(), "plan needs at least one step");
    assert!(
        plan.candidates >= 1 && plan.presented >= 1,
        "degenerate plan sizes"
    );

    // Step 1: candidate retrieval through the index.
    let first = Query {
        kind: plan.steps[0],
        weights: Weights::unit(),
        mode: QueryMode::TopK(plan.candidates),
    };
    let mut hits = db.search_with_stats(query, &first, stats);

    // Later steps: re-rank candidates in the step's feature space.
    let _stage = (plan.steps.len() > 1).then(|| StageTimer::start(Stage::Rerank));
    for &kind in &plan.steps[1..] {
        let qv = query.get(kind);
        let dmax = db.dmax(kind);
        for h in hits.iter_mut() {
            let Some(stored) = db.get(h.id) else {
                continue; // defensive: search only returns live ids
            };
            stats.entries_checked += 1;
            let d = weighted_distance(qv, stored.features.get(kind), &Weights::unit());
            h.distance = d;
            h.similarity = similarity(d, dmax);
        }
        hits.sort_by(|a, b| a.distance.total_cmp(&b.distance));
    }

    hits.truncate(plan.presented);
    hits
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdess_features::FeatureExtractor;
    use tdess_geom::{primitives, Vec3};

    fn db_with_shapes() -> ShapeDatabase {
        let mut db = ShapeDatabase::new(FeatureExtractor {
            voxel_resolution: 20,
            ..Default::default()
        });
        for i in 0..4 {
            let s = 1.0 + i as f64 * 0.08;
            db.insert(
                format!("box-{i}"),
                primitives::box_mesh(Vec3::new(2.0 * s, 1.0 * s, 0.5 * s)),
            )
            .unwrap();
        }
        db.insert("sphere", primitives::uv_sphere(1.0, 16, 8))
            .unwrap();
        db.insert("rod", primitives::cylinder(0.3, 5.0, 16))
            .unwrap();
        db.insert("torus", primitives::torus(1.5, 0.4, 24, 12))
            .unwrap();
        db
    }

    #[test]
    fn multi_step_returns_presented_count() {
        let db = db_with_shapes();
        let q = db.get(1).unwrap().features.clone();
        let plan = MultiStepPlan {
            steps: vec![FeatureKind::MomentInvariants, FeatureKind::GeometricParams],
            candidates: 5,
            presented: 3,
        };
        let hits = multi_step_search(&db, &q, &plan);
        assert_eq!(hits.len(), 3);
        // Sorted by the final step's distance.
        for w in hits.windows(2) {
            assert!(w[0].distance <= w[1].distance + 1e-12);
        }
    }

    #[test]
    fn second_step_rerank_uses_its_feature_space() {
        let db = db_with_shapes();
        let q = db.get(1).unwrap().features.clone();
        let one_step = MultiStepPlan {
            steps: vec![FeatureKind::MomentInvariants],
            candidates: 7,
            presented: 7,
        };
        let two_step = MultiStepPlan {
            steps: vec![FeatureKind::MomentInvariants, FeatureKind::GeometricParams],
            candidates: 7,
            presented: 7,
        };
        let a = multi_step_search(&db, &q, &one_step);
        let b = multi_step_search(&db, &q, &two_step);
        assert_eq!(a.len(), b.len());
        // The identical shape stays rank 1 in both.
        assert_eq!(a[0].id, 1);
        assert_eq!(b[0].id, 1);
        // Distances in step-2 space differ from step-1 space for some
        // candidate.
        let same_everywhere = a
            .iter()
            .zip(&b)
            .all(|(x, y)| (x.distance - y.distance).abs() < 1e-12);
        assert!(!same_everywhere, "re-ranking had no effect at all");
    }

    #[test]
    fn candidate_limit_caps_recall() {
        let db = db_with_shapes();
        let q = db.get(1).unwrap().features.clone();
        // With 1 candidate, only the self-match can survive.
        let plan = MultiStepPlan {
            steps: vec![FeatureKind::MomentInvariants, FeatureKind::PrincipalMoments],
            candidates: 1,
            presented: 5,
        };
        let hits = multi_step_search(&db, &q, &plan);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, 1);
    }

    #[test]
    fn paper_default_plan_shape() {
        let p = MultiStepPlan::paper_default();
        assert_eq!(p.candidates, 30);
        assert_eq!(p.presented, 10);
        assert_eq!(p.steps[0], FeatureKind::MomentInvariants);
        assert_eq!(p.steps[1], FeatureKind::GeometricParams);
    }

    #[test]
    #[should_panic(expected = "at least one step")]
    fn empty_plan_rejected() {
        let db = db_with_shapes();
        let q = db.get(1).unwrap().features.clone();
        let _ = multi_step_search(
            &db,
            &q,
            &MultiStepPlan {
                steps: vec![],
                candidates: 5,
                presented: 5,
            },
        );
    }
}
