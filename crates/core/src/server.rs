//! The SERVER tier (§2.2): snapshot-isolated concurrent search,
//! batched queries, query metrics, and parallel bulk indexing.
//!
//! The paper's server layer handles "computation-intensive tasks" —
//! chiefly feature extraction — for many interactive clients. A naive
//! reader-writer lock around the database makes one slow query block
//! every insert (and, under fair locking, queued writers then block
//! all subsequent readers). This module instead keeps the database
//! behind an atomically swappable snapshot:
//!
//! * [`SearchServer`] — a cloneable handle whose readers clone an
//!   `Arc<ShapeDatabase>` in a critical section of a few instructions
//!   and then run *entirely lock-free*: feature extraction, one-shot
//!   search, and multi-step search all execute against an immutable
//!   snapshot. Writers serialize on a dedicated mutex, clone the
//!   current snapshot, mutate the clone, and publish it with a
//!   pointer swap — a search in flight never delays an insert, and an
//!   insert never delays a search;
//! * [`SearchServer::search_batch`] / [`SearchServer::multi_step_batch`]
//!   — a batch of query meshes fanned out across worker threads, all
//!   answered from one consistent snapshot;
//! * [`ServerMetrics`] — queries served, per-kind latency
//!   min/mean/max plus p50/p90/p99 quantiles backed by the `tdess-obs`
//!   log-linear histograms, aggregated index-traversal counters, and
//!   snapshot-swap count, readable via [`SearchServer::metrics`] (raw
//!   histogram snapshots via [`SearchServer::latency_snapshots`]);
//! * [`bulk_insert`] — feature extraction fanned out across worker
//!   threads (extraction dominates insert cost by orders of
//!   magnitude), with the index updates applied in one batch so ids
//!   remain deterministic in input order;
//! * [`SearchServer::with_cache`] — an optional content-addressed
//!   extraction cache (`tdess-cache`): repeat query meshes skip the
//!   extraction pipeline entirely, and N concurrent identical queries
//!   coalesce into one extraction. Counters via
//!   [`SearchServer::cache_stats`].

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};
use tdess_cache::{CacheConfig, CacheKey, CacheOutcome, CacheStatsSnapshot, FeatureCache};
use tdess_features::{normalize, FeatureSet};
use tdess_geom::TriMesh;
use tdess_index::QueryStats;
use tdess_obs::{Histogram, HistogramSnapshot, Stage, StageTimer, TagValue};

use crate::db::{DbError, Query, SearchHit, ShapeDatabase, ShapeId};
use crate::multistep::{multi_step_search_with_stats, MultiStepPlan};

/// Latency summary (seconds) for one kind of query, derived from a
/// `tdess-obs` log-linear histogram: exact count/min/mean/max plus
/// p50/p90/p99 quantiles (≤6.25% relative error).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct LatencyStats {
    /// Number of queries recorded.
    pub count: u64,
    /// Fastest query, seconds.
    pub min_s: f64,
    /// Mean latency, seconds.
    pub mean_s: f64,
    /// Slowest query, seconds.
    pub max_s: f64,
    /// Median latency, seconds.
    #[serde(default)]
    pub p50_s: f64,
    /// 90th-percentile latency, seconds.
    #[serde(default)]
    pub p90_s: f64,
    /// 99th-percentile latency, seconds.
    #[serde(default)]
    pub p99_s: f64,
}

impl LatencyStats {
    /// Summarizes a histogram snapshot; `None` when it holds no
    /// samples, so "no data" is never confused with a genuine 0s
    /// minimum by JSON consumers.
    pub fn from_snapshot(snap: &HistogramSnapshot) -> Option<LatencyStats> {
        if snap.is_empty() {
            return None;
        }
        Some(LatencyStats {
            count: snap.count(),
            min_s: snap.min_seconds(),
            mean_s: snap.mean_seconds(),
            max_s: snap.max_seconds(),
            p50_s: snap.quantile_seconds(0.5),
            p90_s: snap.quantile_seconds(0.9),
            p99_s: snap.quantile_seconds(0.99),
        })
    }
}

/// A point-in-time view of the server's query metrics.
///
/// The latency summaries are `None` until the first query of that
/// class is served (serialized as `null` / absent on the wire).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ServerMetrics {
    /// Total queries served (one-shot + multi-step, batches counted
    /// per contained query).
    pub queries_served: u64,
    /// Latency of one-shot searches (extraction + index search).
    #[serde(default)]
    pub one_shot: Option<LatencyStats>,
    /// Latency of multi-step searches.
    #[serde(default)]
    pub multi_step: Option<LatencyStats>,
    /// End-to-end request handling latency recorded by a transport
    /// layer (e.g. `tdess-net`: frame decode + dispatch + encode).
    /// Absent for servers only driven in-process.
    #[serde(default)]
    pub transport: Option<LatencyStats>,
    /// Index traversal counters aggregated over every query served.
    pub index_stats: QueryStats,
    /// How many times a writer published a new snapshot.
    pub snapshot_swaps: u64,
}

/// Raw latency histogram snapshots for one metrics read, in the
/// one-shot / multi-step / transport classes. External renderers (the
/// Prometheus exposition in `tdess-net`) consume these directly so
/// quantiles and bucket series come from the same instant.
#[derive(Debug, Clone)]
pub struct LatencySnapshots {
    /// One-shot search latency histogram.
    pub one_shot: HistogramSnapshot,
    /// Multi-step search latency histogram.
    pub multi_step: HistogramSnapshot,
    /// Transport-level request handling latency histogram.
    pub transport: HistogramSnapshot,
}

/// Interior metrics state. The histograms record via relaxed atomics;
/// the mutex guards the traversal counters and swap count.
#[derive(Debug, Default)]
struct MetricsAccum {
    one_shot: Histogram,
    multi_step: Histogram,
    transport: Histogram,
    index_stats: QueryStats,
    snapshot_swaps: u64,
}

/// Which latency accumulator a query records into.
#[derive(Clone, Copy)]
enum QueryClass {
    OneShot,
    MultiStep,
}

/// Shared server state.
struct ServerInner {
    /// The current immutable snapshot. The lock's critical sections
    /// only clone or swap the `Arc` — never compute under it.
    snapshot: RwLock<Arc<ShapeDatabase>>,
    /// Serializes writers (clone → mutate → publish).
    writer: Mutex<()>,
    metrics: Mutex<MetricsAccum>,
    /// Content-addressed extraction cache shared by every handle
    /// clone, or `None` when caching is disabled.
    cache: Option<Arc<FeatureCache>>,
}

/// A thread-safe, cloneable handle to a [`ShapeDatabase`] with
/// snapshot isolation: reads never block writes and writes never
/// block reads.
#[derive(Clone)]
pub struct SearchServer {
    inner: Arc<ServerInner>,
}

/// Per-query batch outcome: hits, traversal counters, latency.
type BatchSlot = (Vec<SearchHit>, QueryStats, Duration);

impl SearchServer {
    /// Wraps a database in a server handle with extraction caching
    /// disabled (every query mesh is extracted from scratch).
    pub fn new(db: ShapeDatabase) -> SearchServer {
        Self::build(db, None)
    }

    /// Wraps a database in a server handle with a content-addressed
    /// extraction cache: repeat query meshes (byte-identical re-sends
    /// *and* pose/scale-transformed copies of the same part) skip the
    /// extraction pipeline, and concurrent identical queries coalesce
    /// into a single extraction.
    pub fn with_cache(db: ShapeDatabase, config: CacheConfig) -> SearchServer {
        Self::build(db, Some(Arc::new(FeatureCache::with_config(config))))
    }

    fn build(db: ShapeDatabase, cache: Option<Arc<FeatureCache>>) -> SearchServer {
        SearchServer {
            inner: Arc::new(ServerInner {
                snapshot: RwLock::new(Arc::new(db)),
                writer: Mutex::new(()),
                metrics: Mutex::new(MetricsAccum::default()),
                cache,
            }),
        }
    }

    /// A point-in-time reading of the extraction-cache counters, or
    /// `None` when the server was built without a cache.
    pub fn cache_stats(&self) -> Option<CacheStatsSnapshot> {
        self.inner.cache.as_ref().map(|c| c.stats_snapshot())
    }

    /// The current database snapshot. The read-lock critical section
    /// only clones the `Arc`; everything the caller does with the
    /// returned snapshot runs lock-free against immutable data and is
    /// unaffected by (and invisible to) concurrent writers.
    pub fn snapshot(&self) -> Arc<ShapeDatabase> {
        // hotpath: allow(hot-alloc) — snapshot semantics require an owned copy
        self.inner.snapshot.read().clone()
    }

    /// Publishes a new snapshot (callers hold the writer mutex).
    fn publish(&self, db: ShapeDatabase) {
        *self.inner.snapshot.write() = Arc::new(db);
        // hotpath: allow(hot-block) — one-line critical section swapping the published snapshot
        self.inner.metrics.lock().snapshot_swaps += 1;
    }

    fn record(&self, class: QueryClass, elapsed: Duration, stats: &QueryStats) {
        // hotpath: allow(hot-block) — one-line critical section appending a stat sample
        let mut guard = self.inner.metrics.lock();
        let m = &mut *guard;
        match class {
            QueryClass::OneShot => m.one_shot.record(elapsed),
            QueryClass::MultiStep => m.multi_step.record(elapsed),
        }
        m.index_stats.merge(stats);
    }

    /// Extracts features for a query mesh, timing the whole extraction
    /// (including any cache interaction) under the `query_extract`
    /// stage.
    ///
    /// With a cache, the mesh is normalized once — both to derive the
    /// content key and to feed the pipeline on a miss — and the
    /// extraction closure runs under the cache's singleflight, so N
    /// concurrent identical queries cost one extraction. Cached
    /// results are bit-identical to the uncached path
    /// ([`FeatureExtractor::extract_from_normalized`] shares the exact
    /// pipeline with [`FeatureExtractor::extract`]).
    ///
    /// [`FeatureExtractor::extract`]: tdess_features::FeatureExtractor::extract
    /// [`FeatureExtractor::extract_from_normalized`]: tdess_features::FeatureExtractor::extract_from_normalized
    fn extract_timed(
        &self,
        snap: &ShapeDatabase,
        mesh: &TriMesh,
    ) -> Result<Arc<FeatureSet>, DbError> {
        let _stage = StageTimer::start(Stage::QueryExtract);
        match &self.inner.cache {
            Some(cache) => {
                let normalized = normalize(mesh).map_err(DbError::Extraction)?;
                let extractor = snap.extractor();
                let key = CacheKey::derive(&normalized, extractor);
                // When this request is collecting a span tree, the
                // innermost span here is `query_extract`; the cache
                // publishes it to coalesced followers as the address
                // of the one extraction that actually ran.
                let link = tdess_obs::current_span_link();
                let (features, outcome) = cache.get_or_extract_with(key, link, || {
                    extractor.extract_from_normalized(mesh, &normalized)
                });
                annotate_cache_outcome(&outcome);
                Ok(features)
            }
            None => snap
                .extractor()
                .extract(mesh)
                .map(Arc::new)
                .map_err(DbError::Extraction),
        }
    }

    /// Runs a one-shot search against the current snapshot. No lock
    /// is held during extraction or search.
    pub fn search_mesh(&self, mesh: &TriMesh, query: &Query) -> Result<Vec<SearchHit>, DbError> {
        let snap = self.snapshot();
        // determinism: allow(time-taint) — t0 feeds the query-class latency histograms only; search hits carry no clock values
        let t0 = Instant::now();
        let features = self.extract_timed(&snap, mesh)?;
        let mut stats = QueryStats::default();
        let hits = snap.search_with_stats(&features, query, &mut stats);
        self.record(QueryClass::OneShot, t0.elapsed(), &stats);
        Ok(hits)
    }

    /// Runs a one-shot search with already-extracted query features
    /// against the current snapshot.
    pub fn search_features(&self, features: &FeatureSet, query: &Query) -> Vec<SearchHit> {
        let snap = self.snapshot();
        let t0 = Instant::now();
        let mut stats = QueryStats::default();
        let hits = snap.search_with_stats(features, query, &mut stats);
        self.record(QueryClass::OneShot, t0.elapsed(), &stats);
        hits
    }

    /// Runs a multi-step search against the current snapshot. No lock
    /// is held during extraction or search.
    pub fn multi_step_mesh(
        &self,
        mesh: &TriMesh,
        plan: &MultiStepPlan,
    ) -> Result<Vec<SearchHit>, DbError> {
        let snap = self.snapshot();
        // determinism: allow(time-taint) — t0 feeds the query-class latency histograms only; search hits carry no clock values
        let t0 = Instant::now();
        let features = self.extract_timed(&snap, mesh)?;
        let mut stats = QueryStats::default();
        let hits = multi_step_search_with_stats(&snap, &features, plan, &mut stats);
        self.record(QueryClass::MultiStep, t0.elapsed(), &stats);
        Ok(hits)
    }

    /// Answers a batch of one-shot queries, fanning extraction and
    /// search across `threads` worker threads. Every query runs
    /// against the *same* snapshot, so results are mutually
    /// consistent. Returns `(name, hits)` in input order; the first
    /// extraction failure (in input order) aborts the batch.
    pub fn search_batch(
        &self,
        queries: Vec<(String, TriMesh)>,
        query: &Query,
        threads: usize,
    ) -> Result<Vec<(String, Vec<SearchHit>)>, DbError> {
        self.run_batch(
            queries,
            threads,
            QueryClass::OneShot,
            |db, features, stats| db.search_with_stats(features, query, stats),
        )
    }

    /// Answers a batch of multi-step queries across `threads` worker
    /// threads, all against one snapshot. Returns `(name, hits)` in
    /// input order; the first extraction failure aborts the batch.
    pub fn multi_step_batch(
        &self,
        queries: Vec<(String, TriMesh)>,
        plan: &MultiStepPlan,
        threads: usize,
    ) -> Result<Vec<(String, Vec<SearchHit>)>, DbError> {
        self.run_batch(
            queries,
            threads,
            QueryClass::MultiStep,
            |db, features, stats| multi_step_search_with_stats(db, features, plan, stats),
        )
    }

    /// Shared batch driver: one snapshot, a work-stealing counter,
    /// per-slot results (the [`bulk_insert`] fan-out pattern).
    fn run_batch(
        &self,
        queries: Vec<(String, TriMesh)>,
        threads: usize,
        class: QueryClass,
        run: impl Fn(&ShapeDatabase, &FeatureSet, &mut QueryStats) -> Vec<SearchHit> + Sync,
    ) -> Result<Vec<(String, Vec<SearchHit>)>, DbError> {
        let snap = self.snapshot();
        let threads = threads.max(1);
        let n = queries.len();

        let run_one = |mesh: &TriMesh| -> Result<BatchSlot, DbError> {
            // determinism: allow(time-taint) — per-query timing feeds the batch latency histograms; result slots carry no clock values
            let t0 = Instant::now();
            let features = self.extract_timed(&snap, mesh)?;
            let mut stats = QueryStats::default();
            let hits = run(&snap, &features, &mut stats);
            Ok((hits, stats, t0.elapsed()))
        };

        let mut outcomes: Vec<Result<BatchSlot, DbError>> = Vec::with_capacity(n);
        if threads == 1 || n <= 1 {
            for (_, mesh) in &queries {
                outcomes.push(run_one(mesh));
            }
        } else {
            let next = AtomicUsize::new(0);
            let slots: Vec<RwLock<Option<Result<BatchSlot, DbError>>>> =
                (0..n).map(|_| RwLock::new(None)).collect();
            crossbeam::scope(|scope| {
                for _ in 0..threads.min(n) {
                    scope.spawn(|_| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed); // audit: ordering(slot-claim ticket; results publish via the RwLock slots and the scope join barrier)
                        if i >= n {
                            break;
                        }
                        *slots[i].write() = Some(run_one(&queries[i].1));
                    });
                }
            })
            .map_err(|_| DbError::WorkerFailure("batch query worker panicked"))?;
            for cell in slots {
                outcomes.push(
                    cell.into_inner()
                        .ok_or(DbError::WorkerFailure("batch query slot left empty"))?,
                );
            }
        }

        // Fail on the first error in input order, recording metrics
        // only for a fully successful batch.
        let mut results = Vec::with_capacity(n);
        for ((name, _), outcome) in queries.into_iter().zip(outcomes) {
            let (hits, stats, elapsed) = outcome?;
            results.push((name, hits, stats, elapsed));
        }
        {
            let mut guard = self.inner.metrics.lock();
            let m = &mut *guard;
            let acc = match class {
                QueryClass::OneShot => &mut m.one_shot,
                QueryClass::MultiStep => &mut m.multi_step,
            };
            for (_, _, stats, elapsed) in &results {
                acc.record(*elapsed);
                m.index_stats.merge(stats);
            }
        }
        Ok(results
            .into_iter()
            .map(|(name, hits, _, _)| (name, hits))
            .collect())
    }

    /// Inserts a shape. Extraction runs before the writer lock is
    /// taken; the writer then clones the current snapshot, applies
    /// the insert, and publishes the new snapshot with a pointer
    /// swap. In-flight searches keep their old snapshot.
    pub fn insert(&self, name: impl Into<String>, mesh: TriMesh) -> Result<ShapeId, DbError> {
        let extractor = *self.snapshot().extractor();
        let features = extractor.extract(&mesh).map_err(DbError::Extraction)?;
        // hotpath: allow(hot-block) — write-lock guards the single-writer database update
        let _writer = self.inner.writer.lock();
        // hotpath: allow(hot-alloc) — the database stores an owned copy of the inserted shape
        let mut db = (*self.snapshot()).clone();
        let id = db.insert_precomputed(name, mesh, features);
        self.publish(db);
        Ok(id)
    }

    /// Removes a shape via the same clone-and-publish write path.
    pub fn remove(&self, id: ShapeId) -> Result<(), DbError> {
        // hotpath: allow(hot-block) — write-lock guards the single-writer database update
        let _writer = self.inner.writer.lock();
        // hotpath: allow(hot-alloc) — removal returns the evicted entry to the caller
        let mut db = (*self.snapshot()).clone();
        db.remove(id)?;
        self.publish(db);
        Ok(())
    }

    /// Number of stored shapes in the current snapshot.
    pub fn len(&self) -> usize {
        self.snapshot().len()
    }

    /// Whether the current snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.snapshot().is_empty()
    }

    /// Name of a shape in the current snapshot, if it exists.
    pub fn name_of(&self, id: ShapeId) -> Option<String> {
        self.snapshot().get(id).map(|s| s.name.clone())
    }

    /// Runs `f` against the current snapshot. No lock is held while
    /// `f` runs; everything `f` observes comes from one consistent
    /// snapshot, however long it takes.
    pub fn with_db<R>(&self, f: impl FnOnce(&ShapeDatabase) -> R) -> R {
        f(&self.snapshot())
    }

    /// Records the end-to-end handling latency of one transport-level
    /// request (decode + dispatch + encode). Called by network front
    /// ends such as `tdess-net`; in-process callers never need it.
    pub fn record_transport(&self, elapsed: Duration) {
        self.inner.metrics.lock().transport.record(elapsed);
    }

    /// A point-in-time copy of the server's query metrics.
    pub fn metrics(&self) -> ServerMetrics {
        // hotpath: allow(hot-block) — short lock to copy counters for the metrics reply
        let m = self.inner.metrics.lock();
        let one_shot = m.one_shot.snapshot();
        let multi_step = m.multi_step.snapshot();
        ServerMetrics {
            queries_served: one_shot.count() + multi_step.count(),
            one_shot: LatencyStats::from_snapshot(&one_shot),
            multi_step: LatencyStats::from_snapshot(&multi_step),
            transport: LatencyStats::from_snapshot(&m.transport.snapshot()),
            index_stats: m.index_stats,
            snapshot_swaps: m.snapshot_swaps,
        }
    }

    /// Raw latency histogram snapshots (one-shot, multi-step,
    /// transport) for renderers that need bucket-level detail, such as
    /// the Prometheus `/metrics` exposition.
    pub fn latency_snapshots(&self) -> LatencySnapshots {
        let m = self.inner.metrics.lock();
        LatencySnapshots {
            one_shot: m.one_shot.snapshot(),
            multi_step: m.multi_step.snapshot(),
            transport: m.transport.snapshot(),
        }
    }
}

/// Inserts many shapes, extracting features on `threads` worker
/// threads. Returns ids in input order. Extraction failures abort with
/// the first error encountered (in input order) and leave the database
/// untouched. Index updates are applied in one batch
/// ([`ShapeDatabase::insert_batch_precomputed`]), so the per-space
/// `dmax` maintenance costs one pruned diameter pass per feature
/// space instead of one full scan per inserted shape.
pub fn bulk_insert(
    db: &mut ShapeDatabase,
    shapes: Vec<(String, TriMesh)>,
    threads: usize,
) -> Result<Vec<ShapeId>, DbError> {
    let threads = threads.max(1);
    let extractor = *db.extractor();
    let n = shapes.len();
    let mut features = Vec::with_capacity(n);

    if threads == 1 || n <= 1 {
        for (_, mesh) in &shapes {
            features.push(extractor.extract(mesh).map_err(DbError::Extraction)?);
        }
    } else {
        let next = AtomicUsize::new(0);
        let results: Vec<RwLock<Option<Result<FeatureSet, DbError>>>> =
            (0..n).map(|_| RwLock::new(None)).collect();
        crossbeam::scope(|scope| {
            for _ in 0..threads.min(n) {
                scope.spawn(|_| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed); // audit: ordering(slot-claim ticket; results publish via the RwLock slots and the scope join barrier)
                    if i >= n {
                        break;
                    }
                    let out = extractor.extract(&shapes[i].1).map_err(DbError::Extraction);
                    *results[i].write() = Some(out);
                });
            }
        })
        .map_err(|_| DbError::WorkerFailure("extraction worker panicked"))?;
        for cell in results {
            let res = cell
                .into_inner()
                .ok_or(DbError::WorkerFailure("extraction result slot left empty"))?;
            features.push(res?);
        }
    }

    let items = shapes
        .into_iter()
        .zip(features)
        .map(|((name, mesh), fs)| (name, mesh, fs))
        .collect();
    Ok(db.insert_batch_precomputed(items))
}

/// Annotates the current span (the live `query_extract` span) with the
/// cache outcome. A coalesced follower additionally records the
/// *leader's* span address — linking, not duplicating, the one
/// extraction that ran into this request's trace. No-ops when the
/// request is not collecting spans.
fn annotate_cache_outcome(outcome: &CacheOutcome) {
    match outcome {
        CacheOutcome::Hit => tdess_obs::annotate("cache", TagValue::Str("hit")),
        CacheOutcome::Miss => tdess_obs::annotate("cache", TagValue::Str("miss")),
        CacheOutcome::Coalesced { leader } => {
            tdess_obs::annotate("cache", TagValue::Str("coalesced"));
            if let Some((trace_id, span)) = leader {
                tdess_obs::annotate("leader_trace", TagValue::Shared(Arc::clone(trace_id)));
                tdess_obs::annotate("leader_span", TagValue::U64(u64::from(*span)));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdess_features::{FeatureExtractor, FeatureKind};
    use tdess_geom::{primitives, Vec3};

    fn meshes(n: usize) -> Vec<(String, TriMesh)> {
        (0..n)
            .map(|i| {
                let s = 1.0 + 0.1 * i as f64;
                (
                    format!("box-{i}"),
                    primitives::box_mesh(Vec3::new(2.0 * s, 1.0 * s, 0.5 * s)),
                )
            })
            .collect()
    }

    fn extractor() -> FeatureExtractor {
        FeatureExtractor {
            voxel_resolution: 16,
            ..Default::default()
        }
    }

    #[test]
    fn bulk_insert_matches_sequential_insert() {
        let shapes = meshes(6);
        let mut seq = ShapeDatabase::new(extractor());
        for (name, mesh) in shapes.clone() {
            seq.insert(name, mesh).unwrap();
        }
        let mut par = ShapeDatabase::new(extractor());
        let ids = bulk_insert(&mut par, shapes, 4).unwrap();
        assert_eq!(ids, (1..=6).collect::<Vec<_>>());
        assert_eq!(par.len(), seq.len());
        for (a, b) in par.shapes().iter().zip(seq.shapes()) {
            assert_eq!(a.name, b.name);
            for kind in FeatureKind::ALL {
                assert_eq!(a.features.get(kind), b.features.get(kind), "{}", a.name);
            }
        }
        for kind in FeatureKind::ALL {
            assert!((par.dmax(kind) - seq.dmax(kind)).abs() < 1e-12);
        }
    }

    #[test]
    fn bulk_insert_propagates_extraction_errors() {
        let mut shapes = meshes(3);
        shapes.insert(
            1,
            (
                "degenerate".into(),
                TriMesh::new(vec![Vec3::ZERO, Vec3::X, Vec3::Y], vec![[0, 1, 2]]),
            ),
        );
        let mut db = ShapeDatabase::new(extractor());
        assert!(bulk_insert(&mut db, shapes, 2).is_err());
        assert!(db.is_empty(), "failed bulk insert must not partially apply");
    }

    #[test]
    fn server_concurrent_searches() {
        let mut db = ShapeDatabase::new(extractor());
        bulk_insert(&mut db, meshes(5), 2).unwrap();
        let server = SearchServer::new(db);
        let query_mesh = primitives::box_mesh(Vec3::new(2.05, 1.0, 0.5));

        crossbeam::scope(|scope| {
            let mut handles = Vec::new();
            for _ in 0..8 {
                let server = server.clone();
                let mesh = query_mesh.clone();
                handles.push(scope.spawn(move |_| {
                    server
                        .search_mesh(&mesh, &Query::top_k(FeatureKind::PrincipalMoments, 3))
                        .unwrap()
                }));
            }
            let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            // Every thread sees the same answer.
            for r in &results[1..] {
                assert_eq!(r.len(), results[0].len());
                for (a, b) in r.iter().zip(&results[0]) {
                    assert_eq!(a.id, b.id);
                }
            }
        })
        .unwrap();
        let m = server.metrics();
        assert_eq!(m.queries_served, 8);
        assert_eq!(m.one_shot.unwrap().count, 8);
    }

    #[test]
    fn server_insert_visible_to_searches() {
        let server = SearchServer::new(ShapeDatabase::new(extractor()));
        assert!(server.is_empty());
        let id = server
            .insert("ring", primitives::torus(1.5, 0.4, 16, 8))
            .unwrap();
        assert_eq!(server.len(), 1);
        assert_eq!(server.name_of(id).as_deref(), Some("ring"));
        server.remove(id).unwrap();
        assert!(server.is_empty());
        assert!(server.remove(id).is_err());
        // Two successful writes published two snapshots; the failed
        // remove published none.
        assert_eq!(server.metrics().snapshot_swaps, 2);
    }

    #[test]
    fn server_multi_step() {
        let mut db = ShapeDatabase::new(extractor());
        bulk_insert(&mut db, meshes(6), 2).unwrap();
        let server = SearchServer::new(db);
        let hits = server
            .multi_step_mesh(
                &primitives::box_mesh(Vec3::new(2.0, 1.0, 0.5)),
                &MultiStepPlan {
                    steps: vec![FeatureKind::PrincipalMoments, FeatureKind::MomentInvariants],
                    candidates: 5,
                    presented: 3,
                },
            )
            .unwrap();
        assert_eq!(hits.len(), 3);
        let m = server.metrics();
        let ms = m.multi_step.unwrap();
        assert_eq!(ms.count, 1);
        assert!(ms.max_s >= ms.min_s);
        assert!(m.one_shot.is_none(), "no one-shot queries ran");
    }

    #[test]
    fn snapshot_unaffected_by_later_writes() {
        let mut db = ShapeDatabase::new(extractor());
        bulk_insert(&mut db, meshes(3), 2).unwrap();
        let server = SearchServer::new(db);
        let before = server.snapshot();
        server
            .insert("late", primitives::uv_sphere(1.0, 12, 6))
            .unwrap();
        assert_eq!(before.len(), 3, "old snapshot must not see the insert");
        assert_eq!(server.len(), 4);
    }

    #[test]
    fn search_batch_matches_individual_searches() {
        let mut db = ShapeDatabase::new(extractor());
        bulk_insert(&mut db, meshes(5), 2).unwrap();
        let server = SearchServer::new(db);
        let queries = meshes(4);
        let query = Query::top_k(FeatureKind::PrincipalMoments, 3);

        let batched = server.search_batch(queries.clone(), &query, 3).unwrap();
        assert_eq!(batched.len(), 4);
        for ((name, mesh), (bname, bhits)) in queries.iter().zip(&batched) {
            assert_eq!(name, bname);
            let solo = server.search_mesh(mesh, &query).unwrap();
            assert_eq!(&solo, bhits, "{name}");
        }
        // 4 batched + 4 solo queries recorded.
        assert_eq!(server.metrics().one_shot.unwrap().count, 8);
    }

    #[test]
    fn multi_step_batch_matches_individual_searches() {
        let mut db = ShapeDatabase::new(extractor());
        bulk_insert(&mut db, meshes(6), 2).unwrap();
        let server = SearchServer::new(db);
        let plan = MultiStepPlan {
            steps: vec![FeatureKind::PrincipalMoments, FeatureKind::GeometricParams],
            candidates: 5,
            presented: 3,
        };
        let queries = meshes(3);
        let batched = server.multi_step_batch(queries.clone(), &plan, 2).unwrap();
        for ((name, mesh), (bname, bhits)) in queries.iter().zip(&batched) {
            assert_eq!(name, bname);
            let solo = server.multi_step_mesh(mesh, &plan).unwrap();
            assert_eq!(&solo, bhits, "{name}");
        }
    }

    #[test]
    fn search_batch_propagates_extraction_errors() {
        let mut db = ShapeDatabase::new(extractor());
        bulk_insert(&mut db, meshes(3), 2).unwrap();
        let server = SearchServer::new(db);
        let mut queries = meshes(3);
        queries.insert(
            1,
            (
                "degenerate".into(),
                TriMesh::new(vec![Vec3::ZERO, Vec3::X, Vec3::Y], vec![[0, 1, 2]]),
            ),
        );
        let before = server.metrics();
        let err = server.search_batch(queries, &Query::top_k(FeatureKind::PrincipalMoments, 2), 2);
        assert!(matches!(err, Err(DbError::Extraction(_))));
        // A failed batch records nothing.
        assert_eq!(server.metrics(), before);
    }

    #[test]
    fn metrics_latency_and_index_stats_accumulate() {
        let mut db = ShapeDatabase::new(extractor());
        bulk_insert(&mut db, meshes(4), 2).unwrap();
        let server = SearchServer::new(db);
        let mesh = primitives::box_mesh(Vec3::new(2.0, 1.0, 0.5));
        for _ in 0..3 {
            server
                .search_mesh(&mesh, &Query::top_k(FeatureKind::PrincipalMoments, 2))
                .unwrap();
        }
        let m = server.metrics();
        assert_eq!(m.queries_served, 3);
        let os = m.one_shot.unwrap();
        assert_eq!(os.count, 3);
        assert!(os.min_s <= os.mean_s);
        assert!(os.mean_s <= os.max_s);
        assert!(os.min_s > 0.0);
        // Quantiles are ordered and stay inside the observed range.
        assert!(os.min_s <= os.p50_s);
        assert!(os.p50_s <= os.p90_s);
        assert!(os.p90_s <= os.p99_s);
        assert!(os.p99_s <= os.max_s);
        assert!(m.index_stats.nodes_visited > 0);
        assert!(m.index_stats.entries_checked > 0);
        assert_eq!(m.snapshot_swaps, 0);
    }

    #[test]
    fn cache_stats_absent_without_cache() {
        let server = SearchServer::new(ShapeDatabase::new(extractor()));
        assert!(server.cache_stats().is_none());
    }

    #[test]
    fn cached_results_bit_identical_to_uncached() {
        let mut db = ShapeDatabase::new(extractor());
        bulk_insert(&mut db, meshes(6), 2).unwrap();
        let plain = SearchServer::new(db.clone());
        let cached = SearchServer::with_cache(db, CacheConfig::default());
        let query = Query::top_k(FeatureKind::MomentInvariants, 4);
        let plan = MultiStepPlan {
            steps: vec![FeatureKind::PrincipalMoments, FeatureKind::MomentInvariants],
            candidates: 5,
            presented: 3,
        };

        for (_, mesh) in meshes(4) {
            let want = plain.search_mesh(&mesh, &query).unwrap();
            // Cold (miss) and warm (hit) answers must both match the
            // uncached server exactly — same ids, same f64 distances.
            let cold = cached.search_mesh(&mesh, &query).unwrap();
            let warm = cached.search_mesh(&mesh, &query).unwrap();
            assert_eq!(want, cold);
            assert_eq!(want, warm);

            let want_ms = plain.multi_step_mesh(&mesh, &plan).unwrap();
            let warm_ms = cached.multi_step_mesh(&mesh, &plan).unwrap();
            assert_eq!(want_ms, warm_ms);
        }

        let s = cached.cache_stats().unwrap();
        assert_eq!(s.misses, 4, "one extraction per distinct query mesh");
        assert_eq!(s.hits, 8, "repeat + multi-step queries all hit: {s:?}");
        assert_eq!(s.entries, 4);
        assert!(s.resident_bytes > 0);
    }

    #[test]
    fn concurrent_identical_queries_extract_once() {
        let mut db = ShapeDatabase::new(extractor());
        bulk_insert(&mut db, meshes(5), 2).unwrap();
        let server = SearchServer::with_cache(db, CacheConfig::default());
        let mesh = primitives::box_mesh(Vec3::new(2.05, 1.0, 0.5));
        let query = Query::top_k(FeatureKind::PrincipalMoments, 3);

        crossbeam::scope(|scope| {
            let mut handles = Vec::new();
            for _ in 0..8 {
                let server = server.clone();
                let mesh = mesh.clone();
                let query = &query;
                handles.push(scope.spawn(move |_| server.search_mesh(&mesh, query).unwrap()));
            }
            let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            for r in &results[1..] {
                assert_eq!(r, &results[0], "coalesced queries agree exactly");
            }
        })
        .unwrap();

        let s = server.cache_stats().unwrap();
        assert_eq!(s.misses, 1, "the herd coalesces into one extraction");
        assert_eq!(
            s.hits + s.coalesced_waits,
            7,
            "every other query either hit or waited on the flight: {s:?}"
        );
        assert_eq!(s.entries, 1);
    }

    /// Regression for the `tab_obs_overhead` blind spot where the
    /// query loop used pre-extracted features and `query_extract` (and
    /// every extraction stage under it) recorded zero samples: a mesh
    /// query must bump *every* stage it passes through. Deltas, not
    /// absolute counts — the stage histograms are process-wide and
    /// other tests in this binary record into them concurrently.
    #[test]
    fn every_stage_hit_by_a_mesh_query_records_samples() {
        use tdess_obs::stage_histogram;
        let mut db = ShapeDatabase::new(extractor());
        bulk_insert(&mut db, meshes(4), 2).unwrap();
        let server = SearchServer::new(db);
        let before: Vec<u64> = Stage::ALL
            .iter()
            .map(|&s| stage_histogram(s).snapshot().count())
            .collect();

        let mesh = primitives::box_mesh(Vec3::new(2.0, 1.0, 0.5));
        server
            .search_mesh(&mesh, &Query::top_k(FeatureKind::PrincipalMoments, 3))
            .unwrap();
        // Two steps so the rerank stage runs too.
        server
            .multi_step_mesh(
                &mesh,
                &MultiStepPlan {
                    steps: vec![FeatureKind::PrincipalMoments, FeatureKind::MomentInvariants],
                    candidates: 4,
                    presented: 2,
                },
            )
            .unwrap();

        for (i, &s) in Stage::ALL.iter().enumerate() {
            let after = stage_histogram(s).snapshot().count();
            assert!(
                after > before[i],
                "stage {} recorded no samples for a mesh query",
                Stage::name(s)
            );
        }
    }

    /// One traced request over a cached server yields a span tree with
    /// the stage hierarchy and cache hit/miss annotations in place.
    #[test]
    fn request_trace_captures_stage_spans_and_cache_outcomes() {
        use tdess_obs::SpanRecord;
        let mut db = ShapeDatabase::new(extractor());
        bulk_insert(&mut db, meshes(3), 2).unwrap();
        let server = SearchServer::with_cache(db, CacheConfig::default());
        let mesh = primitives::uv_sphere(1.0, 16, 8);
        let query = Query::top_k(FeatureKind::PrincipalMoments, 2);

        let guard = tdess_obs::begin_request("core-span-test", "search_mesh");
        server.search_mesh(&mesh, &query).unwrap(); // cold: miss
        server.search_mesh(&mesh, &query).unwrap(); // warm: hit
        let t = tdess_obs::TraceGuard::finish(guard, false).expect("trace collected");

        assert_eq!(t.trace_id, "core-span-test");
        assert_eq!(t.spans[0].name, "search_mesh");
        let extracts: Vec<&SpanRecord> = t
            .spans
            .iter()
            .filter(|s| s.name == "query_extract")
            .collect();
        assert_eq!(extracts.len(), 2, "one query_extract span per search");
        let cache_tag = |s: &SpanRecord| {
            s.tags
                .iter()
                .find(|(k, _)| k == "cache")
                .map(|(_, v)| v.clone())
        };
        assert_eq!(cache_tag(extracts[0]).as_deref(), Some("miss"));
        assert_eq!(cache_tag(extracts[1]).as_deref(), Some("hit"));
        // Both extractions hang directly off the request root...
        assert!(extracts.iter().all(|s| s.parent == 1));
        // ...and the cold one encloses the full extraction pipeline.
        let cold_id = extracts[0].id;
        for name in [
            "normalize",
            "voxelize",
            "skeletonize",
            "graph_build",
            "eigen",
        ] {
            assert!(
                t.spans
                    .iter()
                    .any(|s| s.name == name && s.parent == cold_id),
                "missing nested {name} span under the cold query_extract"
            );
        }
        // The index search runs outside extraction, under the root.
        assert!(t
            .spans
            .iter()
            .any(|s| s.name == "index_search" && s.parent == 1));
        // The warm extraction still normalizes (the content key needs
        // the normalized mesh) but skips the rest of the pipeline.
        let warm_id = extracts[1].id;
        let warm_children: Vec<&str> = t
            .spans
            .iter()
            .filter(|s| s.parent == warm_id)
            .map(|s| s.name.as_str())
            .collect();
        assert_eq!(warm_children, ["normalize"]);
    }
}
