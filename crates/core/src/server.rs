//! The SERVER tier (§2.2): a thread-safe database handle and parallel
//! bulk indexing.
//!
//! The paper's server layer handles "computation-intensive tasks" —
//! chiefly feature extraction — for many interactive clients. This
//! module provides:
//!
//! * [`SearchServer`] — a cloneable handle around the database with
//!   reader-writer locking: any number of concurrent searches, with
//!   exclusive access only while inserting/removing;
//! * [`bulk_insert`] — feature extraction fanned out across worker
//!   threads (extraction dominates insert cost by orders of
//!   magnitude), with the index updates applied sequentially so ids
//!   remain deterministic in input order.

use std::sync::Arc;

use parking_lot::RwLock;
use tdess_geom::TriMesh;

use crate::db::{DbError, Query, SearchHit, ShapeDatabase, ShapeId};
use crate::multistep::{multi_step_search, MultiStepPlan};

/// A thread-safe, cloneable handle to a [`ShapeDatabase`].
#[derive(Clone)]
pub struct SearchServer {
    inner: Arc<RwLock<ShapeDatabase>>,
}

impl SearchServer {
    /// Wraps a database in a server handle.
    pub fn new(db: ShapeDatabase) -> SearchServer {
        SearchServer {
            inner: Arc::new(RwLock::new(db)),
        }
    }

    /// Runs a one-shot search under a shared (read) lock.
    pub fn search_mesh(&self, mesh: &TriMesh, query: &Query) -> Result<Vec<SearchHit>, DbError> {
        // Extract outside the lock — it is the expensive part and needs
        // only the extractor configuration.
        let features = {
            let db = self.inner.read();
            db.extractor().extract(mesh)?
        };
        Ok(self.inner.read().search(&features, query))
    }

    /// Runs a multi-step search under a shared (read) lock.
    pub fn multi_step_mesh(
        &self,
        mesh: &TriMesh,
        plan: &MultiStepPlan,
    ) -> Result<Vec<SearchHit>, DbError> {
        let features = {
            let db = self.inner.read();
            db.extractor().extract(mesh)?
        };
        Ok(multi_step_search(&self.inner.read(), &features, plan))
    }

    /// Inserts a shape under an exclusive (write) lock.
    pub fn insert(&self, name: impl Into<String>, mesh: TriMesh) -> Result<ShapeId, DbError> {
        self.inner.write().insert(name, mesh)
    }

    /// Removes a shape under an exclusive (write) lock.
    pub fn remove(&self, id: ShapeId) -> Result<(), DbError> {
        self.inner.write().remove(id).map(|_| ())
    }

    /// Number of stored shapes.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }

    /// Name of a shape, if it exists.
    pub fn name_of(&self, id: ShapeId) -> Option<String> {
        self.inner.read().get(id).map(|s| s.name.clone())
    }

    /// Runs `f` with shared access to the underlying database.
    pub fn with_db<R>(&self, f: impl FnOnce(&ShapeDatabase) -> R) -> R {
        f(&self.inner.read())
    }
}

/// Inserts many shapes, extracting features on `threads` worker
/// threads. Returns ids in input order. Extraction failures abort with
/// the first error encountered (in input order) and leave the database
/// untouched.
pub fn bulk_insert(
    db: &mut ShapeDatabase,
    shapes: Vec<(String, TriMesh)>,
    threads: usize,
) -> Result<Vec<ShapeId>, DbError> {
    let threads = threads.max(1);
    let extractor = *db.extractor();
    let n = shapes.len();
    let mut features = Vec::with_capacity(n);

    if threads == 1 || n <= 1 {
        for (_, mesh) in &shapes {
            features.push(extractor.extract(mesh).map_err(DbError::Extraction)?);
        }
    } else {
        let next = std::sync::atomic::AtomicUsize::new(0);
        let results: Vec<RwLock<Option<Result<tdess_features::FeatureSet, DbError>>>> =
            (0..n).map(|_| RwLock::new(None)).collect();
        crossbeam::scope(|scope| {
            for _ in 0..threads.min(n) {
                scope.spawn(|_| loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let out = extractor.extract(&shapes[i].1).map_err(DbError::Extraction);
                    *results[i].write() = Some(out);
                });
            }
        })
        .map_err(|_| DbError::WorkerFailure("extraction worker panicked"))?;
        for cell in results {
            let res = cell
                .into_inner()
                .ok_or(DbError::WorkerFailure("extraction result slot left empty"))?;
            features.push(res?);
        }
    }

    // Sequential index updates keep id assignment deterministic.
    let mut ids = Vec::with_capacity(n);
    for ((name, mesh), fs) in shapes.into_iter().zip(features) {
        ids.push(db.insert_precomputed(name, mesh, fs));
    }
    Ok(ids)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdess_features::{FeatureExtractor, FeatureKind};
    use tdess_geom::{primitives, Vec3};

    fn meshes(n: usize) -> Vec<(String, TriMesh)> {
        (0..n)
            .map(|i| {
                let s = 1.0 + 0.1 * i as f64;
                (
                    format!("box-{i}"),
                    primitives::box_mesh(Vec3::new(2.0 * s, 1.0 * s, 0.5 * s)),
                )
            })
            .collect()
    }

    fn extractor() -> FeatureExtractor {
        FeatureExtractor {
            voxel_resolution: 16,
            ..Default::default()
        }
    }

    #[test]
    fn bulk_insert_matches_sequential_insert() {
        let shapes = meshes(6);
        let mut seq = ShapeDatabase::new(extractor());
        for (name, mesh) in shapes.clone() {
            seq.insert(name, mesh).unwrap();
        }
        let mut par = ShapeDatabase::new(extractor());
        let ids = bulk_insert(&mut par, shapes, 4).unwrap();
        assert_eq!(ids, (1..=6).collect::<Vec<_>>());
        assert_eq!(par.len(), seq.len());
        for (a, b) in par.shapes().iter().zip(seq.shapes()) {
            assert_eq!(a.name, b.name);
            for kind in FeatureKind::ALL {
                assert_eq!(a.features.get(kind), b.features.get(kind), "{}", a.name);
            }
        }
        for kind in FeatureKind::ALL {
            assert!((par.dmax(kind) - seq.dmax(kind)).abs() < 1e-12);
        }
    }

    #[test]
    fn bulk_insert_propagates_extraction_errors() {
        let mut shapes = meshes(3);
        shapes.insert(
            1,
            (
                "degenerate".into(),
                TriMesh::new(vec![Vec3::ZERO, Vec3::X, Vec3::Y], vec![[0, 1, 2]]),
            ),
        );
        let mut db = ShapeDatabase::new(extractor());
        assert!(bulk_insert(&mut db, shapes, 2).is_err());
        assert!(db.is_empty(), "failed bulk insert must not partially apply");
    }

    #[test]
    fn server_concurrent_searches() {
        let mut db = ShapeDatabase::new(extractor());
        bulk_insert(&mut db, meshes(5), 2).unwrap();
        let server = SearchServer::new(db);
        let query_mesh = primitives::box_mesh(Vec3::new(2.05, 1.0, 0.5));

        crossbeam::scope(|scope| {
            let mut handles = Vec::new();
            for _ in 0..8 {
                let server = server.clone();
                let mesh = query_mesh.clone();
                handles.push(scope.spawn(move |_| {
                    server
                        .search_mesh(&mesh, &Query::top_k(FeatureKind::PrincipalMoments, 3))
                        .unwrap()
                }));
            }
            let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            // Every thread sees the same answer.
            for r in &results[1..] {
                assert_eq!(r.len(), results[0].len());
                for (a, b) in r.iter().zip(&results[0]) {
                    assert_eq!(a.id, b.id);
                }
            }
        })
        .unwrap();
    }

    #[test]
    fn server_insert_visible_to_searches() {
        let server = SearchServer::new(ShapeDatabase::new(extractor()));
        assert!(server.is_empty());
        let id = server
            .insert("ring", primitives::torus(1.5, 0.4, 16, 8))
            .unwrap();
        assert_eq!(server.len(), 1);
        assert_eq!(server.name_of(id).as_deref(), Some("ring"));
        server.remove(id).unwrap();
        assert!(server.is_empty());
        assert!(server.remove(id).is_err());
    }

    #[test]
    fn server_multi_step() {
        let mut db = ShapeDatabase::new(extractor());
        bulk_insert(&mut db, meshes(6), 2).unwrap();
        let server = SearchServer::new(db);
        let hits = server
            .multi_step_mesh(
                &primitives::box_mesh(Vec3::new(2.0, 1.0, 0.5)),
                &MultiStepPlan {
                    steps: vec![FeatureKind::PrincipalMoments, FeatureKind::MomentInvariants],
                    candidates: 5,
                    presented: 3,
                },
            )
            .unwrap();
        assert_eq!(hits.len(), 3);
    }
}
