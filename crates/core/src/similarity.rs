//! Similarity measures (Eq. 4.3–4.4 of the paper).

use serde::{Deserialize, Serialize};

/// Per-dimension weights for the weighted Euclidean distance. `None`
/// means unit weights (plain Euclidean).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Weights(pub Option<Vec<f64>>);

impl Weights {
    /// Unit weights.
    pub fn unit() -> Weights {
        Weights(None)
    }

    /// Explicit weights; must be non-negative.
    pub fn new(w: Vec<f64>) -> Weights {
        assert!(
            w.iter().all(|&v| v >= 0.0 && v.is_finite()),
            "weights must be finite and non-negative"
        );
        Weights(Some(w))
    }

    /// Whether these are (implicit) unit weights.
    pub fn is_unit(&self) -> bool {
        self.0.is_none()
    }
}

/// Weighted Euclidean distance (Eq. 4.3):
/// `d = sqrt(Σᵢ wᵢ (qᵢ − xᵢ)²)`.
pub fn weighted_distance(q: &[f64], x: &[f64], weights: &Weights) -> f64 {
    assert_eq!(q.len(), x.len(), "feature dimension mismatch");
    match &weights.0 {
        None => q
            .iter()
            .zip(x)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt(),
        Some(w) => {
            assert_eq!(w.len(), q.len(), "weight dimension mismatch");
            q.iter()
                .zip(x)
                .zip(w)
                .map(|((a, b), wi)| wi * (a - b) * (a - b))
                .sum::<f64>()
                .sqrt()
        }
    }
}

/// Similarity from distance (Eq. 4.4): `s = 1 − d/dmax`, clamped to
/// [0, 1]. `dmax` is the diameter of the stored points in the feature
/// space; a non-positive `dmax` (empty or single-point database) maps
/// distance 0 to similarity 1 and anything else to 0.
pub fn similarity(distance: f64, dmax: f64) -> f64 {
    if dmax <= 0.0 {
        return if distance == 0.0 { 1.0 } else { 0.0 };
    }
    (1.0 - distance / dmax).clamp(0.0, 1.0)
}

/// Distance radius corresponding to a similarity threshold:
/// `d = (1 − s)·dmax`.
pub fn threshold_to_radius(threshold: f64, dmax: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&threshold),
        "threshold must be in [0, 1]"
    );
    (1.0 - threshold) * dmax.max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unweighted_distance_is_euclidean() {
        let d = weighted_distance(&[0.0, 0.0], &[3.0, 4.0], &Weights::unit());
        assert_eq!(d, 5.0);
    }

    #[test]
    fn weights_scale_dimensions() {
        let w = Weights::new(vec![4.0, 0.0]);
        let d = weighted_distance(&[0.0, 0.0], &[3.0, 100.0], &w);
        assert_eq!(d, 6.0); // sqrt(4·9 + 0)
    }

    #[test]
    fn similarity_maps_linearly() {
        assert_eq!(similarity(0.0, 10.0), 1.0);
        assert_eq!(similarity(5.0, 10.0), 0.5);
        assert_eq!(similarity(10.0, 10.0), 0.0);
        // Distances beyond dmax clamp at 0.
        assert_eq!(similarity(15.0, 10.0), 0.0);
    }

    #[test]
    fn degenerate_dmax() {
        assert_eq!(similarity(0.0, 0.0), 1.0);
        assert_eq!(similarity(0.1, 0.0), 0.0);
    }

    #[test]
    fn threshold_radius_roundtrip() {
        let dmax = 8.0;
        for s in [0.0, 0.25, 0.85, 1.0] {
            let r = threshold_to_radius(s, dmax);
            assert!((similarity(r, dmax) - s).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_mismatch_panics() {
        let _ = weighted_distance(&[1.0], &[1.0, 2.0], &Weights::unit());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weights_rejected() {
        let _ = Weights::new(vec![-1.0]);
    }
}
