//! The shape database (§2.3) and one-shot query processing (§2.4).
//!
//! Inserting a shape assigns it a database id, runs the full feature
//! extraction pipeline, stores all four feature vectors, and updates
//! one R-tree per feature space — exactly the flow the paper describes
//! ("whenever a shape is inserted in the database, a database ID is
//! generated for it and all the feature vectors are extracted and
//! stored ... then the index is updated").

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use tdess_features::{FeatureExtractor, FeatureKind, FeatureSet, NormalizeError};
use tdess_geom::TriMesh;
use tdess_index::{QueryStats, RTree, RTreeConfig};
use tdess_obs::{Stage, StageTimer};

use crate::similarity::{similarity, threshold_to_radius, weighted_distance, Weights};

/// A database shape identifier.
pub type ShapeId = u64;

/// A stored shape: id, name, original mesh, and its feature vectors.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StoredShape {
    /// Database id.
    pub id: ShapeId,
    /// Human-readable name.
    pub name: String,
    /// The original mesh (kept for result presentation / export).
    pub mesh: TriMesh,
    /// All extracted feature vectors.
    pub features: FeatureSet,
}

/// How a query selects results.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum QueryMode {
    /// The `k` most similar shapes.
    TopK(usize),
    /// All shapes with similarity ≥ the threshold (Eq. 4.4).
    Threshold(f64),
}

/// A one-shot query: one feature vector, optional per-dimension
/// weights, and a selection mode.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Query {
    /// Which feature vector to search with.
    pub kind: FeatureKind,
    /// Per-dimension weights (unit if not set).
    pub weights: Weights,
    /// Selection mode.
    pub mode: QueryMode,
}

impl Query {
    /// Top-k query with unit weights.
    pub fn top_k(kind: FeatureKind, k: usize) -> Query {
        Query {
            kind,
            weights: Weights::unit(),
            mode: QueryMode::TopK(k),
        }
    }

    /// Threshold query with unit weights.
    pub fn threshold(kind: FeatureKind, threshold: f64) -> Query {
        Query {
            kind,
            weights: Weights::unit(),
            mode: QueryMode::Threshold(threshold),
        }
    }
}

/// One search result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchHit {
    /// Database id of the matching shape.
    pub id: ShapeId,
    /// Weighted Euclidean distance to the query (Eq. 4.3).
    pub distance: f64,
    /// Similarity (Eq. 4.4).
    pub similarity: f64,
}

/// Errors from database operations.
#[derive(Debug)]
pub enum DbError {
    /// Feature extraction failed for the inserted/query mesh.
    Extraction(NormalizeError),
    /// The referenced shape id does not exist.
    UnknownShape(ShapeId),
    /// A parallel worker died or failed to report its result.
    WorkerFailure(&'static str),
}

impl std::fmt::Display for DbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DbError::Extraction(e) => write!(f, "feature extraction failed: {e}"),
            DbError::UnknownShape(id) => write!(f, "unknown shape id {id}"),
            DbError::WorkerFailure(what) => write!(f, "parallel worker failure: {what}"),
        }
    }
}

impl std::error::Error for DbError {}

impl From<NormalizeError> for DbError {
    fn from(e: NormalizeError) -> Self {
        DbError::Extraction(e)
    }
}

/// The 3DESS shape database.
///
/// ```
/// use tdess_core::{Query, ShapeDatabase};
/// use tdess_features::{FeatureExtractor, FeatureKind};
/// use tdess_geom::{primitives, Vec3};
///
/// let mut db = ShapeDatabase::new(FeatureExtractor {
///     voxel_resolution: 16,
///     ..Default::default()
/// });
/// db.insert("box", primitives::box_mesh(Vec3::new(2.0, 1.0, 0.5)))?;
/// db.insert("ball", primitives::uv_sphere(1.0, 12, 6))?;
///
/// let query = primitives::box_mesh(Vec3::new(2.1, 1.0, 0.5));
/// let hits = db.search_mesh(&query, &Query::top_k(FeatureKind::PrincipalMoments, 1))?;
/// assert_eq!(db.get(hits[0].id).unwrap().name, "box");
/// # Ok::<(), tdess_core::DbError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShapeDatabase {
    extractor: FeatureExtractor,
    next_id: ShapeId,
    shapes: Vec<StoredShape>,
    #[serde(skip, default)]
    id_index: HashMap<ShapeId, usize>,
    indexes: HashMap<FeatureKind, RTree<ShapeId>>,
    /// Diameter (max pairwise distance) per feature space, maintained
    /// incrementally; normalizes similarity (Eq. 4.4).
    dmax: HashMap<FeatureKind, f64>,
}

impl ShapeDatabase {
    /// Creates an empty database with the given extractor
    /// configuration.
    pub fn new(extractor: FeatureExtractor) -> ShapeDatabase {
        let mut indexes = HashMap::new();
        let mut dmax = HashMap::new();
        for kind in FeatureKind::ALL {
            indexes.insert(
                kind,
                RTree::new(extractor.dim(kind), RTreeConfig::default()),
            );
            dmax.insert(kind, 0.0);
        }
        ShapeDatabase {
            extractor,
            next_id: 1,
            shapes: Vec::new(),
            id_index: HashMap::new(),
            indexes,
            dmax,
        }
    }

    /// Creates a database with default extraction settings.
    pub fn with_defaults() -> ShapeDatabase {
        ShapeDatabase::new(FeatureExtractor::default())
    }

    /// The extractor used by this database (queries must be extracted
    /// with compatible settings).
    pub fn extractor(&self) -> &FeatureExtractor {
        &self.extractor
    }

    /// The id the next inserted shape will receive (persisted so id
    /// assignment continues across save/load).
    pub(crate) fn next_id(&self) -> ShapeId {
        self.next_id
    }

    /// Number of stored shapes.
    pub fn len(&self) -> usize {
        self.shapes.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.shapes.is_empty()
    }

    /// All stored shapes, in insertion order.
    pub fn shapes(&self) -> &[StoredShape] {
        &self.shapes
    }

    /// Looks up a shape by id.
    pub fn get(&self, id: ShapeId) -> Option<&StoredShape> {
        self.id_index.get(&id).map(|&i| &self.shapes[i])
    }

    /// Current similarity-normalization diameter for a feature space.
    pub fn dmax(&self, kind: FeatureKind) -> f64 {
        self.dmax[&kind]
    }

    /// Rebuilds the transient id → slot map (needed after
    /// deserialization).
    pub(crate) fn rebuild_id_index(&mut self) {
        self.id_index = self
            .shapes
            .iter()
            .enumerate()
            .map(|(i, s)| (s.id, i))
            // hotpath: allow(hot-alloc) — id-index rebuild runs on remove, not per query
            .collect();
    }

    /// Inserts a mesh: extracts all feature vectors, stores the shape,
    /// and updates every index. Returns the new id.
    pub fn insert(&mut self, name: impl Into<String>, mesh: TriMesh) -> Result<ShapeId, DbError> {
        let features = self.extractor.extract(&mesh)?;
        Ok(self.insert_precomputed(name, mesh, features))
    }

    /// Inserts a shape whose features were already extracted (with an
    /// extractor configured identically to this database's) — the
    /// fast path used by parallel bulk indexing.
    pub fn insert_precomputed(
        &mut self,
        name: impl Into<String>,
        mesh: TriMesh,
        features: FeatureSet,
    ) -> ShapeId {
        for kind in FeatureKind::ALL {
            let v = features.get(kind);
            // Maintain the diameter incrementally: the new point can
            // only extend dmax via its distance to existing points.
            // lint: allow(unwrap) — dmax holds every FeatureKind from new(); keys are never removed
            let entry = self.dmax.get_mut(&kind).expect("all kinds initialized");
            for s in &self.shapes {
                let d = weighted_distance(v, s.features.get(kind), &Weights::unit());
                if d > *entry {
                    *entry = d;
                }
            }
        }
        self.insert_indexed(name, mesh, features)
    }

    /// Inserts a batch of shapes with precomputed features, updating
    /// each feature space's `dmax` in a single pruned diameter pass
    /// over the union of stored and incoming points instead of one
    /// full scan per inserted shape. The resulting `dmax` is exactly
    /// the value the sequential [`ShapeDatabase::insert_precomputed`]
    /// path produces (the pruning only skips pairs that provably
    /// cannot extend the diameter). Ids are assigned in input order.
    ///
    /// When the batch is large relative to the database (bulk corpus
    /// builds, snapshot loads), every index is rebuilt with the STR
    /// bulk loader instead of inserted into one point at a time —
    /// packed trees build faster and answer queries with no more node
    /// accesses. Search results are identical either way: distances
    /// are computed from the stored vectors, not the tree shape.
    pub fn insert_batch_precomputed(
        &mut self,
        items: Vec<(String, TriMesh, FeatureSet)>,
    ) -> Vec<ShapeId> {
        for kind in FeatureKind::ALL {
            let points: Vec<&[f64]> = self
                .shapes
                .iter()
                .map(|s| s.features.get(kind))
                .chain(items.iter().map(|(_, _, f)| f.get(kind)))
                .collect();
            // lint: allow(unwrap) — dmax holds every FeatureKind from new(); keys are never removed
            let entry = self.dmax.get_mut(&kind).expect("all kinds initialized");
            *entry = diameter_with_bound(&points, *entry);
        }
        // A handful of inserts into a large database does not amortize
        // an O(n log n) rebuild of every tree; keep those incremental.
        if items.len() * 4 < self.shapes.len() {
            return items
                .into_iter()
                .map(|(name, mesh, features)| self.insert_indexed(name, mesh, features))
                .collect();
        }
        let ids: Vec<ShapeId> = items
            .into_iter()
            .map(|(name, mesh, features)| {
                let id = self.next_id;
                self.next_id += 1;
                self.id_index.insert(id, self.shapes.len());
                self.shapes.push(StoredShape {
                    id,
                    name,
                    mesh,
                    features,
                });
                id
            })
            .collect();
        self.rebuild_indexes(self.index_config());
        ids
    }

    /// The fan-out configuration of this database's R-trees. Every
    /// tree shares one config, but the probe walks `FeatureKind::ALL`
    /// rather than hash order so the answer never depends on map
    /// iteration (`values().next()` picks a RandomState-ordered
    /// element).
    pub(crate) fn index_config(&self) -> RTreeConfig {
        FeatureKind::ALL
            .iter()
            .find_map(|kind| self.indexes.get(kind))
            .map(|t| t.config())
            .unwrap_or_default()
    }

    /// Rebuilds every per-kind R-tree from the stored shapes using the
    /// STR bulk loader.
    fn rebuild_indexes(&mut self, config: RTreeConfig) {
        // The seven feature spaces are independent, so their trees
        // build on separate scoped threads (auto-joined); each build is
        // deterministic, so the parallelism cannot change results.
        let extractor = self.extractor;
        let shapes = &self.shapes;
        let trees: Vec<(FeatureKind, RTree<ShapeId>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = FeatureKind::ALL
                .into_iter()
                .map(|kind| {
                    scope.spawn(move || {
                        let entries: Vec<(Vec<f64>, ShapeId)> = shapes
                            .iter()
                            .map(|s| (s.features.get(kind).to_vec(), s.id))
                            .collect();
                        (kind, RTree::bulk_load(extractor.dim(kind), config, entries))
                    })
                })
                .collect();
            handles
                .into_iter()
                // lint: allow(unwrap) — propagates a build-thread panic
                .map(|h| h.join().expect("index build thread panicked"))
                .collect()
        });
        for (kind, tree) in trees {
            self.indexes.insert(kind, tree);
        }
    }

    /// Reassembles a database from the parts a binary snapshot stores
    /// (shapes with features, `dmax` table, id counter, tree config),
    /// validating everything that untrusted bytes could have broken
    /// and STR-bulk-loading the indexes instead of deserializing them.
    pub(crate) fn from_loaded_parts(
        extractor: FeatureExtractor,
        next_id: ShapeId,
        shapes: Vec<StoredShape>,
        dmax: HashMap<FeatureKind, f64>,
        config: RTreeConfig,
    ) -> Result<ShapeDatabase, String> {
        config.validate().map_err(|e| e.to_string())?;
        for kind in FeatureKind::ALL {
            let d = *dmax
                .get(&kind)
                .ok_or_else(|| format!("missing dmax entry for {kind:?}"))?;
            if !d.is_finite() || d < 0.0 {
                return Err(format!(
                    "dmax for {kind:?} is {d}, expected finite and >= 0"
                ));
            }
        }
        // Feature dimensionality and finiteness are the decoder's
        // contract: the snapshot loader pins per-kind dims to the
        // extractor config in `decode_meta` and rejects non-finite
        // values while decoding `FEAT`, so only the cross-cutting
        // invariants are checked here.
        let mut ids: Vec<ShapeId> = shapes.iter().map(|s| s.id).collect();
        ids.sort_unstable();
        if let Some(w) = ids.windows(2).find(|w| w[0] == w[1]) {
            return Err(format!("duplicate shape id {}", w[0]));
        }
        let max_id: ShapeId = ids.last().copied().unwrap_or(0);
        if next_id <= max_id {
            return Err(format!(
                "next_id {next_id} would collide with stored id {max_id}"
            ));
        }
        let mut db = ShapeDatabase {
            extractor,
            next_id,
            shapes,
            id_index: HashMap::new(),
            indexes: HashMap::new(),
            dmax,
        };
        db.rebuild_id_index();
        db.rebuild_indexes(config);
        Ok(db)
    }

    /// Stores a shape and updates every index, leaving `dmax`
    /// maintenance to the caller.
    fn insert_indexed(
        &mut self,
        name: impl Into<String>,
        mesh: TriMesh,
        features: FeatureSet,
    ) -> ShapeId {
        let id = self.next_id;
        self.next_id += 1;

        for kind in FeatureKind::ALL {
            self.indexes
                .get_mut(&kind)
                // lint: allow(unwrap) — indexes holds every FeatureKind from new(); keys are never removed
                .expect("all kinds initialized")
                // hotpath: allow(hot-alloc) — the database stores an owned copy of the inserted vector
                .insert(features.get(kind).to_vec(), id);
        }

        self.id_index.insert(id, self.shapes.len());
        self.shapes.push(StoredShape {
            id,
            name: name.into(),
            mesh,
            features,
        });
        id
    }

    /// Removes a shape from the database and all indexes.
    pub fn remove(&mut self, id: ShapeId) -> Result<StoredShape, DbError> {
        let slot = *self.id_index.get(&id).ok_or(DbError::UnknownShape(id))?;
        let shape = self.shapes.remove(slot);
        for kind in FeatureKind::ALL {
            let v = shape.features.get(kind);
            self.indexes
                .get_mut(&kind)
                // lint: allow(unwrap) — indexes holds every FeatureKind from new(); keys are never removed
                .expect("all kinds initialized")
                .remove(v, |&p| p == id);
        }
        // Note: dmax is left as an upper bound (recomputing the exact
        // diameter on every delete would be O(n²)); similarity stays
        // well-defined, merely slightly conservative.
        self.rebuild_id_index();
        Ok(shape)
    }

    /// Extracts the feature vectors of a query mesh using this
    /// database's extractor (the "query by example" entry point).
    pub fn extract_query(&self, mesh: &TriMesh) -> Result<FeatureSet, DbError> {
        Ok(self.extractor.extract(mesh)?)
    }

    /// One-shot search with an already-extracted query feature set.
    ///
    /// Unit-weight queries run on the R-tree; weighted queries scan the
    /// stored features (a weighted metric changes the geometry the
    /// index was built for).
    pub fn search(&self, features: &FeatureSet, query: &Query) -> Vec<SearchHit> {
        let mut stats = QueryStats::default();
        self.search_with_stats(features, query, &mut stats)
    }

    /// Like [`ShapeDatabase::search`], also accumulating index
    /// traversal statistics.
    pub fn search_with_stats(
        &self,
        features: &FeatureSet,
        query: &Query,
        stats: &mut QueryStats,
    ) -> Vec<SearchHit> {
        let q = features.get(query.kind);
        let dmax = self.dmax[&query.kind];

        if query.weights.is_unit() {
            let index = &self.indexes[&query.kind];
            match query.mode {
                QueryMode::TopK(k) => {
                    let timer = StageTimer::start(Stage::IndexSearch);
                    let raw = index.knn(q, k, stats);
                    // Adjacent stages share one boundary clock read.
                    let _stage = timer.handoff(Stage::SimilarityCombine);
                    raw.into_iter()
                        .map(|(_, &id, d)| SearchHit {
                            id,
                            distance: d,
                            similarity: similarity(d, dmax),
                        })
                        // hotpath: allow(hot-alloc) — hit lists and stats are the returned artifact
                        .collect()
                }
                QueryMode::Threshold(t) => {
                    if t <= 0.0 {
                        // Similarity clamps at 0, so a zero threshold
                        // admits every shape — no distance ball can
                        // express that for a query outside the stored
                        // set; scan instead.
                        return self.scan_all_sorted(q, query, dmax, stats);
                    }
                    // Inflate the ball by a hair so float rounding in
                    // `d ≤ (1−t)·dmax` vs `1 − d/dmax ≥ t` cannot drop
                    // a boundary shape, then post-filter by the
                    // similarity the caller actually sees — the
                    // indexed path returns exactly the set the
                    // weighted scan would.
                    let radius = threshold_to_radius(t, dmax);
                    let radius = radius * (1.0 + 1e-12);
                    let timer = StageTimer::start(Stage::IndexSearch);
                    let raw = index.within_distance(q, radius, stats);
                    let _stage = timer.handoff(Stage::SimilarityCombine);
                    let mut hits: Vec<SearchHit> = raw
                        .into_iter()
                        .map(|(_, &id, d)| SearchHit {
                            id,
                            distance: d,
                            similarity: similarity(d, dmax),
                        })
                        .filter(|h| h.similarity >= t)
                        .collect();
                    hits.sort_by(|a, b| a.distance.total_cmp(&b.distance));
                    hits
                }
            }
        } else {
            // Weighted scan: the linear distance pass plays the role
            // of the index traversal for stage accounting.
            let timer = StageTimer::start(Stage::IndexSearch);
            let mut hits: Vec<SearchHit> = self
                .shapes
                .iter()
                .map(|s| {
                    stats.entries_checked += 1;
                    let d = weighted_distance(q, s.features.get(query.kind), &query.weights);
                    SearchHit {
                        id: s.id,
                        distance: d,
                        similarity: similarity(d, dmax),
                    }
                })
                .collect();
            let _stage = timer.handoff(Stage::SimilarityCombine);
            hits.sort_by(|a, b| a.distance.total_cmp(&b.distance));
            match query.mode {
                QueryMode::TopK(k) => {
                    hits.truncate(k);
                    hits
                }
                QueryMode::Threshold(t) => hits.into_iter().filter(|h| h.similarity >= t).collect(),
            }
        }
    }

    /// Distance-sorted hits for every stored shape (the degenerate
    /// `Threshold(0)` case, where similarity's clamp at 0 admits all).
    fn scan_all_sorted(
        &self,
        q: &[f64],
        query: &Query,
        dmax: f64,
        stats: &mut QueryStats,
    ) -> Vec<SearchHit> {
        let timer = StageTimer::start(Stage::IndexSearch);
        let mut hits: Vec<SearchHit> = self
            .shapes
            .iter()
            .map(|s| {
                stats.entries_checked += 1;
                let d = weighted_distance(q, s.features.get(query.kind), &Weights::unit());
                SearchHit {
                    id: s.id,
                    distance: d,
                    similarity: similarity(d, dmax),
                }
            })
            // hotpath: allow(hot-alloc) — the sorted hit list is the returned artifact
            .collect();
        let _stage = timer.handoff(Stage::SimilarityCombine);
        hits.sort_by(|a, b| a.distance.total_cmp(&b.distance));
        hits
    }

    /// Computes per-dimension standardization weights for a feature
    /// space: `wᵢ = 1/σᵢ²` over all stored shapes, normalized to mean
    /// 1 (so a weighted Euclidean distance becomes a Mahalanobis-like
    /// distance with a diagonal covariance). Useful when a feature's
    /// dimensions have very different spans — the geometric-parameter
    /// vector mixes aspect ratios (≈1–5) with volumes (up to
    /// hundreds), and unweighted distances let the big dimension
    /// dominate. Returns unit weights if fewer than two shapes are
    /// stored or every dimension is constant.
    pub fn standardized_weights(&self, kind: FeatureKind) -> Weights {
        if self.shapes.len() < 2 {
            return Weights::unit();
        }
        let dim = self.extractor.dim(kind);
        let n = self.shapes.len() as f64;
        let mut mean = vec![0.0; dim];
        for s in &self.shapes {
            for (m, v) in mean.iter_mut().zip(s.features.get(kind)) {
                *m += v;
            }
        }
        for m in mean.iter_mut() {
            *m /= n;
        }
        let mut var = vec![0.0; dim];
        for s in &self.shapes {
            for d in 0..dim {
                var[d] += (s.features.get(kind)[d] - mean[d]).powi(2);
            }
        }
        if var.iter().all(|&v| v <= 0.0) {
            return Weights::unit();
        }
        // Scale-aware floor keeps constant dimensions from exploding.
        let mean_var: f64 = var.iter().sum::<f64>() / dim as f64 / n;
        let mut w: Vec<f64> = var
            .iter()
            .map(|v| 1.0 / (v / n + 1e-6 * mean_var.max(1e-300)))
            .collect();
        let mean_w: f64 = w.iter().sum::<f64>() / dim as f64;
        for x in w.iter_mut() {
            *x /= mean_w;
        }
        Weights::new(w)
    }

    /// Convenience: query by example with a mesh.
    pub fn search_mesh(&self, mesh: &TriMesh, query: &Query) -> Result<Vec<SearchHit>, DbError> {
        let features = self.extract_query(mesh)?;
        Ok(self.search(&features, query))
    }
}

/// Exact diameter (max pairwise Euclidean distance) of `points`,
/// seeded with a known lower bound `best` (pairs that cannot beat it
/// are never evaluated).
///
/// Points are sorted by distance `rᵢ` from their centroid; by the
/// triangle inequality a pair `(i, j)` can only extend the diameter
/// if `rᵢ + rⱼ` exceeds the current best, so the double loop breaks
/// out as soon as the sorted radius sums drop below it — in practice
/// only the outer shell of each feature-space point cloud is ever
/// compared. The pruning bound carries a conservative slack far
/// larger than float rounding, so the result is bit-identical to the
/// full pairwise scan.
fn diameter_with_bound(points: &[&[f64]], mut best: f64) -> f64 {
    let Some(first) = points.first() else {
        return best;
    };
    let n = points.len();
    if n < 2 {
        return best;
    }
    let dim = first.len();
    let mut centroid = vec![0.0; dim];
    for p in points {
        for (c, v) in centroid.iter_mut().zip(*p) {
            *c += v;
        }
    }
    for c in centroid.iter_mut() {
        *c /= n as f64;
    }
    let mut by_radius: Vec<(f64, usize)> = points
        .iter()
        .enumerate()
        .map(|(i, p)| (weighted_distance(p, &centroid, &Weights::unit()), i))
        .collect();
    by_radius.sort_by(|a, b| b.0.total_cmp(&a.0));
    for (a, &(ra, ia)) in by_radius.iter().enumerate() {
        if 2.0 * ra <= prune_bound(best) {
            break;
        }
        for &(rb, ib) in &by_radius[a + 1..] {
            if ra + rb <= prune_bound(best) {
                break;
            }
            let d = weighted_distance(points[ia], points[ib], &Weights::unit());
            if d > best {
                best = d;
            }
        }
    }
    best
}

/// Pairs whose centroid-radius sum is at or below this value provably
/// cannot beat `best`, even allowing for floating-point rounding in
/// the radius and distance computations.
fn prune_bound(best: f64) -> f64 {
    best - 1e-9 * best.abs().max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdess_geom::{primitives, Vec3};

    fn small_db() -> (ShapeDatabase, Vec<ShapeId>) {
        let mut db = ShapeDatabase::new(FeatureExtractor {
            voxel_resolution: 24,
            ..Default::default()
        });
        let ids = vec![
            db.insert("box-a", primitives::box_mesh(Vec3::new(2.0, 1.0, 0.5)))
                .unwrap(),
            db.insert("box-b", primitives::box_mesh(Vec3::new(2.2, 1.1, 0.55)))
                .unwrap(),
            db.insert("sphere", primitives::uv_sphere(1.0, 16, 8))
                .unwrap(),
            db.insert("rod", primitives::cylinder(0.3, 5.0, 16))
                .unwrap(),
            db.insert("torus", primitives::torus(1.5, 0.4, 24, 12))
                .unwrap(),
        ];
        (db, ids)
    }

    #[test]
    fn insert_assigns_sequential_ids() {
        let (db, ids) = small_db();
        assert_eq!(db.len(), 5);
        assert_eq!(ids, vec![1, 2, 3, 4, 5]);
        assert_eq!(db.get(3).unwrap().name, "sphere");
        assert!(db.get(99).is_none());
    }

    #[test]
    fn similar_box_ranks_first() {
        let (db, _) = small_db();
        let q = primitives::box_mesh(Vec3::new(2.1, 1.05, 0.52));
        for kind in [FeatureKind::MomentInvariants, FeatureKind::PrincipalMoments] {
            let hits = db.search_mesh(&q, &Query::top_k(kind, 3)).unwrap();
            assert_eq!(hits.len(), 3);
            let top = db.get(hits[0].id).unwrap();
            assert!(
                top.name.starts_with("box"),
                "{kind:?}: top hit {}",
                top.name
            );
            // Similarities are sorted and in [0, 1].
            for w in hits.windows(2) {
                assert!(w[0].similarity >= w[1].similarity - 1e-12);
            }
            assert!(hits.iter().all(|h| (0.0..=1.0).contains(&h.similarity)));
        }
    }

    #[test]
    fn threshold_query_filters_by_similarity() {
        let (db, _) = small_db();
        let q = primitives::box_mesh(Vec3::new(2.0, 1.0, 0.5));
        let hits = db
            .search_mesh(&q, &Query::threshold(FeatureKind::PrincipalMoments, 0.9))
            .unwrap();
        assert!(!hits.is_empty());
        assert!(hits.iter().all(|h| h.similarity >= 0.9), "{hits:?}");
        // Lowering the threshold can only add results.
        let more = db
            .search_mesh(&q, &Query::threshold(FeatureKind::PrincipalMoments, 0.1))
            .unwrap();
        assert!(more.len() >= hits.len());
    }

    #[test]
    fn weighted_search_changes_ranking() {
        let (db, _) = small_db();
        let q = db.get(1).unwrap().features.clone();
        // Unit weights: the identical shape is rank 1 at distance 0.
        let unit = db.search(&q, &Query::top_k(FeatureKind::GeometricParams, 5));
        assert_eq!(unit[0].id, 1);
        assert!(unit[0].distance < 1e-9);
        // Zero out every dimension: all shapes tie at distance 0.
        let zero = db.search(
            &q,
            &Query {
                kind: FeatureKind::GeometricParams,
                weights: Weights::new(vec![0.0; 5]),
                mode: QueryMode::TopK(5),
            },
        );
        assert!(zero.iter().all(|h| h.distance == 0.0));
    }

    #[test]
    fn remove_deletes_everywhere() {
        let (mut db, _) = small_db();
        let gone = db.remove(3).unwrap();
        assert_eq!(gone.name, "sphere");
        assert_eq!(db.len(), 4);
        assert!(db.get(3).is_none());
        // The removed shape no longer appears in results.
        let q = primitives::uv_sphere(1.0, 16, 8);
        let hits = db
            .search_mesh(&q, &Query::top_k(FeatureKind::MomentInvariants, 4))
            .unwrap();
        assert!(hits.iter().all(|h| h.id != 3));
        assert!(matches!(db.remove(3), Err(DbError::UnknownShape(3))));
    }

    #[test]
    fn dmax_grows_monotonically() {
        let mut db = ShapeDatabase::new(FeatureExtractor {
            voxel_resolution: 20,
            ..Default::default()
        });
        assert_eq!(db.dmax(FeatureKind::MomentInvariants), 0.0);
        db.insert("a", primitives::box_mesh(Vec3::ONE)).unwrap();
        assert_eq!(db.dmax(FeatureKind::MomentInvariants), 0.0);
        db.insert("b", primitives::uv_sphere(1.0, 16, 8)).unwrap();
        let d1 = db.dmax(FeatureKind::MomentInvariants);
        assert!(d1 > 0.0);
        db.insert("c", primitives::cylinder(0.2, 8.0, 16)).unwrap();
        assert!(db.dmax(FeatureKind::MomentInvariants) >= d1);
    }

    #[test]
    fn self_query_is_perfect_match() {
        let (db, _) = small_db();
        for kind in FeatureKind::ALL {
            let q = db.get(2).unwrap().features.clone();
            let hits = db.search(&q, &Query::top_k(kind, 1));
            assert_eq!(hits[0].distance, 0.0, "{kind:?}");
            assert_eq!(hits[0].similarity, 1.0, "{kind:?}");
        }
    }

    #[test]
    fn standardized_weights_normalize_dimension_spans() {
        let (db, _) = small_db();
        let w = db.standardized_weights(FeatureKind::GeometricParams);
        assert!(!w.is_unit());
        let wv = w.0.as_ref().unwrap();
        assert_eq!(wv.len(), 5);
        assert!(wv.iter().all(|&x| x > 0.0 && x.is_finite()));
        // Mean weight is 1 by construction.
        let mean: f64 = wv.iter().sum::<f64>() / wv.len() as f64;
        assert!((mean - 1.0).abs() < 1e-9, "mean {mean}");
        // Weights genuinely differ across dimensions (the point of
        // standardization): high-variance dimensions are down-weighted.
        let max = wv.iter().cloned().fold(f64::MIN, f64::max);
        let min = wv.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max / min > 2.0, "weights barely vary: {wv:?}");
        // Weighted self-query still matches perfectly.
        let q = db.get(1).unwrap().features.clone();
        let hits = db.search(
            &q,
            &Query {
                kind: FeatureKind::GeometricParams,
                weights: w,
                mode: QueryMode::TopK(1),
            },
        );
        assert_eq!(hits[0].id, 1);
        assert!(hits[0].distance < 1e-9);
    }

    #[test]
    fn standardized_weights_degenerate_cases() {
        let db = ShapeDatabase::new(FeatureExtractor {
            voxel_resolution: 16,
            ..Default::default()
        });
        assert!(db
            .standardized_weights(FeatureKind::PrincipalMoments)
            .is_unit());
    }

    #[test]
    fn diameter_pruning_matches_full_scan() {
        // Deterministic pseudo-random point clouds; the pruned
        // diameter must equal the full pairwise maximum exactly.
        let mut s = 0x1234_5678_9abc_def0u64;
        let mut rnd = || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64 * 20.0 - 10.0
        };
        for (n, dim) in [(1usize, 3usize), (2, 3), (17, 3), (120, 5), (64, 8)] {
            let pts: Vec<Vec<f64>> = (0..n).map(|_| (0..dim).map(|_| rnd()).collect()).collect();
            let refs: Vec<&[f64]> = pts.iter().map(|p| p.as_slice()).collect();
            let mut full = 0.0f64;
            for i in 0..n {
                for j in (i + 1)..n {
                    let d = weighted_distance(&pts[i], &pts[j], &Weights::unit());
                    if d > full {
                        full = d;
                    }
                }
            }
            assert_eq!(diameter_with_bound(&refs, 0.0), full, "n={n} dim={dim}");
            // Seeding with the answer (or better) leaves it unchanged.
            assert_eq!(diameter_with_bound(&refs, full), full);
            assert_eq!(diameter_with_bound(&refs, full + 1.0), full + 1.0);
        }
    }

    #[test]
    fn batch_insert_matches_sequential_dmax_and_ids() {
        let meshes: Vec<(String, TriMesh)> = vec![
            ("box".into(), primitives::box_mesh(Vec3::new(2.0, 1.0, 0.5))),
            ("sphere".into(), primitives::uv_sphere(1.0, 12, 6)),
            ("rod".into(), primitives::cylinder(0.3, 4.0, 12)),
            ("torus".into(), primitives::torus(1.5, 0.4, 16, 8)),
        ];
        let extractor = FeatureExtractor {
            voxel_resolution: 16,
            ..Default::default()
        };
        let mut seq = ShapeDatabase::new(extractor);
        let mut bat = ShapeDatabase::new(extractor);
        let mut items = Vec::new();
        for (name, mesh) in meshes {
            let features = extractor.extract(&mesh).unwrap();
            seq.insert_precomputed(name.clone(), mesh.clone(), features.clone());
            items.push((name, mesh, features));
        }
        let ids = bat.insert_batch_precomputed(items);
        assert_eq!(ids, vec![1, 2, 3, 4]);
        for kind in FeatureKind::ALL {
            assert_eq!(seq.dmax(kind), bat.dmax(kind), "{kind:?}");
        }
        // The batch-built database answers queries identically.
        let q = seq.get(2).unwrap().features.clone();
        for kind in FeatureKind::ALL {
            let a = seq.search(&q, &Query::top_k(kind, 4));
            let b = bat.search(&q, &Query::top_k(kind, 4));
            assert_eq!(a, b, "{kind:?}");
        }
    }

    #[test]
    fn threshold_paths_agree_on_boundary_shapes() {
        let (db, _) = small_db();
        let q = db.get(1).unwrap().features.clone();
        let kind = FeatureKind::PrincipalMoments;
        // Sweep thresholds including exact stored similarities (the
        // boundary cases where the two paths used to disagree).
        let mut thresholds: Vec<f64> = vec![0.0, 0.1, 0.5, 0.9, 0.999, 1.0];
        for s in db.shapes() {
            let d = weighted_distance(q.get(kind), s.features.get(kind), &Weights::unit());
            thresholds.push(similarity(d, db.dmax(kind)));
        }
        for t in thresholds {
            let indexed = db.search(&q, &Query::threshold(kind, t));
            // Brute-force similarity scan (what the weighted path does
            // with unit weights spelled out explicitly).
            let mut scan: Vec<ShapeId> = db
                .shapes()
                .iter()
                .filter(|s| {
                    let d = weighted_distance(q.get(kind), s.features.get(kind), &Weights::unit());
                    similarity(d, db.dmax(kind)) >= t
                })
                .map(|s| s.id)
                .collect();
            let mut got: Vec<ShapeId> = indexed.iter().map(|h| h.id).collect();
            got.sort_unstable();
            scan.sort_unstable();
            assert_eq!(got, scan, "threshold {t}");
            // Hits come back distance-sorted.
            for w in indexed.windows(2) {
                assert!(w[0].distance <= w[1].distance);
            }
        }
    }

    #[test]
    fn zero_volume_query_errors() {
        let (db, _) = small_db();
        let degenerate = TriMesh::new(vec![Vec3::ZERO, Vec3::X, Vec3::Y], vec![[0, 1, 2]]);
        assert!(matches!(
            db.search_mesh(&degenerate, &Query::top_k(FeatureKind::MomentInvariants, 1)),
            Err(DbError::Extraction(_))
        ));
    }
}
