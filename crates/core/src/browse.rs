//! Query by browsing (§2.1): hierarchical organization of the
//! database per feature vector, which the user drills down through.
//!
//! The paper builds a classification map per feature vector ("based on
//! different feature vector, the classification of shapes in the
//! database might be different") using the SERVER clustering module.

use serde::{Deserialize, Serialize};
use tdess_cluster::{build_hierarchy, HierarchyNode, HierarchyParams};
use tdess_features::FeatureKind;

use crate::db::{ShapeDatabase, ShapeId};

/// A browsing hierarchy over the database in one feature space.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BrowseTree {
    /// Feature space the hierarchy was built in.
    pub kind: FeatureKind,
    /// Root node; `items` hold positions into `ids`.
    root: HierarchyNode,
    /// Shape ids in the order the hierarchy indexes them.
    ids: Vec<ShapeId>,
}

/// A drill-down cursor into a [`BrowseTree`].
pub struct BrowseCursor<'a> {
    tree: &'a BrowseTree,
    node: &'a HierarchyNode,
    path: Vec<usize>,
}

impl BrowseTree {
    /// Builds the browsing hierarchy for `kind` over all shapes in the
    /// database.
    pub fn build(
        db: &ShapeDatabase,
        kind: FeatureKind,
        params: &HierarchyParams,
        seed: u64,
    ) -> BrowseTree {
        assert!(!db.is_empty(), "cannot browse an empty database");
        let ids: Vec<ShapeId> = db.shapes().iter().map(|s| s.id).collect();
        let points: Vec<Vec<f64>> = db
            .shapes()
            .iter()
            .map(|s| s.features.get(kind).to_vec())
            .collect();
        let root = build_hierarchy(&points, params, seed);
        BrowseTree { kind, root, ids }
    }

    /// Opens a cursor at the root.
    pub fn cursor(&self) -> BrowseCursor<'_> {
        BrowseCursor {
            tree: self,
            node: &self.root,
            path: Vec::new(),
        }
    }

    /// Total number of shapes organized by the tree.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

impl<'a> BrowseCursor<'a> {
    /// Shape ids beneath the current node.
    pub fn shape_ids(&self) -> Vec<ShapeId> {
        self.node.items.iter().map(|&i| self.tree.ids[i]).collect()
    }

    /// Number of children at the current node (0 at a leaf).
    pub fn num_children(&self) -> usize {
        self.node.children.len()
    }

    /// Whether the cursor is at a leaf.
    pub fn is_leaf(&self) -> bool {
        self.node.is_leaf()
    }

    /// Descends into child `i`; panics when out of range.
    pub fn descend(&mut self, i: usize) {
        self.node = &self.node.children[i];
        self.path.push(i);
    }

    /// Path of child indices from the root to the current node.
    pub fn path(&self) -> &[usize] {
        &self.path
    }

    /// Representative sizes of each child (for rendering the drill-down
    /// menu).
    pub fn child_sizes(&self) -> Vec<usize> {
        self.node.children.iter().map(|c| c.items.len()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdess_features::FeatureExtractor;
    use tdess_geom::{primitives, Vec3};

    fn db() -> ShapeDatabase {
        let mut db = ShapeDatabase::new(FeatureExtractor {
            voxel_resolution: 16,
            ..Default::default()
        });
        // Two clearly different populations: flat plates and rods.
        for i in 0..6 {
            let s = 1.0 + 0.05 * i as f64;
            db.insert(
                format!("plate-{i}"),
                primitives::box_mesh(Vec3::new(4.0 * s, 3.0 * s, 0.2 * s)),
            )
            .unwrap();
        }
        for i in 0..6 {
            let s = 1.0 + 0.05 * i as f64;
            db.insert(
                format!("rod-{i}"),
                primitives::cylinder(0.2 * s, 6.0 * s, 12),
            )
            .unwrap();
        }
        db
    }

    #[test]
    fn tree_covers_all_shapes() {
        let db = db();
        let tree = BrowseTree::build(
            &db,
            FeatureKind::PrincipalMoments,
            &HierarchyParams {
                branching: 2,
                leaf_size: 4,
            },
            1,
        );
        assert_eq!(tree.len(), 12);
        let cursor = tree.cursor();
        assert_eq!(cursor.shape_ids().len(), 12);
    }

    #[test]
    fn drill_down_separates_populations() {
        let db = db();
        let tree = BrowseTree::build(
            &db,
            FeatureKind::PrincipalMoments,
            &HierarchyParams {
                branching: 2,
                leaf_size: 6,
            },
            3,
        );
        let cursor = tree.cursor();
        assert!(cursor.num_children() >= 2);
        // Each first-level child should be (mostly) one population.
        for c in 0..cursor.num_children() {
            let mut child = tree.cursor();
            child.descend(c);
            let names: Vec<String> = child
                .shape_ids()
                .iter()
                .map(|&id| db.get(id).unwrap().name.clone())
                .collect();
            let plates = names.iter().filter(|n| n.starts_with("plate")).count();
            let rods = names.len() - plates;
            assert!(
                plates == 0 || rods == 0,
                "child {c} mixes populations: {names:?}"
            );
        }
    }

    #[test]
    fn cursor_path_tracks_descent() {
        let db = db();
        let tree = BrowseTree::build(
            &db,
            FeatureKind::GeometricParams,
            &HierarchyParams {
                branching: 2,
                leaf_size: 3,
            },
            5,
        );
        let mut cursor = tree.cursor();
        assert_eq!(cursor.path(), &[] as &[usize]);
        while !cursor.is_leaf() {
            let sizes = cursor.child_sizes();
            assert!(!sizes.is_empty());
            cursor.descend(0);
        }
        assert!(!cursor.path().is_empty());
        assert!(cursor.shape_ids().len() <= 3);
    }
}
