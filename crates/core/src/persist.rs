//! Database persistence.
//!
//! The paper stores geometric models and feature vectors in Oracle 8i
//! with the multidimensional index built on top; this module plays
//! that storage role with JSON files (see DESIGN.md for the
//! substitution rationale). Everything — shapes, meshes, features,
//! and the R-trees themselves — round-trips.

use std::io::{Read, Write};
use std::path::Path;

use crate::db::ShapeDatabase;

/// The file operation a [`PersistError::File`] failure occurred in —
/// distinguishing a failed temp-file create from a failed fsync or
/// rename, so a `tdess serve --db <path>` startup failure (or a
/// save on a read-only filesystem) is diagnosable from the message
/// alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileOp {
    /// Opening an existing file for reading.
    Open,
    /// Creating the sibling temporary file.
    CreateTemp,
    /// Streaming the serialized bytes into the temporary file.
    WriteTemp,
    /// Fsyncing the temporary file.
    Sync,
    /// Renaming the temporary file over the target.
    Rename,
}

impl FileOp {
    /// Human-readable operation name used in error messages.
    fn label(self) -> &'static str {
        match self {
            FileOp::Open => "open",
            FileOp::CreateTemp => "create temp file",
            FileOp::WriteTemp => "write temp file",
            FileOp::Sync => "fsync temp file",
            FileOp::Rename => "rename temp file over target",
        }
    }
}

/// Errors from persistence operations.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure on a caller-supplied reader/writer
    /// (no path is known at this level).
    Io(std::io::Error),
    /// Serialization/deserialization failure.
    Serde(serde_json::Error),
    /// An I/O failure on a named file, tagged with the operation that
    /// failed and the path it failed on.
    File {
        /// Which step of the save/load failed.
        op: FileOp,
        /// The file the operation was applied to.
        path: std::path::PathBuf,
        /// The underlying I/O error.
        source: std::io::Error,
    },
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "I/O error: {e}"),
            PersistError::Serde(e) => write!(f, "serialization error: {e}"),
            PersistError::File { op, path, source } => {
                write!(f, "{} `{}`: {source}", op.label(), path.display())
            }
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            PersistError::Serde(e) => Some(e),
            PersistError::File { source, .. } => Some(source),
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<serde_json::Error> for PersistError {
    fn from(e: serde_json::Error) -> Self {
        PersistError::Serde(e)
    }
}

/// Tags an I/O result with the file operation and path it belongs to.
fn file_ctx<T>(r: std::io::Result<T>, op: FileOp, path: &Path) -> Result<T, PersistError> {
    r.map_err(|source| PersistError::File {
        op,
        path: path.to_path_buf(),
        source,
    })
}

/// Serializes the database to a writer as JSON.
pub fn save<W: Write>(db: &ShapeDatabase, w: W) -> Result<(), PersistError> {
    serde_json::to_writer(w, db)?;
    Ok(())
}

/// Deserializes a database from a reader.
pub fn load<R: Read>(r: R) -> Result<ShapeDatabase, PersistError> {
    let mut db: ShapeDatabase = serde_json::from_reader(r)?;
    db.rebuild_id_index();
    Ok(db)
}

/// Saves the database to a file path, atomically: the JSON is written
/// to a sibling temporary file, fsynced, and renamed over the target,
/// so a crash or error mid-serialize can never destroy an existing
/// database file.
pub fn save_to_path(db: &ShapeDatabase, path: &Path) -> Result<(), PersistError> {
    atomic_write(path, |w| save(db, w))
}

/// Writes a file atomically: `write` streams into a sibling temp
/// file, which is fsynced and renamed over `path` only on success.
/// On any error the temp file is removed and `path` is left exactly
/// as it was.
fn atomic_write(
    path: &Path,
    write: impl FnOnce(&mut dyn Write) -> Result<(), PersistError>,
) -> Result<(), PersistError> {
    let file_name = path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("db.json");
    let tmp = path.with_file_name(format!(".{file_name}.tmp.{}", std::process::id()));
    let result = (|| {
        let file = file_ctx(std::fs::File::create(&tmp), FileOp::CreateTemp, &tmp)?;
        let mut w = std::io::BufWriter::new(file);
        write(&mut w)?;
        file_ctx(w.flush(), FileOp::WriteTemp, &tmp)?;
        file_ctx(w.get_ref().sync_all(), FileOp::Sync, &tmp)?;
        Ok(())
    })();
    match result.and_then(|()| file_ctx(std::fs::rename(&tmp, path), FileOp::Rename, path)) {
        Ok(()) => Ok(()),
        Err(e) => {
            // Best-effort cleanup; the error we report is the write's.
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

/// Loads a database from a file path. A missing or unreadable file
/// reports the path and the failed operation, not just the raw I/O
/// error.
pub fn load_from_path(path: &Path) -> Result<ShapeDatabase, PersistError> {
    let file = file_ctx(std::fs::File::open(path), FileOp::Open, path)?;
    load(std::io::BufReader::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::Query;
    use tdess_features::{FeatureExtractor, FeatureKind};
    use tdess_geom::{primitives, Vec3};

    fn db() -> ShapeDatabase {
        let mut db = ShapeDatabase::new(FeatureExtractor {
            voxel_resolution: 16,
            ..Default::default()
        });
        db.insert("box", primitives::box_mesh(Vec3::new(2.0, 1.0, 0.5)))
            .unwrap();
        db.insert("sphere", primitives::uv_sphere(1.0, 12, 6))
            .unwrap();
        db.insert("rod", primitives::cylinder(0.3, 4.0, 12))
            .unwrap();
        db
    }

    #[test]
    fn roundtrip_preserves_search_behavior() {
        let db0 = db();
        let mut buf = Vec::new();
        save(&db0, &mut buf).unwrap();
        let db1 = load(buf.as_slice()).unwrap();

        assert_eq!(db0.len(), db1.len());
        assert_eq!(db1.get(2).unwrap().name, "sphere");

        let q = db0.get(1).unwrap().features.clone();
        for kind in FeatureKind::ALL {
            let a = db0.search(&q, &Query::top_k(kind, 3));
            let b = db1.search(&q, &Query::top_k(kind, 3));
            assert_eq!(a.len(), b.len(), "{kind:?}");
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.id, y.id, "{kind:?}");
                assert!((x.distance - y.distance).abs() < 1e-12, "{kind:?}");
            }
            assert!((db0.dmax(kind) - db1.dmax(kind)).abs() < 1e-12);
        }
    }

    #[test]
    fn roundtrip_through_file() {
        let dir = std::env::temp_dir().join("tdess_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.json");
        let db0 = db();
        save_to_path(&db0, &path).unwrap();
        let db1 = load_from_path(&path).unwrap();
        assert_eq!(db0.len(), db1.len());
        // Inserting into the reloaded DB continues id assignment.
        let mut db1 = db1;
        let id = db1
            .insert("torus", primitives::torus(1.5, 0.4, 16, 8))
            .unwrap();
        assert_eq!(id, 4);
    }

    #[test]
    fn load_rejects_garbage() {
        assert!(load("not json at all".as_bytes()).is_err());
        assert!(load_from_path(Path::new("/nonexistent/db.json")).is_err());
    }

    #[test]
    fn failed_save_leaves_existing_file_intact() {
        let dir = std::env::temp_dir().join("tdess_persist_atomic_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.json");
        let db0 = db();
        save_to_path(&db0, &path).unwrap();

        // A writer that emits partial bytes and then fails — the
        // shape of a crash mid-serialize.
        let failed = atomic_write(&path, |w| {
            w.write_all(b"{\"partial\": ")?;
            Err(PersistError::Io(std::io::Error::other(
                "simulated mid-write failure",
            )))
        });
        assert!(failed.is_err());

        // The old file still loads in full and no temp file remains.
        let db1 = load_from_path(&path).unwrap();
        assert_eq!(db1.len(), db0.len());
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
    }

    #[test]
    fn save_replaces_existing_file_atomically() {
        let dir = std::env::temp_dir().join("tdess_persist_replace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.json");
        // Seed the path with garbage; a successful save must fully
        // replace it.
        std::fs::write(&path, b"not json at all").unwrap();
        let db0 = db();
        save_to_path(&db0, &path).unwrap();
        let db1 = load_from_path(&path).unwrap();
        assert_eq!(db1.len(), db0.len());
    }

    #[test]
    fn save_to_missing_directory_errors() {
        let db0 = db();
        assert!(save_to_path(&db0, Path::new("/nonexistent/dir/db.json")).is_err());
    }

    #[test]
    fn file_errors_name_path_and_operation() {
        let db0 = db();
        // Failed save: the temp-file create is the failing step, and
        // the message says so, with the path it tried.
        let err = save_to_path(&db0, Path::new("/nonexistent/dir/db.json"))
            .expect_err("save into missing dir");
        assert!(matches!(
            err,
            PersistError::File {
                op: FileOp::CreateTemp,
                ..
            }
        ));
        let msg = err.to_string();
        assert!(msg.contains("create temp file"), "{msg}");
        assert!(msg.contains("/nonexistent/dir/"), "{msg}");

        // Failed load: open is the failing step.
        let err = load_from_path(Path::new("/nonexistent/db.json")).expect_err("load missing file");
        assert!(matches!(
            err,
            PersistError::File {
                op: FileOp::Open,
                ..
            }
        ));
        let msg = err.to_string();
        assert!(msg.starts_with("open"), "{msg}");
        assert!(msg.contains("/nonexistent/db.json"), "{msg}");
    }
}
