//! Database persistence.
//!
//! The paper stores geometric models and feature vectors in Oracle 8i
//! with the multidimensional index built on top; this module plays
//! that storage role with files (see DESIGN.md for the substitution
//! rationale). Two on-disk formats share one load entry point:
//!
//! * **JSON** — the original, human-inspectable format; everything
//!   including the R-trees round-trips. The compat/debug path.
//! * **Binary snapshot** (`TDSS`, [`crate::snapshot`]) — sectioned,
//!   checksummed, fixed-layout; the scale path for 10⁴–10⁵-shape
//!   databases. R-trees are rebuilt with STR bulk loading instead of
//!   being stored.
//!
//! [`load_from_path`] sniffs the first four bytes and dispatches;
//! callers never need to know which format a file is in.

use std::io::{Read, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::db::ShapeDatabase;
use crate::snapshot::{load_binary_bytes, save_binary, SNAPSHOT_MAGIC};

/// The file operation a [`PersistError::File`] failure occurred in —
/// distinguishing a failed temp-file create from a failed fsync or
/// rename, so a `tdess serve --db <path>` startup failure (or a
/// save on a read-only filesystem) is diagnosable from the message
/// alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileOp {
    /// Opening an existing file for reading.
    Open,
    /// Creating the sibling temporary file.
    CreateTemp,
    /// Streaming the serialized bytes into the temporary file.
    WriteTemp,
    /// Fsyncing the temporary file.
    Sync,
    /// Renaming the temporary file over the target.
    Rename,
}

impl FileOp {
    /// Human-readable operation name used in error messages.
    fn label(self) -> &'static str {
        match self {
            FileOp::Open => "open",
            FileOp::CreateTemp => "create temp file",
            FileOp::WriteTemp => "write temp file",
            FileOp::Sync => "fsync temp file",
            FileOp::Rename => "rename temp file over target",
        }
    }
}

/// Errors from persistence operations.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure on a caller-supplied reader/writer
    /// (no path is known at this level).
    Io(std::io::Error),
    /// Serialization/deserialization failure.
    Serde(serde_json::Error),
    /// An I/O failure on a named file, tagged with the operation that
    /// failed and the path it failed on.
    File {
        /// Which step of the save/load failed.
        op: FileOp,
        /// The file the operation was applied to.
        path: std::path::PathBuf,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// A file offered as a binary snapshot does not start with the
    /// `TDSS` magic.
    BadMagic {
        /// The file that was read.
        path: std::path::PathBuf,
        /// The first four bytes actually found.
        found: [u8; 4],
    },
    /// A binary snapshot written by a newer (or unknown) format
    /// version; refusing to guess at its layout.
    UnsupportedVersion {
        /// The file that was read.
        path: std::path::PathBuf,
        /// Version declared in the snapshot header.
        found: u32,
        /// Newest version this build reads.
        supported: u32,
    },
    /// A binary snapshot failed validation: truncation, checksum
    /// mismatch, a count past its cap, or decoded data that violates
    /// database invariants. Names the section so a corrupt file is
    /// diagnosable from the message alone.
    Corrupt {
        /// The file that was read.
        path: std::path::PathBuf,
        /// The snapshot section (`header`, `META`, `SHPS`, `FEAT`,
        /// `database`) the problem was detected in.
        section: &'static str,
        /// What was wrong.
        reason: String,
    },
}

/// Builds a [`PersistError::Corrupt`] (shared with [`crate::snapshot`]).
pub(crate) fn corrupt(
    path: &Path,
    section: &'static str,
    reason: impl Into<String>,
) -> PersistError {
    PersistError::Corrupt {
        path: path.to_path_buf(),
        section,
        reason: reason.into(),
    }
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "I/O error: {e}"),
            PersistError::Serde(e) => write!(f, "serialization error: {e}"),
            PersistError::File { op, path, source } => {
                write!(f, "{} `{}`: {source}", op.label(), path.display())
            }
            PersistError::BadMagic { path, found } => write!(
                f,
                "snapshot header of `{}`: bad magic {found:02x?}, expected `TDSS`",
                path.display()
            ),
            PersistError::UnsupportedVersion {
                path,
                found,
                supported,
            } => write!(
                f,
                "snapshot header of `{}`: format version {found} is newer than \
                 this build supports (max {supported})",
                path.display()
            ),
            PersistError::Corrupt {
                path,
                section,
                reason,
            } => write!(
                f,
                "snapshot section `{section}` of `{}`: {reason}",
                path.display()
            ),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            PersistError::Serde(e) => Some(e),
            PersistError::File { source, .. } => Some(source),
            PersistError::BadMagic { .. }
            | PersistError::UnsupportedVersion { .. }
            | PersistError::Corrupt { .. } => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<serde_json::Error> for PersistError {
    fn from(e: serde_json::Error) -> Self {
        PersistError::Serde(e)
    }
}

/// Tags an I/O result with the file operation and path it belongs to.
fn file_ctx<T>(r: std::io::Result<T>, op: FileOp, path: &Path) -> Result<T, PersistError> {
    r.map_err(|source| PersistError::File {
        op,
        path: path.to_path_buf(),
        source,
    })
}

/// Serializes the database to a writer as JSON.
pub fn save<W: Write>(db: &ShapeDatabase, w: W) -> Result<(), PersistError> {
    serde_json::to_writer(w, db)?;
    Ok(())
}

/// Deserializes a database from a reader.
pub fn load<R: Read>(r: R) -> Result<ShapeDatabase, PersistError> {
    let mut db: ShapeDatabase = serde_json::from_reader(r)?;
    db.rebuild_id_index();
    Ok(db)
}

/// Which on-disk representation to write a database in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotFormat {
    /// Human-inspectable JSON; the compatibility and debugging path.
    Json,
    /// The `TDSS` binary snapshot ([`crate::snapshot`]); the scale
    /// path.
    Binary,
}

/// Saves the database to a file path as JSON, atomically (see
/// [`save_to_path_as`]).
pub fn save_to_path(db: &ShapeDatabase, path: &Path) -> Result<(), PersistError> {
    save_to_path_as(db, path, SnapshotFormat::Json)
}

/// Saves the database to a file path as a binary snapshot, atomically
/// (see [`save_to_path_as`]).
pub fn save_to_path_binary(db: &ShapeDatabase, path: &Path) -> Result<(), PersistError> {
    save_to_path_as(db, path, SnapshotFormat::Binary)
}

/// Saves the database to a file path in the requested format,
/// atomically: bytes are written to a sibling temporary file, fsynced,
/// and renamed over the target, so a crash or error mid-serialize can
/// never destroy an existing database file.
pub fn save_to_path_as(
    db: &ShapeDatabase,
    path: &Path,
    format: SnapshotFormat,
) -> Result<(), PersistError> {
    match format {
        SnapshotFormat::Json => atomic_write(path, |w| save(db, w)),
        SnapshotFormat::Binary => atomic_write(path, |w| save_binary(db, w)),
    }
}

/// Per-process ticket for unique temp-file names: two concurrent
/// saves to the same path must never share a temp file, or they
/// corrupt each other's bytes before the rename.
static TMP_TICKET: AtomicU64 = AtomicU64::new(0);

/// Writes a file atomically: `write` streams into a sibling temp
/// file, which is fsynced and renamed over `path` only on success.
/// On any error the temp file is removed and `path` is left exactly
/// as it was.
///
/// Durability guarantee: after this returns `Ok`, the *content* of
/// `path` is on stable storage (the temp file is fsynced before the
/// rename), and the rename itself is made durable by fsyncing the
/// parent directory afterwards — without that, a crash shortly after
/// a "successful" save could roll the directory entry back to the old
/// file. The directory fsync is best-effort: on platforms or
/// filesystems that refuse to open or sync directory handles, the
/// save still succeeds with the temp-file fsync alone (content
/// durability is unaffected; only the rename's crash-durability
/// window widens to the next journal flush).
///
/// The temp name embeds the process id *and* a per-process atomic
/// ticket, so concurrent saves to one path from multiple threads each
/// write their own temp file; last rename wins, and the target is a
/// complete snapshot from exactly one of the writers.
fn atomic_write(
    path: &Path,
    write: impl FnOnce(&mut dyn Write) -> Result<(), PersistError>,
) -> Result<(), PersistError> {
    let file_name = path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("db.json");
    // audit: allow(atomic-ordering) — a fetch_add ticket for unique names; no memory is published
    let ticket = TMP_TICKET.fetch_add(1, Ordering::Relaxed);
    let tmp = path.with_file_name(format!(".{file_name}.tmp.{}.{ticket}", std::process::id()));
    let result = (|| {
        let file = file_ctx(std::fs::File::create(&tmp), FileOp::CreateTemp, &tmp)?;
        let mut w = std::io::BufWriter::new(file);
        write(&mut w)?;
        file_ctx(w.flush(), FileOp::WriteTemp, &tmp)?;
        file_ctx(w.get_ref().sync_all(), FileOp::Sync, &tmp)?;
        Ok(())
    })();
    match result.and_then(|()| file_ctx(std::fs::rename(&tmp, path), FileOp::Rename, path)) {
        Ok(()) => {
            // Make the rename durable: fsync the parent directory.
            // Best-effort — some platforms refuse dir handles.
            let parent = match path.parent() {
                Some(p) if !p.as_os_str().is_empty() => p,
                _ => Path::new("."),
            };
            if let Ok(dir) = std::fs::File::open(parent) {
                let _ = dir.sync_all();
            }
            Ok(())
        }
        Err(e) => {
            // Best-effort cleanup; the error we report is the write's.
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

/// Loads a database from a file path, auto-detecting the format: a
/// `TDSS` prefix selects the binary snapshot decoder, anything else is
/// treated as JSON. A missing or unreadable file reports the path and
/// the failed operation, not just the raw I/O error.
pub fn load_from_path(path: &Path) -> Result<ShapeDatabase, PersistError> {
    // Both decoders want the whole file anyway (JSON parses a full
    // document, the snapshot decoder borrows sections out of the
    // buffer), so one `fs::read` replaces any buffered streaming.
    let bytes = file_ctx(std::fs::read(path), FileOp::Open, path)?;
    if bytes.starts_with(&SNAPSHOT_MAGIC) {
        load_binary_bytes(&bytes, path)
    } else {
        load(&bytes[..])
    }
}

/// Best-effort sniff of an existing file's on-disk format; `None` if
/// the file cannot be read. Lets `tdess index` and `tdess convert`
/// preserve whatever format a database is already in.
pub fn sniff_format(path: &Path) -> Option<SnapshotFormat> {
    let mut head = [0u8; 4];
    let mut f = std::fs::File::open(path).ok()?;
    match f.read_exact(&mut head) {
        Ok(()) if head == SNAPSHOT_MAGIC => Some(SnapshotFormat::Binary),
        Ok(()) => Some(SnapshotFormat::Json),
        Err(_) => Some(SnapshotFormat::Json),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::Query;
    use tdess_features::{FeatureExtractor, FeatureKind};
    use tdess_geom::{primitives, Vec3};

    fn db() -> ShapeDatabase {
        let mut db = ShapeDatabase::new(FeatureExtractor {
            voxel_resolution: 16,
            ..Default::default()
        });
        db.insert("box", primitives::box_mesh(Vec3::new(2.0, 1.0, 0.5)))
            .unwrap();
        db.insert("sphere", primitives::uv_sphere(1.0, 12, 6))
            .unwrap();
        db.insert("rod", primitives::cylinder(0.3, 4.0, 12))
            .unwrap();
        db
    }

    #[test]
    fn roundtrip_preserves_search_behavior() {
        let db0 = db();
        let mut buf = Vec::new();
        save(&db0, &mut buf).unwrap();
        let db1 = load(buf.as_slice()).unwrap();

        assert_eq!(db0.len(), db1.len());
        assert_eq!(db1.get(2).unwrap().name, "sphere");

        let q = db0.get(1).unwrap().features.clone();
        for kind in FeatureKind::ALL {
            let a = db0.search(&q, &Query::top_k(kind, 3));
            let b = db1.search(&q, &Query::top_k(kind, 3));
            assert_eq!(a.len(), b.len(), "{kind:?}");
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.id, y.id, "{kind:?}");
                assert!((x.distance - y.distance).abs() < 1e-12, "{kind:?}");
            }
            assert!((db0.dmax(kind) - db1.dmax(kind)).abs() < 1e-12);
        }
    }

    #[test]
    fn roundtrip_through_file() {
        let dir = std::env::temp_dir().join("tdess_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.json");
        let db0 = db();
        save_to_path(&db0, &path).unwrap();
        let db1 = load_from_path(&path).unwrap();
        assert_eq!(db0.len(), db1.len());
        // Inserting into the reloaded DB continues id assignment.
        let mut db1 = db1;
        let id = db1
            .insert("torus", primitives::torus(1.5, 0.4, 16, 8))
            .unwrap();
        assert_eq!(id, 4);
    }

    #[test]
    fn load_rejects_garbage() {
        assert!(load("not json at all".as_bytes()).is_err());
        assert!(load_from_path(Path::new("/nonexistent/db.json")).is_err());
    }

    #[test]
    fn binary_roundtrip_is_bit_identical() {
        let db0 = db();
        let mut buf = Vec::new();
        save_binary(&db0, &mut buf).unwrap();
        assert_eq!(&buf[..4], b"TDSS");
        let db1 = load_binary_bytes(&buf, Path::new("<test>")).unwrap();

        assert_eq!(db0.len(), db1.len());
        assert_eq!(db1.get(2).unwrap().name, "sphere");
        let q = db0.get(1).unwrap().features.clone();
        for kind in FeatureKind::ALL {
            assert_eq!(
                db0.dmax(kind).to_bits(),
                db1.dmax(kind).to_bits(),
                "{kind:?} dmax"
            );
            let a = db0.search(&q, &Query::top_k(kind, 3));
            let b = db1.search(&q, &Query::top_k(kind, 3));
            assert_eq!(a.len(), b.len(), "{kind:?}");
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.id, y.id, "{kind:?}");
                assert_eq!(x.distance.to_bits(), y.distance.to_bits(), "{kind:?}");
                assert_eq!(x.similarity.to_bits(), y.similarity.to_bits(), "{kind:?}");
            }
        }
        // Id assignment continues after a binary reload too.
        let mut db1 = db1;
        let id = db1
            .insert("torus", primitives::torus(1.5, 0.4, 16, 8))
            .unwrap();
        assert_eq!(id, 4);
    }

    #[test]
    fn load_from_path_sniffs_both_formats() {
        let dir = std::env::temp_dir().join("tdess_persist_sniff_test");
        std::fs::create_dir_all(&dir).unwrap();
        let db0 = db();

        let json_path = dir.join("db.json");
        save_to_path_as(&db0, &json_path, SnapshotFormat::Json).unwrap();
        assert_eq!(sniff_format(&json_path), Some(SnapshotFormat::Json));
        let from_json = load_from_path(&json_path).unwrap();

        let bin_path = dir.join("db.tdss");
        save_to_path_as(&db0, &bin_path, SnapshotFormat::Binary).unwrap();
        assert_eq!(sniff_format(&bin_path), Some(SnapshotFormat::Binary));
        let from_bin = load_from_path(&bin_path).unwrap();

        assert_eq!(from_json.len(), from_bin.len());
        let q = db0.get(3).unwrap().features.clone();
        for kind in FeatureKind::ALL {
            let a = from_json.search(&q, &Query::top_k(kind, 3));
            let b = from_bin.search(&q, &Query::top_k(kind, 3));
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.id, y.id);
                assert_eq!(x.distance.to_bits(), y.distance.to_bits());
            }
        }
    }

    #[test]
    fn concurrent_saves_to_one_path_never_corrupt() {
        // Regression: the temp-file name used to be pid-only, so two
        // threads saving the same path shared one temp file and could
        // interleave or rename each other's partial bytes. The name
        // now embeds a per-call ticket; the target must always be a
        // complete snapshot written by exactly one of the savers.
        let dir = std::env::temp_dir().join("tdess_persist_race_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.json");

        let small = db();
        let mut big = db();
        big.insert("torus", primitives::torus(1.5, 0.4, 16, 8))
            .unwrap();

        std::thread::scope(|s| {
            let p1 = path.clone();
            let p2 = path.clone();
            let (small, big) = (&small, &big);
            let a = s.spawn(move || {
                for _ in 0..6 {
                    save_to_path(small, &p1).unwrap();
                }
            });
            let b = s.spawn(move || {
                for _ in 0..6 {
                    save_to_path_binary(big, &p2).unwrap();
                }
            });
            a.join().unwrap();
            b.join().unwrap();
        });

        let loaded = load_from_path(&path).unwrap();
        assert!(
            loaded.len() == small.len() || loaded.len() == big.len(),
            "loaded {} shapes, expected {} or {}",
            loaded.len(),
            small.len(),
            big.len()
        );
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
    }

    #[test]
    fn failed_save_leaves_existing_file_intact() {
        let dir = std::env::temp_dir().join("tdess_persist_atomic_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.json");
        let db0 = db();
        save_to_path(&db0, &path).unwrap();

        // A writer that emits partial bytes and then fails — the
        // shape of a crash mid-serialize.
        let failed = atomic_write(&path, |w| {
            w.write_all(b"{\"partial\": ")?;
            Err(PersistError::Io(std::io::Error::other(
                "simulated mid-write failure",
            )))
        });
        assert!(failed.is_err());

        // The old file still loads in full and no temp file remains.
        let db1 = load_from_path(&path).unwrap();
        assert_eq!(db1.len(), db0.len());
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
    }

    #[test]
    fn save_replaces_existing_file_atomically() {
        let dir = std::env::temp_dir().join("tdess_persist_replace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.json");
        // Seed the path with garbage; a successful save must fully
        // replace it.
        std::fs::write(&path, b"not json at all").unwrap();
        let db0 = db();
        save_to_path(&db0, &path).unwrap();
        let db1 = load_from_path(&path).unwrap();
        assert_eq!(db1.len(), db0.len());
    }

    #[test]
    fn save_to_missing_directory_errors() {
        let db0 = db();
        assert!(save_to_path(&db0, Path::new("/nonexistent/dir/db.json")).is_err());
    }

    #[test]
    fn file_errors_name_path_and_operation() {
        let db0 = db();
        // Failed save: the temp-file create is the failing step, and
        // the message says so, with the path it tried.
        let err = save_to_path(&db0, Path::new("/nonexistent/dir/db.json"))
            .expect_err("save into missing dir");
        assert!(matches!(
            err,
            PersistError::File {
                op: FileOp::CreateTemp,
                ..
            }
        ));
        let msg = err.to_string();
        assert!(msg.contains("create temp file"), "{msg}");
        assert!(msg.contains("/nonexistent/dir/"), "{msg}");

        // Failed load: open is the failing step.
        let err = load_from_path(Path::new("/nonexistent/db.json")).expect_err("load missing file");
        assert!(matches!(
            err,
            PersistError::File {
                op: FileOp::Open,
                ..
            }
        ));
        let msg = err.to_string();
        assert!(msg.starts_with("open"), "{msg}");
        assert!(msg.contains("/nonexistent/db.json"), "{msg}");
    }
}
