//! Database persistence.
//!
//! The paper stores geometric models and feature vectors in Oracle 8i
//! with the multidimensional index built on top; this module plays
//! that storage role with JSON files (see DESIGN.md for the
//! substitution rationale). Everything — shapes, meshes, features,
//! and the R-trees themselves — round-trips.

use std::io::{Read, Write};
use std::path::Path;

use crate::db::ShapeDatabase;

/// Errors from persistence operations.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Serialization/deserialization failure.
    Serde(serde_json::Error),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "I/O error: {e}"),
            PersistError::Serde(e) => write!(f, "serialization error: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<serde_json::Error> for PersistError {
    fn from(e: serde_json::Error) -> Self {
        PersistError::Serde(e)
    }
}

/// Serializes the database to a writer as JSON.
pub fn save<W: Write>(db: &ShapeDatabase, w: W) -> Result<(), PersistError> {
    serde_json::to_writer(w, db)?;
    Ok(())
}

/// Deserializes a database from a reader.
pub fn load<R: Read>(r: R) -> Result<ShapeDatabase, PersistError> {
    let mut db: ShapeDatabase = serde_json::from_reader(r)?;
    db.rebuild_id_index();
    Ok(db)
}

/// Saves the database to a file path, atomically: the JSON is written
/// to a sibling temporary file, fsynced, and renamed over the target,
/// so a crash or error mid-serialize can never destroy an existing
/// database file.
pub fn save_to_path(db: &ShapeDatabase, path: &Path) -> Result<(), PersistError> {
    atomic_write(path, |w| save(db, w))
}

/// Writes a file atomically: `write` streams into a sibling temp
/// file, which is fsynced and renamed over `path` only on success.
/// On any error the temp file is removed and `path` is left exactly
/// as it was.
fn atomic_write(
    path: &Path,
    write: impl FnOnce(&mut dyn Write) -> Result<(), PersistError>,
) -> Result<(), PersistError> {
    let file_name = path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("db.json");
    let tmp = path.with_file_name(format!(".{file_name}.tmp.{}", std::process::id()));
    let result = (|| {
        let mut w = std::io::BufWriter::new(std::fs::File::create(&tmp)?);
        write(&mut w)?;
        w.flush()?;
        w.get_ref().sync_all()?;
        Ok(())
    })();
    match result.and_then(|()| std::fs::rename(&tmp, path).map_err(PersistError::from)) {
        Ok(()) => Ok(()),
        Err(e) => {
            // Best-effort cleanup; the error we report is the write's.
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

/// Loads a database from a file path.
pub fn load_from_path(path: &Path) -> Result<ShapeDatabase, PersistError> {
    let file = std::io::BufReader::new(std::fs::File::open(path)?);
    load(file)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::Query;
    use tdess_features::{FeatureExtractor, FeatureKind};
    use tdess_geom::{primitives, Vec3};

    fn db() -> ShapeDatabase {
        let mut db = ShapeDatabase::new(FeatureExtractor {
            voxel_resolution: 16,
            ..Default::default()
        });
        db.insert("box", primitives::box_mesh(Vec3::new(2.0, 1.0, 0.5)))
            .unwrap();
        db.insert("sphere", primitives::uv_sphere(1.0, 12, 6))
            .unwrap();
        db.insert("rod", primitives::cylinder(0.3, 4.0, 12))
            .unwrap();
        db
    }

    #[test]
    fn roundtrip_preserves_search_behavior() {
        let db0 = db();
        let mut buf = Vec::new();
        save(&db0, &mut buf).unwrap();
        let db1 = load(buf.as_slice()).unwrap();

        assert_eq!(db0.len(), db1.len());
        assert_eq!(db1.get(2).unwrap().name, "sphere");

        let q = db0.get(1).unwrap().features.clone();
        for kind in FeatureKind::ALL {
            let a = db0.search(&q, &Query::top_k(kind, 3));
            let b = db1.search(&q, &Query::top_k(kind, 3));
            assert_eq!(a.len(), b.len(), "{kind:?}");
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.id, y.id, "{kind:?}");
                assert!((x.distance - y.distance).abs() < 1e-12, "{kind:?}");
            }
            assert!((db0.dmax(kind) - db1.dmax(kind)).abs() < 1e-12);
        }
    }

    #[test]
    fn roundtrip_through_file() {
        let dir = std::env::temp_dir().join("tdess_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.json");
        let db0 = db();
        save_to_path(&db0, &path).unwrap();
        let db1 = load_from_path(&path).unwrap();
        assert_eq!(db0.len(), db1.len());
        // Inserting into the reloaded DB continues id assignment.
        let mut db1 = db1;
        let id = db1
            .insert("torus", primitives::torus(1.5, 0.4, 16, 8))
            .unwrap();
        assert_eq!(id, 4);
    }

    #[test]
    fn load_rejects_garbage() {
        assert!(load("not json at all".as_bytes()).is_err());
        assert!(load_from_path(Path::new("/nonexistent/db.json")).is_err());
    }

    #[test]
    fn failed_save_leaves_existing_file_intact() {
        let dir = std::env::temp_dir().join("tdess_persist_atomic_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.json");
        let db0 = db();
        save_to_path(&db0, &path).unwrap();

        // A writer that emits partial bytes and then fails — the
        // shape of a crash mid-serialize.
        let failed = atomic_write(&path, |w| {
            w.write_all(b"{\"partial\": ")?;
            Err(PersistError::Io(std::io::Error::other(
                "simulated mid-write failure",
            )))
        });
        assert!(failed.is_err());

        // The old file still loads in full and no temp file remains.
        let db1 = load_from_path(&path).unwrap();
        assert_eq!(db1.len(), db0.len());
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
    }

    #[test]
    fn save_replaces_existing_file_atomically() {
        let dir = std::env::temp_dir().join("tdess_persist_replace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.json");
        // Seed the path with garbage; a successful save must fully
        // replace it.
        std::fs::write(&path, b"not json at all").unwrap();
        let db0 = db();
        save_to_path(&db0, &path).unwrap();
        let db1 = load_from_path(&path).unwrap();
        assert_eq!(db1.len(), db0.len());
    }

    #[test]
    fn save_to_missing_directory_errors() {
        let db0 = db();
        assert!(save_to_path(&db0, Path::new("/nonexistent/dir/db.json")).is_err());
    }
}
