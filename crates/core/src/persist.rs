//! Database persistence.
//!
//! The paper stores geometric models and feature vectors in Oracle 8i
//! with the multidimensional index built on top; this module plays
//! that storage role with JSON files (see DESIGN.md for the
//! substitution rationale). Everything — shapes, meshes, features,
//! and the R-trees themselves — round-trips.

use std::io::{Read, Write};
use std::path::Path;

use crate::db::ShapeDatabase;

/// Errors from persistence operations.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Serialization/deserialization failure.
    Serde(serde_json::Error),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "I/O error: {e}"),
            PersistError::Serde(e) => write!(f, "serialization error: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<serde_json::Error> for PersistError {
    fn from(e: serde_json::Error) -> Self {
        PersistError::Serde(e)
    }
}

/// Serializes the database to a writer as JSON.
pub fn save<W: Write>(db: &ShapeDatabase, w: W) -> Result<(), PersistError> {
    serde_json::to_writer(w, db)?;
    Ok(())
}

/// Deserializes a database from a reader.
pub fn load<R: Read>(r: R) -> Result<ShapeDatabase, PersistError> {
    let mut db: ShapeDatabase = serde_json::from_reader(r)?;
    db.rebuild_id_index();
    Ok(db)
}

/// Saves the database to a file path.
pub fn save_to_path(db: &ShapeDatabase, path: &Path) -> Result<(), PersistError> {
    let file = std::io::BufWriter::new(std::fs::File::create(path)?);
    save(db, file)
}

/// Loads a database from a file path.
pub fn load_from_path(path: &Path) -> Result<ShapeDatabase, PersistError> {
    let file = std::io::BufReader::new(std::fs::File::open(path)?);
    load(file)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::Query;
    use tdess_features::{FeatureExtractor, FeatureKind};
    use tdess_geom::{primitives, Vec3};

    fn db() -> ShapeDatabase {
        let mut db = ShapeDatabase::new(FeatureExtractor {
            voxel_resolution: 16,
            ..Default::default()
        });
        db.insert("box", primitives::box_mesh(Vec3::new(2.0, 1.0, 0.5)))
            .unwrap();
        db.insert("sphere", primitives::uv_sphere(1.0, 12, 6))
            .unwrap();
        db.insert("rod", primitives::cylinder(0.3, 4.0, 12))
            .unwrap();
        db
    }

    #[test]
    fn roundtrip_preserves_search_behavior() {
        let db0 = db();
        let mut buf = Vec::new();
        save(&db0, &mut buf).unwrap();
        let db1 = load(buf.as_slice()).unwrap();

        assert_eq!(db0.len(), db1.len());
        assert_eq!(db1.get(2).unwrap().name, "sphere");

        let q = db0.get(1).unwrap().features.clone();
        for kind in FeatureKind::ALL {
            let a = db0.search(&q, &Query::top_k(kind, 3));
            let b = db1.search(&q, &Query::top_k(kind, 3));
            assert_eq!(a.len(), b.len(), "{kind:?}");
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.id, y.id, "{kind:?}");
                assert!((x.distance - y.distance).abs() < 1e-12, "{kind:?}");
            }
            assert!((db0.dmax(kind) - db1.dmax(kind)).abs() < 1e-12);
        }
    }

    #[test]
    fn roundtrip_through_file() {
        let dir = std::env::temp_dir().join("tdess_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.json");
        let db0 = db();
        save_to_path(&db0, &path).unwrap();
        let db1 = load_from_path(&path).unwrap();
        assert_eq!(db0.len(), db1.len());
        // Inserting into the reloaded DB continues id assignment.
        let mut db1 = db1;
        let id = db1
            .insert("torus", primitives::torus(1.5, 0.4, 16, 8))
            .unwrap();
        assert_eq!(id, 4);
    }

    #[test]
    fn load_rejects_garbage() {
        assert!(load("not json at all".as_bytes()).is_err());
        assert!(load_from_path(Path::new("/nonexistent/db.json")).is_err());
    }
}
