//! # tdess-core — the 3DESS shape-search system
//!
//! The primary contribution of the reproduced paper: a content-based
//! 3-D engineering shape search system. This crate ties the substrates
//! together into the three-tier architecture of Fig. 1:
//!
//! * **database** ([`db`]) — shape storage, feature extraction on
//!   insert, one R-tree per feature space, one-shot query processing
//!   (top-k and similarity-threshold, Eq. 4.3–4.4);
//! * **multi-step search** ([`multistep`]) — §4.2's candidate
//!   retrieval + re-ranking strategy;
//! * **relevance feedback** ([`feedback`]) — query reconstruction and
//!   weight reconfiguration;
//! * **browsing** ([`browse`]) — per-feature clustering hierarchies
//!   for drill-down search;
//! * **persistence** ([`persist`]) — storage standing in for the
//!   paper's Oracle 8i layer, with atomic (temp-file + rename + dir
//!   fsync) saves; JSON for compat/debugging plus the [`snapshot`]
//!   binary format (`TDSS`: versioned, sectioned, checksummed) for
//!   10⁴–10⁵-shape databases, with format auto-detection on load;
//! * **server tier** ([`server`]) — snapshot-isolated concurrent
//!   search handle (reads never block writes and vice versa), batched
//!   concurrent queries, query metrics, and parallel bulk indexing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod browse;
pub mod db;
pub mod feedback;
pub mod multistep;
pub mod persist;
pub mod server;
pub mod similarity;
pub mod snapshot;

pub use browse::{BrowseCursor, BrowseTree};
pub use db::{DbError, Query, QueryMode, SearchHit, ShapeDatabase, ShapeId, StoredShape};
pub use feedback::{reconfigure_weights, reconstruct_query, Feedback, RocchioParams};
pub use multistep::{multi_step_search, multi_step_search_with_stats, MultiStepPlan};
pub use persist::{
    load, load_from_path, save, save_to_path, save_to_path_as, save_to_path_binary, sniff_format,
    FileOp, PersistError, SnapshotFormat,
};
pub use server::{bulk_insert, LatencySnapshots, LatencyStats, SearchServer, ServerMetrics};
pub use similarity::{similarity, threshold_to_radius, weighted_distance, Weights};
pub use snapshot::{
    checksum64, load_binary, load_binary_bytes, save_binary, SNAPSHOT_MAGIC, SNAPSHOT_VERSION,
};
pub use tdess_cache::{CacheConfig, CacheStatsSnapshot, FeatureCache};
