//! Relevance feedback (§2.2 of the paper).
//!
//! Two mechanisms, exactly as the paper lists them:
//!
//! * **query reconstruction** — the query vector moves toward the
//!   marked-relevant shapes and away from the irrelevant ones
//!   (Rocchio's rule);
//! * **weight reconfiguration** — per-dimension weights are updated
//!   from the spread of the relevant set: dimensions on which relevant
//!   shapes agree get more weight.
//!
//! The paper keeps relevance feedback switched off during its
//! experiments; we do the same, but the machinery is fully functional
//! and covered by tests.

use serde::{Deserialize, Serialize};
use tdess_features::FeatureKind;

use crate::db::{ShapeDatabase, ShapeId};
use crate::similarity::Weights;

/// Rocchio coefficients for query reconstruction.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RocchioParams {
    /// Weight of the original query.
    pub alpha: f64,
    /// Weight of the relevant centroid.
    pub beta: f64,
    /// Weight of the irrelevant centroid.
    pub gamma: f64,
}

impl Default for RocchioParams {
    fn default() -> Self {
        RocchioParams {
            alpha: 1.0,
            beta: 0.75,
            gamma: 0.25,
        }
    }
}

/// User feedback on a result set.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Feedback {
    /// Shapes the user marked as relevant.
    pub relevant: Vec<ShapeId>,
    /// Shapes the user marked as irrelevant.
    pub irrelevant: Vec<ShapeId>,
}

/// Reconstructs the query vector for feature space `kind` from
/// feedback (Rocchio): `q' = α·q + β·mean(rel) − γ·mean(irrel)`.
/// Ids missing from the database are ignored; with no valid relevant
/// or irrelevant shapes the corresponding term drops out.
pub fn reconstruct_query(
    db: &ShapeDatabase,
    kind: FeatureKind,
    query: &[f64],
    feedback: &Feedback,
    params: &RocchioParams,
) -> Vec<f64> {
    let dim = query.len();
    let centroid = |ids: &[ShapeId]| -> Option<Vec<f64>> {
        let vectors: Vec<&[f64]> = ids
            .iter()
            .filter_map(|&id| db.get(id).map(|s| s.features.get(kind)))
            .collect();
        if vectors.is_empty() {
            return None;
        }
        let mut c = vec![0.0; dim];
        for v in &vectors {
            for d in 0..dim {
                c[d] += v[d];
            }
        }
        for x in c.iter_mut() {
            *x /= vectors.len() as f64;
        }
        Some(c)
    };

    let rel = centroid(&feedback.relevant);
    let irr = centroid(&feedback.irrelevant);

    let mut out = vec![0.0; dim];
    for d in 0..dim {
        out[d] = params.alpha * query[d];
        if let Some(r) = &rel {
            out[d] += params.beta * r[d];
        }
        if let Some(i) = &irr {
            out[d] -= params.gamma * i[d];
        }
    }
    // Keep the query at the original magnitude scale: normalize by the
    // total positive mass so repeated feedback doesn't inflate it.
    let mass = params.alpha + if rel.is_some() { params.beta } else { 0.0 };
    if mass > 0.0 {
        for x in out.iter_mut() {
            *x /= mass;
        }
    }
    out
}

/// Reconfigures per-dimension weights from the relevant set: the
/// weight of dimension `i` is `1/(σᵢ + ε)`, normalized to mean 1 —
/// dimensions where the relevant shapes agree tightly dominate the
/// distance. Returns unit weights when fewer than two relevant shapes
/// are known.
pub fn reconfigure_weights(db: &ShapeDatabase, kind: FeatureKind, feedback: &Feedback) -> Weights {
    let vectors: Vec<&[f64]> = feedback
        .relevant
        .iter()
        .filter_map(|&id| db.get(id).map(|s| s.features.get(kind)))
        .collect();
    if vectors.len() < 2 {
        return Weights::unit();
    }
    let dim = vectors[0].len();
    let n = vectors.len() as f64;
    let mut mean = vec![0.0; dim];
    for v in &vectors {
        for d in 0..dim {
            mean[d] += v[d];
        }
    }
    for m in mean.iter_mut() {
        *m /= n;
    }
    let mut sigma = vec![0.0; dim];
    for v in &vectors {
        for d in 0..dim {
            sigma[d] += (v[d] - mean[d]).powi(2);
        }
    }
    // Scale-aware epsilon keeps weights finite when σ = 0.
    let scale: f64 = mean.iter().map(|m| m.abs()).sum::<f64>() / dim as f64 + 1e-9;
    let mut w: Vec<f64> = sigma
        .iter()
        .map(|s| 1.0 / ((s / n).sqrt() + 1e-3 * scale))
        .collect();
    let mean_w: f64 = w.iter().sum::<f64>() / dim as f64;
    for x in w.iter_mut() {
        *x /= mean_w;
    }
    Weights::new(w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::Query;
    use tdess_features::FeatureExtractor;
    use tdess_geom::{primitives, Vec3};

    fn db() -> ShapeDatabase {
        let mut db = ShapeDatabase::new(FeatureExtractor {
            voxel_resolution: 20,
            ..Default::default()
        });
        for i in 0..3 {
            let s = 1.0 + 0.05 * i as f64;
            db.insert(
                format!("box-{i}"),
                primitives::box_mesh(Vec3::new(2.0 * s, 1.0 * s, 0.5 * s)),
            )
            .unwrap();
        }
        db.insert("sphere", primitives::uv_sphere(1.0, 16, 8))
            .unwrap();
        db.insert("rod", primitives::cylinder(0.25, 6.0, 16))
            .unwrap();
        db
    }

    #[test]
    fn rocchio_moves_query_toward_relevant() {
        let db = db();
        let kind = FeatureKind::PrincipalMoments;
        // Start from the sphere; mark the boxes relevant.
        let q0 = db.get(4).unwrap().features.get(kind).to_vec();
        let fb = Feedback {
            relevant: vec![1, 2, 3],
            irrelevant: vec![],
        };
        let q1 = reconstruct_query(&db, kind, &q0, &fb, &RocchioParams::default());
        // The reconstructed query must be closer to the box centroid.
        let boxes: Vec<&[f64]> = (1..=3)
            .map(|i| db.get(i).unwrap().features.get(kind))
            .collect();
        let mut centroid = vec![0.0; q0.len()];
        for b in &boxes {
            for d in 0..q0.len() {
                centroid[d] += b[d] / 3.0;
            }
        }
        let dist = |a: &[f64], b: &[f64]| -> f64 {
            a.iter()
                .zip(b)
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f64>()
                .sqrt()
        };
        assert!(dist(&q1, &centroid) < dist(&q0, &centroid));
    }

    #[test]
    fn rocchio_with_no_feedback_is_identity() {
        let db = db();
        let kind = FeatureKind::MomentInvariants;
        let q0 = db.get(1).unwrap().features.get(kind).to_vec();
        let q1 = reconstruct_query(
            &db,
            kind,
            &q0,
            &Feedback::default(),
            &RocchioParams::default(),
        );
        for (a, b) in q0.iter().zip(&q1) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn irrelevant_shapes_subtract_their_centroid() {
        let db = db();
        let kind = FeatureKind::PrincipalMoments;
        let q0 = db.get(1).unwrap().features.get(kind).to_vec();
        let sphere = db.get(4).unwrap().features.get(kind).to_vec();
        let fb = Feedback {
            relevant: vec![],
            irrelevant: vec![4],
        };
        let params = RocchioParams::default();
        let q1 = reconstruct_query(&db, kind, &q0, &fb, &params);
        // Contract: with no relevant set, q' = (α·q − γ·irr)/α.
        for d in 0..q0.len() {
            let want = (params.alpha * q0[d] - params.gamma * sphere[d]) / params.alpha;
            assert!((q1[d] - want).abs() < 1e-12, "dim {d}: {} vs {want}", q1[d]);
        }
    }

    #[test]
    fn weight_reconfiguration_tightens_ranking() {
        let db = db();
        let kind = FeatureKind::GeometricParams;
        let fb = Feedback {
            relevant: vec![1, 2, 3],
            irrelevant: vec![],
        };
        let w = reconfigure_weights(&db, kind, &fb);
        assert!(!w.is_unit());
        let wv = w.0.as_ref().unwrap();
        assert_eq!(wv.len(), 5);
        assert!(wv.iter().all(|&x| x > 0.0 && x.is_finite()));
        // Weighted search with reconfigured weights still ranks a
        // relevant shape first for a relevant query.
        let q = db.get(2).unwrap().features.clone();
        let hits = db.search(
            &q,
            &Query {
                kind,
                weights: w,
                mode: crate::db::QueryMode::TopK(3),
            },
        );
        assert_eq!(hits[0].id, 2);
    }

    #[test]
    fn weights_unit_when_insufficient_feedback() {
        let db = db();
        let fb = Feedback {
            relevant: vec![1],
            irrelevant: vec![],
        };
        assert!(reconfigure_weights(&db, FeatureKind::MomentInvariants, &fb).is_unit());
        assert!(
            reconfigure_weights(&db, FeatureKind::MomentInvariants, &Feedback::default()).is_unit()
        );
    }

    #[test]
    fn unknown_ids_ignored() {
        let db = db();
        let kind = FeatureKind::MomentInvariants;
        let q0 = db.get(1).unwrap().features.get(kind).to_vec();
        let fb = Feedback {
            relevant: vec![999],
            irrelevant: vec![888],
        };
        let q1 = reconstruct_query(&db, kind, &q0, &fb, &RocchioParams::default());
        for (a, b) in q0.iter().zip(&q1) {
            assert!((a - b).abs() < 1e-12);
        }
    }
}
