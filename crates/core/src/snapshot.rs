//! Binary snapshot format for [`ShapeDatabase`] (the `TDSS` format).
//!
//! The JSON persistence in [`crate::persist`] round-trips everything —
//! including the R-trees — through a text value tree, which is fine at
//! 113 shapes and hopeless at 10⁵ (the paper's §2.3 index-efficiency
//! claim is stated over synthetic databases of that size). This module
//! is the scale path: a versioned, sectioned, checksummed binary
//! layout with fixed-stride little-endian feature arrays, so loading
//! is a linear bounds-checked decode instead of a parse, and the
//! R-trees are not stored at all — they are rebuilt in one pass with
//! [`RTree::bulk_load`](tdess_index::RTree::bulk_load) (STR packing),
//! which is faster than deserializing them and yields better-packed
//! trees.
//!
//! # Layout (version 1)
//!
//! ```text
//! offset 0   magic  "TDSS"           (4 bytes)
//! offset 4   format version          (u32 LE)
//! offset 8   section count           (u32 LE, = 3 in v1)
//! then, per section, a header followed by its payload:
//!            tag                     (4 bytes ASCII)
//!            payload length          (u64 LE)
//!            payload checksum        (u64 LE, [`checksum64`])
//!            payload bytes
//! ```
//!
//! Sections appear in a fixed order:
//!
//! * `META` — extractor configuration, id counter, shape count,
//!   R-tree fan-out, and the per-kind dimensions + `dmax` table;
//! * `SHPS` — per shape: id, name, and mesh (vertex/triangle arrays);
//! * `FEAT` — per feature kind, the feature vectors of all shapes as
//!   one contiguous `shape_count × dim` little-endian `f64` array
//!   (vector `i` of a kind lives at byte offset `i * dim * 8` inside
//!   the kind's block — a fixed stride, so a future memory-mapped
//!   reader can address it without parsing).
//!
//! # Versioning and compatibility
//!
//! The version integer is bumped on any layout change; readers reject
//! versions they do not know ([`PersistError::UnsupportedVersion`])
//! rather than guessing. The JSON format remains the compatibility and
//! debugging path: [`crate::persist::load_from_path`] sniffs the first
//! four bytes and dispatches to whichever decoder matches.
//!
//! # Trust model
//!
//! Decode treats the file as untrusted: every section is checksummed,
//! every declared count is capped before an allocation is sized from
//! it (same policy as the OFF loader in `tdess-geom`), and the decoded
//! parts pass through the same validation the JSON path applies
//! (R-tree config via `RTreeConfig::validate`, feature dimensions,
//! finiteness, id uniqueness) before a database is produced.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::path::Path;

use tdess_features::{FeatureExtractor, FeatureKind, FeatureSet};
use tdess_geom::io::{MAX_MESH_FACES, MAX_MESH_VERTICES};
use tdess_geom::{TriMesh, Vec3};
use tdess_index::RTreeConfig;

use crate::db::{ShapeDatabase, ShapeId, StoredShape};
use crate::persist::{corrupt, PersistError};

/// First four bytes of every binary snapshot.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"TDSS";
/// Newest format version this build reads and the one it writes.
pub const SNAPSHOT_VERSION: u32 = 1;

const SECTION_META: [u8; 4] = *b"META";
const SECTION_SHPS: [u8; 4] = *b"SHPS";
const SECTION_FEAT: [u8; 4] = *b"FEAT";

/// Cap on a declared section length. A hostile header cannot demand
/// more than this; real sections are far smaller (the feature block of
/// a 10⁵-shape database is ~100 MB).
pub const MAX_SECTION_BYTES: u64 = 1 << 33;
/// Cap on the declared shape count.
pub const MAX_SNAPSHOT_SHAPES: usize = 1 << 24;
/// Cap on a declared shape-name length in bytes.
pub const MAX_NAME_BYTES: usize = 1 << 16;
/// Cap on a declared per-kind feature dimension.
pub const MAX_FEATURE_DIM: usize = 1 << 16;

/// 64-bit section checksum: four independent multiply–rotate lanes
/// over little-endian 64-bit words, merged and finished with a
/// splitmix64-style avalanche.
///
/// Chosen over table-driven CRC-32 because checksumming is on the
/// snapshot load path and this folds 32 bytes per iteration with
/// three ALU ops per word (xor, multiply by an odd constant, rotate)
/// — several times faster than slice-by-N lookups, in safe Rust.
/// Detection properties: for fixed surrounding data each lane's
/// absorb step `acc = rotl((acc ^ w) * K)` is a bijection on `u64`,
/// so any corruption confined to a single 8-byte word changes the
/// final checksum with certainty; corruption spanning several words
/// is missed with probability ~2⁻⁶⁴. The input length participates in
/// the finalizer, so zero-padded tails of different lengths differ.
pub fn checksum64(data: &[u8]) -> u64 {
    let mut sum = StreamSum::new();
    sum.absorb(data);
    sum.finish()
}

const SUM_KEYS: [u64; 4] = [
    0x9E37_79B9_7F4A_7C15,
    0xC2B2_AE3D_27D4_EB4F,
    0x1656_67B1_9E37_79F9,
    0x27D4_EB2F_1656_67C5,
];

fn absorb_word(acc: u64, w: u64, k: u64) -> u64 {
    (acc ^ w).wrapping_mul(k).rotate_left(29)
}

/// Streaming form of [`checksum64`]: absorb any sequence of slices,
/// finish to exactly the value `checksum64` yields over their
/// concatenation. Lets the snapshot decoder verify a section in the
/// same pass that parses it instead of streaming multi-megabyte
/// payloads through memory twice.
struct StreamSum {
    acc: [u64; 4],
    /// Staging for a partial 32-byte stripe between absorb calls.
    stripe: [u8; 32],
    staged: usize,
    len: u64,
}

impl StreamSum {
    fn new() -> StreamSum {
        StreamSum {
            acc: [
                0x243F_6A88_85A3_08D3,
                0x1319_8A2E_0370_7344,
                0xA409_3822_299F_31D0,
                0x082E_FA98_EC4E_6C89,
            ],
            stripe: [0u8; 32],
            staged: 0,
            len: 0,
        }
    }

    fn absorb_stripe(&mut self, c: &[u8]) {
        debug_assert_eq!(c.len(), 32);
        self.acc[0] = absorb_word(
            self.acc[0],
            u64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]),
            SUM_KEYS[0],
        );
        self.acc[1] = absorb_word(
            self.acc[1],
            u64::from_le_bytes([c[8], c[9], c[10], c[11], c[12], c[13], c[14], c[15]]),
            SUM_KEYS[1],
        );
        self.acc[2] = absorb_word(
            self.acc[2],
            u64::from_le_bytes([c[16], c[17], c[18], c[19], c[20], c[21], c[22], c[23]]),
            SUM_KEYS[2],
        );
        self.acc[3] = absorb_word(
            self.acc[3],
            u64::from_le_bytes([c[24], c[25], c[26], c[27], c[28], c[29], c[30], c[31]]),
            SUM_KEYS[3],
        );
    }

    fn absorb(&mut self, mut data: &[u8]) {
        self.len += data.len() as u64;
        if self.staged > 0 {
            let take = (32 - self.staged).min(data.len());
            self.stripe[self.staged..self.staged + take].copy_from_slice(&data[..take]);
            self.staged += take;
            data = &data[take..];
            if self.staged < 32 {
                return;
            }
            let full = self.stripe;
            self.absorb_stripe(&full);
            self.staged = 0;
        }
        let mut stripes = data.chunks_exact(32);
        for c in &mut stripes {
            self.absorb_stripe(c);
        }
        let rem = stripes.remainder();
        self.stripe[..rem.len()].copy_from_slice(rem);
        self.staged = rem.len();
    }

    fn finish(self) -> u64 {
        let mut acc = self.acc;
        let rem = &self.stripe[..self.staged];
        let mut lane = 0;
        let mut words = rem.chunks_exact(8);
        for c in &mut words {
            let w = u64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]);
            acc[lane] = absorb_word(acc[lane], w, SUM_KEYS[lane]);
            lane += 1;
        }
        let tail = words.remainder();
        if !tail.is_empty() {
            let mut last = [0u8; 8];
            last[..tail.len()].copy_from_slice(tail);
            acc[lane] = absorb_word(acc[lane], u64::from_le_bytes(last), SUM_KEYS[lane]);
        }
        let mut h = acc[0].rotate_left(1)
            ^ acc[1].rotate_left(7)
            ^ acc[2].rotate_left(12)
            ^ acc[3].rotate_left(18);
        h ^= self.len;
        h ^= h >> 30;
        h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h ^= h >> 27;
        h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
        h ^= h >> 31;
        h
    }
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Path used in errors from the writer/reader-level entry points,
/// where no file is involved.
const STREAM: &str = "<stream>";

/// Serializes the database to a writer in the binary snapshot format.
///
/// The encoder enforces the same limits the decoder does
/// ([`MAX_SNAPSHOT_SHAPES`], [`MAX_NAME_BYTES`], mesh caps), so any
/// file this writes is one the decoder accepts.
pub fn save_binary<W: Write>(db: &ShapeDatabase, mut w: W) -> Result<(), PersistError> {
    let shapes = db.shapes();
    let extractor = db.extractor();
    let config = db.index_config();

    if shapes.len() > MAX_SNAPSHOT_SHAPES {
        return Err(corrupt(
            Path::new(STREAM),
            "META",
            format!(
                "database holds {} shapes, format cap is {MAX_SNAPSHOT_SHAPES}",
                shapes.len()
            ),
        ));
    }

    let mut meta = Vec::new();
    put_u32(&mut meta, extractor.voxel_resolution as u32);
    put_u32(&mut meta, extractor.spectrum_dim as u32);
    put_u64(&mut meta, db.next_id());
    put_u64(&mut meta, shapes.len() as u64);
    put_u32(&mut meta, config.max_entries as u32);
    put_u32(&mut meta, config.min_entries as u32);
    put_u32(&mut meta, FeatureKind::ALL.len() as u32);
    for kind in FeatureKind::ALL {
        put_u32(&mut meta, extractor.dim(kind) as u32);
        put_f64(&mut meta, db.dmax(kind));
    }

    let mut shps = Vec::new();
    for s in shapes {
        if s.name.len() > MAX_NAME_BYTES {
            return Err(corrupt(
                Path::new(STREAM),
                "SHPS",
                format!("shape {} name exceeds {MAX_NAME_BYTES} bytes", s.id),
            ));
        }
        if s.mesh.vertices.len() > MAX_MESH_VERTICES || s.mesh.triangles.len() > MAX_MESH_FACES {
            return Err(corrupt(
                Path::new(STREAM),
                "SHPS",
                format!("shape {} mesh exceeds format caps", s.id),
            ));
        }
        put_u64(&mut shps, s.id);
        put_u32(&mut shps, s.name.len() as u32);
        shps.extend_from_slice(s.name.as_bytes());
        put_u32(&mut shps, s.mesh.vertices.len() as u32);
        put_u32(&mut shps, s.mesh.triangles.len() as u32);
        for v in &s.mesh.vertices {
            put_f64(&mut shps, v.x);
            put_f64(&mut shps, v.y);
            put_f64(&mut shps, v.z);
        }
        for t in &s.mesh.triangles {
            put_u32(&mut shps, t[0]);
            put_u32(&mut shps, t[1]);
            put_u32(&mut shps, t[2]);
        }
    }

    let mut feat = Vec::new();
    for kind in FeatureKind::ALL {
        for s in shapes {
            for &x in s.features.get(kind) {
                put_f64(&mut feat, x);
            }
        }
    }

    w.write_all(&SNAPSHOT_MAGIC)?;
    w.write_all(&SNAPSHOT_VERSION.to_le_bytes())?;
    w.write_all(&3u32.to_le_bytes())?;
    for (tag, payload) in [
        (SECTION_META, &meta),
        (SECTION_SHPS, &shps),
        (SECTION_FEAT, &feat),
    ] {
        w.write_all(&tag)?;
        w.write_all(&(payload.len() as u64).to_le_bytes())?;
        w.write_all(&checksum64(payload).to_le_bytes())?;
        w.write_all(payload)?;
    }
    Ok(())
}

/// Bounds-checked little-endian reader over one section's payload.
/// Every read that would run past the end is a typed corruption error
/// naming the section and path.
struct Cur<'a> {
    buf: &'a [u8],
    pos: usize,
    section: &'static str,
    path: &'a Path,
}

impl<'a> Cur<'a> {
    fn new(buf: &'a [u8], section: &'static str, path: &'a Path) -> Cur<'a> {
        Cur {
            buf,
            pos: 0,
            section,
            path,
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let s = &self.buf[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            None => Err(corrupt(
                self.path,
                self.section,
                // hotpath: allow(hot-alloc) — error path: formats once, then the load aborts
                format!(
                    "section truncated: needed {n} bytes at offset {}, payload is {} bytes",
                    self.pos,
                    self.buf.len()
                ),
            )),
        }
    }

    fn u32(&mut self) -> Result<u32, PersistError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, PersistError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn f64(&mut self) -> Result<f64, PersistError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Decodes `count` consecutive little-endian f64s in one bounds
    /// check. The allocation is bounded by `take` (the bytes must
    /// already be inside the section payload), not by the declared
    /// count alone.
    fn f64_vec(&mut self, count: usize) -> Result<Vec<f64>, PersistError> {
        let n = count.checked_mul(8).ok_or_else(|| {
            corrupt(
                self.path,
                self.section,
                format!("element count {count} overflows"),
            )
        })?;
        let bytes = self.take(n)?;
        Ok(bytes
            .chunks_exact(8)
            // lint: allow(unwrap) — chunks_exact(8) yields exactly 8 bytes
            .map(|c| f64::from_le_bytes(c.try_into().expect("8-byte chunk")))
            .collect())
    }

    /// Rejects trailing bytes — a length that disagrees with the
    /// content is corruption even when the checksum matches.
    fn done(&self) -> Result<(), PersistError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(corrupt(
                self.path,
                self.section,
                format!(
                    "{} unexpected trailing bytes after section content",
                    self.buf.len() - self.pos
                ),
            ))
        }
    }
}

/// Everything the `META` section declares.
struct Meta {
    extractor: FeatureExtractor,
    next_id: ShapeId,
    shape_count: usize,
    config: RTreeConfig,
    dims: Vec<usize>,
    dmax: HashMap<FeatureKind, f64>,
}

fn decode_meta(payload: &[u8], path: &Path) -> Result<Meta, PersistError> {
    let mut cur = Cur::new(payload, "META", path);
    let voxel_resolution = cur.u32()? as usize;
    let spectrum_dim = cur.u32()? as usize;
    let next_id = cur.u64()?;
    let shape_count_raw = cur.u64()?;
    let max_entries = cur.u32()? as usize;
    let min_entries = cur.u32()? as usize;
    let kind_count = cur.u32()? as usize;

    let shape_count = usize::try_from(shape_count_raw).unwrap_or(usize::MAX);
    if shape_count > MAX_SNAPSHOT_SHAPES {
        return Err(corrupt(
            path,
            "META",
            format!("declared shape count {shape_count_raw} exceeds cap {MAX_SNAPSHOT_SHAPES}"),
        ));
    }
    if voxel_resolution == 0 || spectrum_dim == 0 || spectrum_dim > MAX_FEATURE_DIM {
        return Err(corrupt(
            path,
            "META",
            format!(
                "implausible extractor config: voxel_resolution {voxel_resolution}, \
                 spectrum_dim {spectrum_dim}"
            ),
        ));
    }
    if kind_count != FeatureKind::ALL.len() {
        return Err(corrupt(
            path,
            "META",
            format!(
                "declared {kind_count} feature kinds, this build knows {}",
                FeatureKind::ALL.len()
            ),
        ));
    }
    let extractor = FeatureExtractor {
        voxel_resolution,
        spectrum_dim,
    };
    let mut dims = Vec::with_capacity(FeatureKind::ALL.len());
    let mut dmax = HashMap::new();
    for kind in FeatureKind::ALL {
        let dim = cur.u32()? as usize;
        if dim != extractor.dim(kind) {
            return Err(corrupt(
                path,
                "META",
                format!(
                    "declared dimension {dim} for {kind:?}, extractor config implies {}",
                    extractor.dim(kind)
                ),
            ));
        }
        dims.push(dim);
        dmax.insert(kind, cur.f64()?);
    }
    cur.done()?;
    Ok(Meta {
        extractor,
        next_id,
        shape_count,
        config: RTreeConfig {
            max_entries,
            min_entries,
        },
        dims,
        dmax,
    })
}

fn empty_feature_set() -> FeatureSet {
    FeatureSet {
        moment_invariants: Vec::new(),
        geometric: Vec::new(),
        principal_moments: Vec::new(),
        eigenvalues: Vec::new(),
        higher_order: Vec::new(),
        shape_distribution: Vec::new(),
        shell_histogram: Vec::new(),
    }
}

fn decode_shapes(
    payload: &[u8],
    shape_count: usize,
    path: &Path,
) -> Result<Vec<StoredShape>, PersistError> {
    let mut cur = Cur::new(payload, "SHPS", path);
    // shape_count was capped against MAX_SNAPSHOT_SHAPES in META, and
    // is re-bounded here where the allocation it sizes lives.
    if shape_count > MAX_SNAPSHOT_SHAPES {
        return Err(corrupt(
            path,
            "SHPS",
            format!("shape count {shape_count} exceeds cap {MAX_SNAPSHOT_SHAPES}"),
        ));
    }
    let mut shapes = Vec::with_capacity(shape_count.min(MAX_SNAPSHOT_SHAPES));
    for _ in 0..shape_count {
        let id = cur.u64()?;
        let name_len = cur.u32()? as usize;
        if name_len > MAX_NAME_BYTES {
            return Err(corrupt(
                path,
                "SHPS",
                format!("declared name length {name_len} exceeds cap {MAX_NAME_BYTES}"),
            ));
        }
        let name = String::from_utf8(cur.take(name_len)?.to_vec())
            .map_err(|_| corrupt(path, "SHPS", format!("shape {id} name is not valid UTF-8")))?;
        let nv = cur.u32()? as usize;
        let nt = cur.u32()? as usize;
        if nv > MAX_MESH_VERTICES {
            return Err(corrupt(
                path,
                "SHPS",
                format!("declared vertex count {nv} exceeds cap {MAX_MESH_VERTICES}"),
            ));
        }
        if nt > MAX_MESH_FACES {
            return Err(corrupt(
                path,
                "SHPS",
                format!("declared triangle count {nt} exceeds cap {MAX_MESH_FACES}"),
            ));
        }
        let mut vertices = Vec::with_capacity(nv.min(MAX_MESH_VERTICES));
        for _ in 0..nv {
            vertices.push(Vec3::new(cur.f64()?, cur.f64()?, cur.f64()?));
        }
        let mut triangles = Vec::with_capacity(nt.min(MAX_MESH_FACES));
        for _ in 0..nt {
            let t = [cur.u32()?, cur.u32()?, cur.u32()?];
            if t.iter().any(|&i| i as usize >= nv) {
                return Err(corrupt(
                    path,
                    "SHPS",
                    format!("shape {id} triangle references vertex out of range"),
                ));
            }
            triangles.push(t);
        }
        shapes.push(StoredShape {
            id,
            name,
            mesh: TriMesh {
                vertices,
                triangles,
            },
            features: empty_feature_set(),
        });
    }
    cur.done()?;
    Ok(shapes)
}

/// Fills `shapes[i].features` from the fixed-stride `FEAT` arrays.
fn decode_features(
    payload: &[u8],
    declared_sum: u64,
    shapes: &mut [StoredShape],
    dims: &[usize],
    path: &Path,
) -> Result<(), PersistError> {
    let mut cur = Cur::new(payload, "FEAT", path);
    // The checksum is folded in one kind-block ahead of the vector
    // decode below, so this multi-megabyte section is streamed
    // through memory once, not twice, and the block being decoded is
    // still cache-warm. Corruption is still always detected before
    // any decoded value escapes: nothing is returned until the final
    // whole-payload verdict.
    let mut sum = StreamSum::new();
    for (kind, &dim) in FeatureKind::ALL.into_iter().zip(dims) {
        if dim > MAX_FEATURE_DIM {
            return Err(corrupt(
                path,
                "FEAT",
                format!("dimension {dim} for {kind:?} exceeds cap {MAX_FEATURE_DIM}"),
            ));
        }
        let block_len = shapes.len().saturating_mul(dim).saturating_mul(8);
        let block_end = cur.pos.saturating_add(block_len).min(payload.len());
        sum.absorb(&payload[cur.pos..block_end]);
        for shape in shapes.iter_mut() {
            let v = cur.f64_vec(dim)?;
            // Finiteness is checked here, while the freshly decoded
            // values are cache-hot, instead of in a second pass over
            // every vector in `from_loaded_parts`.
            if !v.iter().all(|x| x.is_finite()) {
                return Err(corrupt(
                    path,
                    "FEAT",
                    format!("shape {} has a non-finite {kind:?} vector", shape.id),
                ));
            }
            match kind {
                FeatureKind::MomentInvariants => shape.features.moment_invariants = v,
                FeatureKind::GeometricParams => shape.features.geometric = v,
                FeatureKind::PrincipalMoments => shape.features.principal_moments = v,
                FeatureKind::Eigenvalues => shape.features.eigenvalues = v,
                FeatureKind::HigherOrder => shape.features.higher_order = v,
                FeatureKind::ShapeDistribution => shape.features.shape_distribution = v,
                FeatureKind::ShellHistogram => shape.features.shell_histogram = v,
            }
        }
    }
    cur.done()?;
    check_sum(sum.finish(), declared_sum, "FEAT", path)
}

/// Borrows one section's payload out of the whole-file buffer,
/// verifying tag, length cap, and bounds — but not the checksum,
/// which is returned for the caller to verify. `off` advances past
/// the section.
fn take_section_raw<'a>(
    buf: &'a [u8],
    off: &mut usize,
    expect_tag: [u8; 4],
    section: &'static str,
    path: &Path,
) -> Result<(&'a [u8], u64), PersistError> {
    let Some(head) = buf.get(*off..*off + 20) else {
        return Err(corrupt(
            path,
            section,
            "file ends inside the section header",
        ));
    };
    *off += 20;
    let tag = [head[0], head[1], head[2], head[3]];
    if tag != expect_tag {
        return Err(corrupt(
            path,
            section,
            format!(
                "expected section tag {:?}, found {:?}",
                String::from_utf8_lossy(&expect_tag),
                String::from_utf8_lossy(&tag)
            ),
        ));
    }
    let len = u64::from_le_bytes([
        head[4], head[5], head[6], head[7], head[8], head[9], head[10], head[11],
    ]);
    let declared_sum = u64::from_le_bytes([
        head[12], head[13], head[14], head[15], head[16], head[17], head[18], head[19],
    ]);
    if len > MAX_SECTION_BYTES {
        return Err(corrupt(
            path,
            section,
            format!("declared length {len} exceeds cap {MAX_SECTION_BYTES}"),
        ));
    }
    let remaining = (buf.len() - *off) as u64;
    if len > remaining {
        return Err(corrupt(
            path,
            section,
            format!("section truncated: declared {len} bytes, file holds {remaining}"),
        ));
    }
    let payload = &buf[*off..*off + len as usize];
    *off += len as usize;
    Ok((payload, declared_sum))
}

/// [`take_section_raw`] plus an eager checksum verification pass.
/// Used for the small sections; the FEAT decoder verifies its (much
/// larger) payload in the same pass that parses it.
fn take_section<'a>(
    buf: &'a [u8],
    off: &mut usize,
    expect_tag: [u8; 4],
    section: &'static str,
    path: &Path,
) -> Result<&'a [u8], PersistError> {
    let (payload, declared_sum) = take_section_raw(buf, off, expect_tag, section, path)?;
    check_sum(checksum64(payload), declared_sum, section, path)?;
    Ok(payload)
}

/// Compares an actual section checksum against the header's claim.
fn check_sum(
    actual: u64,
    declared: u64,
    section: &'static str,
    path: &Path,
) -> Result<(), PersistError> {
    if actual != declared {
        return Err(corrupt(
            path,
            section,
            format!("checksum mismatch: header says {declared:#018x}, payload is {actual:#018x}"),
        ));
    }
    Ok(())
}

/// Decodes a binary snapshot from a reader. `path` is used only in
/// error messages (pass the file's path, or anything descriptive for
/// in-memory readers).
///
/// The whole stream is read into memory first and decoded from the
/// buffer: sections are borrowed rather than copied, and the only
/// allocation sized by the input is bounded by the bytes the stream
/// actually delivered, never by a declared length.
pub fn load_binary<R: Read>(mut r: R, path: &Path) -> Result<ShapeDatabase, PersistError> {
    let mut buf = Vec::new();
    r.read_to_end(&mut buf).map_err(PersistError::Io)?;
    load_binary_bytes(&buf, path)
}

/// Decodes a binary snapshot already sitting in memory.
pub fn load_binary_bytes(buf: &[u8], path: &Path) -> Result<ShapeDatabase, PersistError> {
    let Some(head) = buf.get(..12) else {
        return Err(corrupt(
            path,
            "header",
            "file ends inside the snapshot header",
        ));
    };
    let magic = [head[0], head[1], head[2], head[3]];
    if magic != SNAPSHOT_MAGIC {
        return Err(PersistError::BadMagic {
            path: path.to_path_buf(),
            found: magic,
        });
    }
    let version = u32::from_le_bytes([head[4], head[5], head[6], head[7]]);
    if version != SNAPSHOT_VERSION {
        return Err(PersistError::UnsupportedVersion {
            path: path.to_path_buf(),
            found: version,
            supported: SNAPSHOT_VERSION,
        });
    }
    let section_count = u32::from_le_bytes([head[8], head[9], head[10], head[11]]);
    if section_count != 3 {
        return Err(corrupt(
            path,
            "header",
            format!("version 1 snapshots have 3 sections, header declares {section_count}"),
        ));
    }

    let mut off = 12;
    let meta_payload = take_section(buf, &mut off, SECTION_META, "META", path)?;
    let meta = decode_meta(meta_payload, path)?;

    let shps_payload = take_section(buf, &mut off, SECTION_SHPS, "SHPS", path)?;
    let mut shapes = decode_shapes(shps_payload, meta.shape_count, path)?;

    let (feat_payload, feat_sum) = take_section_raw(buf, &mut off, SECTION_FEAT, "FEAT", path)?;
    decode_features(feat_payload, feat_sum, &mut shapes, &meta.dims, path)?;

    ShapeDatabase::from_loaded_parts(meta.extractor, meta.next_id, shapes, meta.dmax, meta.config)
        .map_err(|reason| corrupt(path, "database", reason))
}

/// Loads a binary snapshot from a file path.
pub fn load_binary_from_path(path: &Path) -> Result<ShapeDatabase, PersistError> {
    let file = std::fs::File::open(path).map_err(|source| PersistError::File {
        op: crate::persist::FileOp::Open,
        path: path.to_path_buf(),
        source,
    })?;
    load_binary(std::io::BufReader::new(file), path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_is_deterministic_and_sensitive() {
        let data: Vec<u8> = (0..1000u32).flat_map(|i| i.to_le_bytes()).collect();
        assert_eq!(checksum64(&data), checksum64(&data));
        // Flipping any single bit of any byte must change the sum —
        // single-word corruption detection is certain, not
        // probabilistic (see the function docs).
        let base = checksum64(&data);
        for i in (0..data.len()).step_by(97) {
            let mut tampered = data.clone();
            tampered[i] ^= 0x10;
            assert_ne!(checksum64(&tampered), base, "flip at byte {i} undetected");
        }
    }

    #[test]
    fn checksum_distinguishes_zero_padded_lengths() {
        // The tail is zero-padded before absorption, so the length
        // term in the finalizer must keep "abc" and "abc\0" apart.
        assert_ne!(checksum64(b"abc"), checksum64(b"abc\0"));
        assert_ne!(checksum64(b""), checksum64(b"\0"));
        assert_ne!(checksum64(&[0u8; 8]), checksum64(&[0u8; 16]));
    }
}
