//! Concurrency regression and stress tests for the snapshot-isolated
//! SERVER tier.
//!
//! The named regression: `SearchServer` used to hold the database
//! read lock through feature extraction (the expensive part of a
//! query), so one slow search blocked every insert — and queued
//! writers in turn blocked all later readers. With snapshot
//! isolation, a search in flight must never delay a write.

use std::sync::mpsc;
use std::thread;
use std::time::Duration;

use tdess_core::{bulk_insert, Query, SearchServer, ShapeDatabase};
use tdess_features::{FeatureExtractor, FeatureKind};
use tdess_geom::{primitives, TriMesh, Vec3};

fn extractor() -> FeatureExtractor {
    FeatureExtractor {
        voxel_resolution: 16,
        ..Default::default()
    }
}

fn boxes(n: usize) -> Vec<(String, TriMesh)> {
    (0..n)
        .map(|i| {
            let s = 1.0 + 0.15 * i as f64;
            (
                format!("box-{i}"),
                primitives::box_mesh(Vec3::new(2.0 * s, 1.0 * s, 0.5 * s)),
            )
        })
        .collect()
}

/// The lock-starvation regression (crates/core/src/server.rs:42-59 at
/// the time of the bug): a search is held in flight mid-computation
/// while the main thread inserts. Under the old read-lock design the
/// insert blocked until the search finished (this test would hang);
/// under snapshot isolation it completes immediately, and the search
/// still answers from its original, consistent snapshot.
#[test]
fn insert_completes_while_search_in_flight() {
    let mut db = ShapeDatabase::new(extractor());
    bulk_insert(&mut db, boxes(2), 2).unwrap();
    let server = SearchServer::new(db);

    let (started_tx, started_rx) = mpsc::channel();
    let (release_tx, release_rx) = mpsc::channel::<()>();
    let (done_tx, done_rx) = mpsc::channel();

    let reader = server.clone();
    let search_thread = thread::spawn(move || {
        // A search of arbitrary duration: it runs against one
        // snapshot, and the channel keeps it "in flight" while the
        // main thread writes.
        let outcome = reader.with_db(|db| {
            started_tx.send(()).unwrap();
            release_rx.recv().unwrap();
            let q = db.shapes()[0].features.clone();
            (
                db.len(),
                db.search(&q, &Query::top_k(FeatureKind::PrincipalMoments, 10)),
            )
        });
        done_tx.send(outcome).unwrap();
    });

    started_rx.recv().unwrap();
    // The search is now in flight. The insert must complete without
    // waiting for it (the old design deadlocks right here).
    let id = server
        .insert("ring", primitives::torus(1.5, 0.4, 16, 8))
        .unwrap();
    assert_eq!(server.len(), 3);
    // The search really is still running.
    assert!(
        done_rx.try_recv().is_err(),
        "search finished before the insert could race it"
    );

    release_tx.send(()).unwrap();
    let (seen_len, hits) = done_rx.recv().unwrap();
    search_thread.join().unwrap();

    // The in-flight search saw its snapshot, not the insert.
    assert_eq!(seen_len, 2);
    assert!(hits.iter().all(|h| h.id != id));
    // New searches see the new snapshot.
    let q = server.snapshot().get(id).unwrap().features.clone();
    let hits = server.search_features(&q, &Query::top_k(FeatureKind::PrincipalMoments, 3));
    assert!(hits.iter().any(|h| h.id == id));
}

/// A full search_mesh (extraction included, on a large mesh) runs
/// concurrently with writes; both sides complete and the search's
/// results are internally consistent.
#[test]
fn search_mesh_and_writes_overlap() {
    let mut db = ShapeDatabase::new(extractor());
    bulk_insert(&mut db, boxes(3), 2).unwrap();
    let server = SearchServer::new(db);

    let searcher = server.clone();
    let search_thread = thread::spawn(move || {
        let mesh = primitives::torus(1.5, 0.4, 48, 24);
        searcher
            .search_mesh(&mesh, &Query::top_k(FeatureKind::PrincipalMoments, 10))
            .unwrap()
    });
    // Interleave writes while the search extracts.
    let id = server
        .insert("sphere", primitives::uv_sphere(1.0, 12, 6))
        .unwrap();
    server.remove(id).unwrap();
    let hits = search_thread.join().unwrap();
    // The search answered from one snapshot: at most the 3 or 4
    // shapes of some consistent state, never the removed id twice.
    assert!(hits.len() <= 4);
    let mut ids: Vec<_> = hits.iter().map(|h| h.id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), hits.len(), "duplicate ids in one snapshot");
    assert!(hits.iter().all(|h| (0.0..=1.0).contains(&h.similarity)));
}

/// Stress: searches, inserts, and removes from many threads. Every
/// search must observe a consistent snapshot — `len()` and search
/// results taken inside one `with_db` always agree.
#[test]
fn concurrent_stress_consistent_snapshots() {
    let mut db = ShapeDatabase::new(FeatureExtractor {
        voxel_resolution: 12,
        ..Default::default()
    });
    let initial = bulk_insert(&mut db, boxes(4), 2).unwrap();
    let server = SearchServer::new(db);

    crossbeam::scope(|scope| {
        // Searchers: consistency-check snapshot len against results.
        for _ in 0..3 {
            let server = server.clone();
            scope.spawn(move |_| {
                for i in 0..12 {
                    let k = 3 + (i % 5);
                    server.with_db(|db| {
                        let len = db.len();
                        let q = db.shapes()[i % len.max(1)].features.clone();
                        let hits = db.search(&q, &Query::top_k(FeatureKind::PrincipalMoments, k));
                        assert_eq!(hits.len(), k.min(len), "snapshot len/result mismatch");
                        for h in &hits {
                            assert!(db.get(h.id).is_some(), "hit not in the same snapshot");
                        }
                    });
                    thread::sleep(Duration::from_millis(1));
                }
            });
        }
        // Inserter.
        {
            let server = server.clone();
            scope.spawn(move |_| {
                for i in 0..3 {
                    let s = 0.7 + 0.2 * i as f64;
                    server
                        .insert(
                            format!("extra-{i}"),
                            primitives::box_mesh(Vec3::new(s, 2.0 * s, 3.0 * s)),
                        )
                        .unwrap();
                }
            });
        }
        // Remover: racing removes may legitimately miss; errors must
        // be UnknownShape, never corruption.
        {
            let server = server.clone();
            let victim = initial[1];
            scope.spawn(move |_| {
                thread::sleep(Duration::from_millis(2));
                let _ = server.remove(victim);
                // Second remove of the same id must fail cleanly.
                assert!(server.remove(victim).is_err());
            });
        }
    })
    .unwrap();

    // Final state: 4 initial + 3 inserted − 1 removed.
    assert_eq!(server.len(), 6);
    // 3 inserts + 1 successful remove published snapshots.
    assert_eq!(server.metrics().snapshot_swaps, 4);
}
