//! Aggregation tests for [`ServerMetrics`]/[`LatencyStats`] under
//! concurrent recorders: min/mean/max invariants, counter
//! conservation, and snapshot-swap monotonicity.

use std::time::Duration;

use tdess_core::{Query, SearchServer, ServerMetrics, ShapeDatabase};
use tdess_features::{FeatureExtractor, FeatureKind};
use tdess_geom::{primitives, Vec3};

fn server() -> SearchServer {
    let mut db = ShapeDatabase::new(FeatureExtractor {
        voxel_resolution: 12,
        ..Default::default()
    });
    db.insert("box", primitives::box_mesh(Vec3::new(2.0, 1.0, 0.5)))
        .unwrap();
    db.insert("sphere", primitives::uv_sphere(1.0, 10, 5))
        .unwrap();
    db.insert("rod", primitives::cylinder(0.3, 4.0, 10))
        .unwrap();
    SearchServer::new(db)
}

/// The invariants every non-empty latency summary must satisfy.
fn check_latency(l: &tdess_core::LatencyStats) {
    assert!(l.count > 0);
    assert!(l.min_s >= 0.0);
    assert!(l.min_s <= l.mean_s, "min {} > mean {}", l.min_s, l.mean_s);
    assert!(l.mean_s <= l.max_s, "mean {} > max {}", l.mean_s, l.max_s);
    assert!(l.min_s.is_finite() && l.mean_s.is_finite() && l.max_s.is_finite());
    // Quantiles are ordered and bounded by the exact extremes.
    assert!(l.min_s <= l.p50_s, "p50 {} below min {}", l.p50_s, l.min_s);
    assert!(l.p50_s <= l.p90_s, "p50 {} > p90 {}", l.p50_s, l.p90_s);
    assert!(l.p90_s <= l.p99_s, "p90 {} > p99 {}", l.p90_s, l.p99_s);
    assert!(l.p99_s <= l.max_s, "p99 {} above max {}", l.p99_s, l.max_s);
}

#[test]
fn fresh_server_reports_absent_latencies() {
    let m = server().metrics();
    assert_eq!(m.queries_served, 0);
    // No samples → `None`, never a fake all-zero summary.
    assert_eq!(m.one_shot, None);
    assert_eq!(m.multi_step, None);
    assert_eq!(m.transport, None);
    assert_eq!(m.snapshot_swaps, 0);
}

#[test]
fn concurrent_transport_recorders_aggregate_exactly() {
    let server = server();
    // Each of 8 threads records the same known durations; the global
    // min/max are then exactly the smallest/largest of the set, and
    // count proves no record was lost to a race.
    let durations = [1u64, 2, 4, 8, 16].map(Duration::from_millis);
    let threads = 8;
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                for d in durations {
                    server.record_transport(d);
                }
            });
        }
    });
    let t = server.metrics().transport.expect("transport recorded");
    assert_eq!(t.count, threads * durations.len() as u64);
    assert_eq!(t.min_s, Duration::from_millis(1).as_secs_f64());
    assert_eq!(t.max_s, Duration::from_millis(16).as_secs_f64());
    // The exact mean of the recorded set, independent of interleaving
    // (addition of these values is exact well within 1e-12).
    let expect_mean =
        durations.iter().map(Duration::as_secs_f64).sum::<f64>() / durations.len() as f64;
    assert!((t.mean_s - expect_mean).abs() < 1e-12);
    check_latency(&t);
}

#[test]
fn concurrent_queries_conserve_counts() {
    let server = server();
    let probe = server.snapshot().shapes()[0].features.clone();
    let threads = 8;
    let per_thread = 10;
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                for _ in 0..per_thread {
                    let hits = server
                        .search_features(&probe, &Query::top_k(FeatureKind::PrincipalMoments, 2));
                    assert_eq!(hits.len(), 2);
                }
            });
        }
    });
    let m = server.metrics();
    assert_eq!(m.queries_served, threads * per_thread);
    let one_shot = m.one_shot.expect("one-shot recorded");
    assert_eq!(one_shot.count, threads * per_thread);
    assert_eq!(m.multi_step, None);
    check_latency(&one_shot);
    // Index work was recorded for every query.
    assert!(m.index_stats.nodes_visited >= threads as usize * per_thread as usize);
}

#[test]
fn snapshot_swaps_are_monotonic_and_count_writes() {
    let server = server();
    let mut last = server.metrics();
    assert_eq!(last.snapshot_swaps, 0);
    for i in 0..5 {
        let id = server
            .insert(format!("extra-{i}"), primitives::box_mesh(Vec3::ONE))
            .unwrap();
        let m = server.metrics();
        // One write, one published snapshot; reads never roll it back.
        assert_eq!(m.snapshot_swaps, last.snapshot_swaps + 1);
        // Writes alone record no query latency.
        assert_eq!(m.one_shot, last.one_shot);
        assert_eq!(m.queries_served, last.queries_served);
        last = m;
        if i == 4 {
            server.remove(id).unwrap();
            assert_eq!(server.metrics().snapshot_swaps, last.snapshot_swaps + 1);
        }
    }
}

#[test]
fn concurrent_writers_and_readers_agree_on_totals() {
    let server = server();
    let probe = server.snapshot().shapes()[0].features.clone();
    let writers = 4;
    let writes_per = 3;
    let readers = 4;
    let reads_per = 8;
    std::thread::scope(|scope| {
        for w in 0..writers {
            let server = &server;
            scope.spawn(move || {
                for i in 0..writes_per {
                    server
                        .insert(
                            format!("w{w}-{i}"),
                            primitives::box_mesh(Vec3::new(1.0 + i as f64, 1.0, 1.0)),
                        )
                        .unwrap();
                }
            });
        }
        for _ in 0..readers {
            let server = &server;
            let probe = probe.clone();
            scope.spawn(move || {
                let mut seen = 0;
                for _ in 0..reads_per {
                    server.search_features(&probe, &Query::top_k(FeatureKind::Eigenvalues, 1));
                    // Monotonic under concurrency: successive metric
                    // snapshots never lose swaps or served queries.
                    let m: ServerMetrics = server.metrics();
                    assert!(m.snapshot_swaps >= seen);
                    seen = m.snapshot_swaps;
                }
            });
        }
    });
    let m = server.metrics();
    assert_eq!(m.snapshot_swaps, writers * writes_per);
    assert_eq!(m.queries_served, readers * reads_per);
    let one_shot = m.one_shot.expect("one-shot recorded");
    assert_eq!(one_shot.count, readers * reads_per);
    check_latency(&one_shot);
}
