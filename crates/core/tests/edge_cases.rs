//! Edge-case behavior of the search system: empty databases, extreme
//! thresholds, degenerate plans, and persistence of empty/odd states.

use tdess_core::{
    load, multi_step_search, save, MultiStepPlan, Query, QueryMode, ShapeDatabase, Weights,
};
use tdess_features::{FeatureExtractor, FeatureKind};
use tdess_geom::{primitives, Vec3};

fn extractor() -> FeatureExtractor {
    FeatureExtractor {
        voxel_resolution: 16,
        ..Default::default()
    }
}

fn one_shape_db() -> ShapeDatabase {
    let mut db = ShapeDatabase::new(extractor());
    db.insert("only", primitives::box_mesh(Vec3::new(2.0, 1.0, 0.5)))
        .unwrap();
    db
}

#[test]
fn empty_database_returns_no_hits() {
    let db = ShapeDatabase::new(extractor());
    assert!(db.is_empty());
    let q = extractor()
        .extract(&primitives::box_mesh(Vec3::ONE))
        .unwrap();
    for kind in FeatureKind::ALL {
        assert!(db.search(&q, &Query::top_k(kind, 5)).is_empty(), "{kind:?}");
        assert!(
            db.search(&q, &Query::threshold(kind, 0.5)).is_empty(),
            "{kind:?}"
        );
    }
}

#[test]
fn single_shape_database_similarity_degenerates_gracefully() {
    let db = one_shape_db();
    // dmax is 0 with one shape: self-query has similarity 1, any other
    // query similarity 0 — but results still come back ranked.
    let self_q = db.shapes()[0].features.clone();
    let hits = db.search(&self_q, &Query::top_k(FeatureKind::PrincipalMoments, 3));
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].similarity, 1.0);

    let other = extractor()
        .extract(&primitives::uv_sphere(1.0, 12, 6))
        .unwrap();
    let hits = db.search(&other, &Query::top_k(FeatureKind::PrincipalMoments, 3));
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].similarity, 0.0);
}

#[test]
fn threshold_bounds_behave() {
    let mut db = ShapeDatabase::new(extractor());
    db.insert("a", primitives::box_mesh(Vec3::new(2.0, 1.0, 0.5)))
        .unwrap();
    db.insert("b", primitives::uv_sphere(1.0, 12, 6)).unwrap();
    db.insert("c", primitives::cylinder(0.3, 4.0, 12)).unwrap();
    let q = db.shapes()[0].features.clone();
    // Threshold 0 returns everything.
    let all = db.search(&q, &Query::threshold(FeatureKind::MomentInvariants, 0.0));
    assert_eq!(all.len(), 3);
    // Threshold 1 returns only exact matches.
    let exact = db.search(&q, &Query::threshold(FeatureKind::MomentInvariants, 1.0));
    assert_eq!(exact.len(), 1);
    assert_eq!(exact[0].distance, 0.0);
}

#[test]
#[should_panic(expected = "threshold must be in [0, 1]")]
fn out_of_range_threshold_panics() {
    let db = one_shape_db();
    let q = db.shapes()[0].features.clone();
    let _ = db.search(&q, &Query::threshold(FeatureKind::MomentInvariants, 1.5));
}

#[test]
fn multistep_presented_exceeding_candidates_is_capped() {
    let mut db = ShapeDatabase::new(extractor());
    for i in 0..5 {
        let s = 1.0 + 0.1 * i as f64;
        db.insert(
            format!("b{i}"),
            primitives::box_mesh(Vec3::new(2.0 * s, s, 0.5 * s)),
        )
        .unwrap();
    }
    let q = db.shapes()[0].features.clone();
    let hits = multi_step_search(
        &db,
        &q,
        &MultiStepPlan {
            steps: vec![FeatureKind::PrincipalMoments, FeatureKind::MomentInvariants],
            candidates: 2,
            presented: 10,
        },
    );
    assert_eq!(hits.len(), 2, "cannot present more than the candidate set");
}

#[test]
fn multistep_single_step_equals_one_shot() {
    let mut db = ShapeDatabase::new(extractor());
    for i in 0..6 {
        let s = 1.0 + 0.07 * i as f64;
        db.insert(
            format!("b{i}"),
            primitives::box_mesh(Vec3::new(2.0 * s, s, 0.4 * s)),
        )
        .unwrap();
    }
    let q = db.shapes()[2].features.clone();
    let plan = MultiStepPlan {
        steps: vec![FeatureKind::PrincipalMoments],
        candidates: 4,
        presented: 4,
    };
    let ms: Vec<_> = multi_step_search(&db, &q, &plan)
        .into_iter()
        .map(|h| h.id)
        .collect();
    let os: Vec<_> = db
        .search(&q, &Query::top_k(FeatureKind::PrincipalMoments, 4))
        .into_iter()
        .map(|h| h.id)
        .collect();
    assert_eq!(ms, os);
}

#[test]
fn weighted_query_with_partial_weights_panics() {
    let db = one_shape_db();
    let q = db.shapes()[0].features.clone();
    let result = std::panic::catch_unwind(|| {
        db.search(
            &q,
            &Query {
                kind: FeatureKind::PrincipalMoments,   // dim 3
                weights: Weights::new(vec![1.0, 1.0]), // wrong dim
                mode: QueryMode::TopK(1),
            },
        )
    });
    assert!(result.is_err(), "dimension mismatch must not pass silently");
}

#[test]
fn empty_database_persists_and_reloads() {
    let db = ShapeDatabase::new(extractor());
    let mut buf = Vec::new();
    save(&db, &mut buf).unwrap();
    let mut restored = load(buf.as_slice()).unwrap();
    assert!(restored.is_empty());
    // And keeps working after a fresh insert.
    let id = restored
        .insert("first", primitives::box_mesh(Vec3::ONE))
        .unwrap();
    assert_eq!(id, 1);
}

#[test]
fn reinserting_identical_mesh_gives_zero_distance_pair() {
    let mut db = ShapeDatabase::new(extractor());
    let mesh = primitives::torus(1.5, 0.4, 16, 8);
    let a = db.insert("dup-a", mesh.clone()).unwrap();
    let b = db.insert("dup-b", mesh).unwrap();
    let q = db.get(a).unwrap().features.clone();
    let hits = db.search(&q, &Query::top_k(FeatureKind::MomentInvariants, 2));
    assert_eq!(hits.len(), 2);
    assert!(hits.iter().all(|h| h.distance < 1e-12));
    let ids: std::collections::HashSet<_> = hits.iter().map(|h| h.id).collect();
    assert!(ids.contains(&a) && ids.contains(&b));
}
