//! Property tests: the indexed (R-tree distance-ball) threshold path
//! must return exactly the set a brute-force similarity scan returns,
//! for any point configuration and any threshold — including the
//! boundary thresholds that sit exactly on a stored similarity, where
//! float rounding in `d/dmax` used to make the two paths disagree.

use proptest::prelude::*;

use tdess_core::{similarity, weighted_distance, Query, ShapeDatabase, Weights};
use tdess_features::{FeatureExtractor, FeatureKind, FeatureSet};
use tdess_geom::{primitives, TriMesh, Vec3};

/// A feature set whose principal-moments vector is `p`, with every
/// other space deterministically derived at its proper dimension
/// (those spaces are indexed too, so they must be well-formed).
fn synth_features(ex: &FeatureExtractor, p: &[f64]) -> FeatureSet {
    let fill = |dim: usize| -> Vec<f64> {
        (0..dim)
            .map(|i| p[i % p.len()] * (1.0 + 0.25 * i as f64))
            .collect()
    };
    FeatureSet {
        moment_invariants: fill(ex.dim(FeatureKind::MomentInvariants)),
        geometric: fill(ex.dim(FeatureKind::GeometricParams)),
        principal_moments: p.to_vec(),
        eigenvalues: fill(ex.dim(FeatureKind::Eigenvalues)),
        higher_order: fill(ex.dim(FeatureKind::HigherOrder)),
        shape_distribution: fill(ex.dim(FeatureKind::ShapeDistribution)),
        shell_histogram: fill(ex.dim(FeatureKind::ShellHistogram)),
    }
}

fn db_from_points(pts: &[Vec<f64>]) -> (ShapeDatabase, FeatureExtractor) {
    let ex = FeatureExtractor {
        voxel_resolution: 8,
        ..Default::default()
    };
    let mesh: TriMesh = primitives::box_mesh(Vec3::ONE); // never extracted
    let mut db = ShapeDatabase::new(ex);
    for (i, p) in pts.iter().enumerate() {
        db.insert_precomputed(format!("p{i}"), mesh.clone(), synth_features(&ex, p));
    }
    (db, ex)
}

/// Brute-force reference: ids whose similarity to the query meets the
/// threshold, computed exactly as the weighted-scan path does.
fn scan_ids(db: &ShapeDatabase, qf: &FeatureSet, kind: FeatureKind, t: f64) -> Vec<u64> {
    let dmax = db.dmax(kind);
    let mut ids: Vec<u64> = db
        .shapes()
        .iter()
        .filter(|s| {
            let d = weighted_distance(qf.get(kind), s.features.get(kind), &Weights::unit());
            similarity(d, dmax) >= t
        })
        .map(|s| s.id)
        .collect();
    ids.sort_unstable();
    ids
}

fn indexed_ids(db: &ShapeDatabase, qf: &FeatureSet, kind: FeatureKind, t: f64) -> Vec<u64> {
    let mut ids: Vec<u64> = db
        .search(qf, &Query::threshold(kind, t))
        .into_iter()
        .map(|h| h.id)
        .collect();
    ids.sort_unstable();
    ids
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn threshold_matches_similarity_scan(
        pts in prop::collection::vec(prop::collection::vec(-50.0f64..50.0, 3..=3), 1..40),
        q in prop::collection::vec(-60.0f64..60.0, 3..=3),
        t in 0.0f64..1.0,
    ) {
        let (db, ex) = db_from_points(&pts);
        let qf = synth_features(&ex, &q);
        let kind = FeatureKind::PrincipalMoments;
        prop_assert_eq!(
            indexed_ids(&db, &qf, kind, t),
            scan_ids(&db, &qf, kind, t),
            "threshold {}", t
        );
    }

    #[test]
    fn threshold_matches_scan_on_exact_boundaries(
        pts in prop::collection::vec(prop::collection::vec(-50.0f64..50.0, 3..=3), 2..30),
        q in prop::collection::vec(-60.0f64..60.0, 3..=3),
        pick in 0usize..64,
    ) {
        let (db, ex) = db_from_points(&pts);
        let qf = synth_features(&ex, &q);
        let kind = FeatureKind::PrincipalMoments;
        // Use a stored shape's own similarity as the threshold — the
        // boundary case where rounding in the ball radius used to
        // drop (or keep) shapes the scan path treated differently.
        let s = &db.shapes()[pick % db.len()];
        let d = weighted_distance(qf.get(kind), s.features.get(kind), &Weights::unit());
        let t = similarity(d, db.dmax(kind));
        prop_assert_eq!(
            indexed_ids(&db, &qf, kind, t),
            scan_ids(&db, &qf, kind, t),
            "boundary threshold {}", t
        );
    }
}

/// Degenerate geometry the random strategies rarely produce: all
/// stored points identical (`dmax = 0`) with an external query, and
/// the zero threshold whose clamp admits every shape.
#[test]
fn threshold_degenerate_cases_agree() {
    let pts = vec![vec![1.0, 2.0, 3.0], vec![1.0, 2.0, 3.0]];
    let (db, ex) = db_from_points(&pts);
    let kind = FeatureKind::PrincipalMoments;
    let far = synth_features(&ex, &[9.0, 9.0, 9.0]);
    let near = synth_features(&ex, &[1.0, 2.0, 3.0]);
    for (qf, label) in [(&far, "far"), (&near, "near")] {
        for t in [0.0, 0.5, 1.0] {
            assert_eq!(
                indexed_ids(&db, qf, kind, t),
                scan_ids(&db, qf, kind, t),
                "{label} query, threshold {t}"
            );
        }
    }
    // dmax = 0, external query: zero threshold admits everything even
    // though no distance ball around the query contains the points.
    assert_eq!(indexed_ids(&db, &far, kind, 0.0).len(), 2);
    assert_eq!(indexed_ids(&db, &far, kind, 0.5).len(), 0);
}
