//! Concurrency guarantees of the extraction cache:
//!
//! * singleflight — N threads missing on one key run exactly one
//!   extraction, and every thread gets the same (bit-identical) value;
//! * budget — the resident-bytes gauge never exceeds the configured
//!   capacity, even while concurrent admits and evictions race;
//! * accounting — counters balance after the dust settles.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::Duration;

use tdess_cache::{CacheConfig, CacheKey, FeatureCache};
use tdess_features::{normalize, FeatureExtractor, FeatureSet};
use tdess_geom::{primitives, Vec3};

fn key(i: u64) -> CacheKey {
    let mesh = primitives::box_mesh(Vec3::new(1.0 + i as f64, 1.0, 0.5));
    CacheKey::derive(&normalize(&mesh).unwrap(), &FeatureExtractor::default())
}

fn features(tag: f64, floats: usize) -> FeatureSet {
    FeatureSet {
        moment_invariants: vec![tag; floats],
        geometric: Vec::new(),
        principal_moments: Vec::new(),
        eigenvalues: Vec::new(),
        higher_order: Vec::new(),
        shape_distribution: Vec::new(),
        shell_histogram: Vec::new(),
    }
}

#[test]
fn n_threads_one_key_exactly_one_extraction() {
    const THREADS: usize = 16;
    let cache = FeatureCache::with_config(CacheConfig::default());
    let extractions = AtomicUsize::new(0);
    let barrier = Barrier::new(THREADS);
    let k = key(1);

    let results: Vec<Arc<FeatureSet>> = thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                scope.spawn(|| {
                    barrier.wait();
                    cache.get_or_extract(k, || {
                        extractions.fetch_add(1, Ordering::SeqCst);
                        // Hold the flight open long enough that the
                        // herd piles up behind it.
                        thread::sleep(Duration::from_millis(50));
                        features(0.5, 32)
                    })
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    assert_eq!(
        extractions.load(Ordering::SeqCst),
        1,
        "the herd must coalesce into one extraction"
    );
    for r in &results {
        assert!(
            Arc::ptr_eq(r, &results[0]),
            "every caller shares the leader's value"
        );
        assert_eq!(r.moment_invariants, results[0].moment_invariants);
    }
    let s = cache.stats_snapshot();
    assert_eq!(s.misses, 1);
    assert_eq!(
        s.hits + s.coalesced_waits,
        (THREADS - 1) as u64,
        "every non-leader either coalesced or hit: {s:?}"
    );
    assert_eq!(s.entries, 1);
}

#[test]
fn budget_holds_under_concurrent_admits() {
    const WRITERS: usize = 8;
    const KEYS_PER_WRITER: u64 = 40;
    // ~300 floats ≈ 2.6 KiB per entry; budget fits only a fraction of
    // the 320 distinct keys, so eviction churns the whole run.
    let cache = Arc::new(FeatureCache::with_config(CacheConfig {
        max_bytes: 64 << 10,
        shards: 4,
    }));
    let done = AtomicBool::new(false);
    let over_budget = AtomicUsize::new(0);

    thread::scope(|scope| {
        // A sampler hammers the gauge while writers churn: the
        // net-delta update means no sample may ever exceed capacity.
        scope.spawn(|| {
            while !done.load(Ordering::Acquire) {
                let s = cache.stats_snapshot();
                if s.resident_bytes > s.capacity_bytes {
                    over_budget.fetch_add(1, Ordering::SeqCst);
                }
                std::hint::spin_loop();
            }
        });
        let handles: Vec<_> = (0..WRITERS)
            .map(|w| {
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    for i in 0..KEYS_PER_WRITER {
                        let k = key(w as u64 * KEYS_PER_WRITER + i + 1);
                        let v = cache.get_or_extract(k, || features(i as f64, 300));
                        assert_eq!(v.moment_invariants[0], i as f64);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        done.store(true, Ordering::Release);
    });

    assert_eq!(
        over_budget.load(Ordering::SeqCst),
        0,
        "resident_bytes must never be observed above capacity"
    );
    let s = cache.stats_snapshot();
    assert!(
        s.resident_bytes <= s.capacity_bytes,
        "final state in budget: {s:?}"
    );
    assert!(s.evictions > 0, "the workload must actually churn: {s:?}");
    assert_eq!(
        s.misses,
        (WRITERS as u64) * KEYS_PER_WRITER,
        "every distinct key extracts exactly once (no premature eviction \
         of in-flight results breaks this invariant): {s:?}"
    );
}

#[test]
fn herds_on_distinct_keys_do_not_serialize_each_other() {
    // Two herds on two keys: each coalesces internally, and both
    // leaders run concurrently (the test deadlocks on a timeout if
    // one flight blocked the other, since each leader waits for the
    // other herd's barrier).
    const PER_HERD: usize = 4;
    let cache = FeatureCache::with_config(CacheConfig::default());
    let extractions = AtomicUsize::new(0);
    let leaders = Barrier::new(2);
    let (k1, k2) = (key(1), key(2));

    thread::scope(|scope| {
        let (cache, extractions, leaders) = (&cache, &extractions, &leaders);
        let mut handles = Vec::new();
        for k in [k1, k2] {
            for _ in 0..PER_HERD {
                handles.push(scope.spawn(move || {
                    cache.get_or_extract(k, || {
                        extractions.fetch_add(1, Ordering::SeqCst);
                        // Rendezvous with the *other* key's leader —
                        // only possible if flights are independent.
                        leaders.wait();
                        features(1.0, 8)
                    })
                }));
            }
        }
        for h in handles {
            h.join().unwrap();
        }
    });

    assert_eq!(extractions.load(Ordering::SeqCst), 2);
    let s = cache.stats_snapshot();
    assert_eq!(s.misses, 2);
    assert_eq!(s.entries, 2);
}
