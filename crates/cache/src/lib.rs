//! # tdess-cache — content-addressed feature-extraction cache
//!
//! Extraction dominates query latency (skeletonization alone is two
//! orders of magnitude slower than the index search), and real
//! retrieval workloads replay the same queries: benchmark protocols
//! re-run fixed query sets, and the paper's multi-step search
//! re-queries one shape across several feature spaces. This crate
//! makes every repeat a near-free hit:
//!
//! * [`CacheKey`] — a 128-bit *content* key over the canonical
//!   (pose-normalized, coordinate-quantized) mesh, the full extraction
//!   configuration, and [`PIPELINE_VERSION`]. Two exports of the same
//!   part collide; anything that would change the extracted vectors
//!   misses. See `key.rs` for the invariance contract.
//! * a sharded, byte-budgeted LRU over extracted `FeatureSet`s
//!   (`lru.rs`) — per-shard locks, exact cost accounting, strict
//!   budget.
//! * singleflight coalescing (`flight.rs`) — N concurrent identical
//!   queries run exactly one extraction; the rest block on the shared
//!   cell and reuse its result.
//!
//! [`FeatureCache::get_or_extract`] composes the three:
//!
//! ```text
//! lookup ──hit──────────────────────────────▶ Arc<FeatureSet>
//!   │ miss
//! enter flight (re-checks store under table lock)
//!   ├─ resident ──────────────────────────────▶ hit
//!   └─ flight: get_or_init
//!        ├─ leader: extract, admit, retire ───▶ miss
//!        └─ follower: block on leader ────────▶ coalesced wait
//! ```
//!
//! The extraction closure runs outside every cache lock; the cache
//! never re-enters itself. Counters are plain atomics — reading stats
//! never contends with the data path.

#![forbid(unsafe_code)]

mod flight;
mod key;
mod lru;

pub use key::{CacheKey, PIPELINE_VERSION};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use serde::{Deserialize, Serialize};
use tdess_features::FeatureSet;

use flight::{FlightMap, Joined, Landed};
use lru::ShardedLru;

/// Address of a span in some request trace: `(trace id, span id)`.
///
/// Kept as plain data so this crate stays decoupled from the obs
/// tier: callers that collect span trees pass their current span's
/// address in, and coalesced followers get the *leader's* address
/// back to link into their own traces.
pub type SpanLink = Option<(Arc<str>, u32)>;

/// How a [`FeatureCache::get_or_extract_with`] call was satisfied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Served from the resident store (including a flight re-check
    /// that found the value already landed).
    Hit,
    /// This caller ran the extraction (it led the flight).
    Miss,
    /// This caller blocked on another request's extraction; `leader`
    /// is that request's span address (when it was tracing).
    Coalesced {
        /// Span address the flight leader published with the value.
        leader: SpanLink,
    },
}

/// Fixed per-entry overhead charged on top of the vector payload:
/// node, hash-map slot, and `Arc` bookkeeping.
const ENTRY_OVERHEAD_BYTES: u64 = 256;

/// Configuration for a [`FeatureCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total byte budget across all shards.
    pub max_bytes: u64,
    /// Shard count; rounded up to a power of two, minimum 1.
    pub shards: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            max_bytes: 256 << 20,
            shards: 16,
        }
    }
}

/// Monotonic counters + gauges. All cross-thread; RMWs use `AcqRel`
/// and reads `Acquire` so a stats snapshot taken after an operation
/// observes that operation's effects.
#[derive(Default)]
struct Counters {
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced_waits: AtomicU64,
    evictions: AtomicU64,
    resident_bytes: AtomicU64,
    entries: AtomicU64,
}

/// One consistent-enough reading of the cache counters, serializable
/// for the stats wire protocol and the metrics endpoint.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStatsSnapshot {
    /// Lookups answered from the store (including flight re-checks
    /// that found the value already landed).
    pub hits: u64,
    /// Extractions actually run (one per flight).
    pub misses: u64,
    /// Requests that blocked on another request's extraction instead
    /// of running their own.
    pub coalesced_waits: u64,
    /// Entries evicted to stay inside the byte budget.
    pub evictions: u64,
    /// Accounted bytes currently resident. Never exceeds
    /// `capacity_bytes`.
    pub resident_bytes: u64,
    /// Entries currently resident.
    pub entries: u64,
    /// Configured byte budget.
    pub capacity_bytes: u64,
}

/// The content-addressed extraction cache. Cheap to share: wrap it in
/// an `Arc` and hand clones to every worker.
pub struct FeatureCache {
    store: ShardedLru,
    flights: FlightMap,
    counters: Counters,
    capacity_bytes: u64,
}

impl FeatureCache {
    /// Builds a cache with the given budget and sharding.
    pub fn with_config(config: CacheConfig) -> FeatureCache {
        let shards = config.shards.next_power_of_two().max(1);
        FeatureCache {
            store: ShardedLru::with_budget(config.max_bytes, shards),
            flights: FlightMap::empty(),
            counters: Counters::default(),
            capacity_bytes: config.max_bytes,
        }
    }

    /// Returns the cached `FeatureSet` for `key`, or runs
    /// `produce_features` exactly once across all concurrent callers
    /// with this key and caches its result.
    ///
    /// The closure runs outside every cache lock. It must not call
    /// back into this cache (it has no reason to — it is the raw
    /// extraction pipeline).
    pub fn get_or_extract<F>(&self, key: CacheKey, produce_features: F) -> Arc<FeatureSet>
    where
        F: FnOnce() -> FeatureSet,
    {
        self.get_or_extract_with(key, None, produce_features).0
    }

    /// [`get_or_extract`](FeatureCache::get_or_extract), plus span
    /// linkage: `my_link` is the caller's current span address (pass
    /// `None` when not tracing); if this caller leads the flight the
    /// link is published with the value, and a coalesced follower
    /// receives the *leader's* link in its [`CacheOutcome`] so the one
    /// real extraction span can be referenced — not duplicated — from
    /// the follower's trace.
    pub fn get_or_extract_with<F>(
        &self,
        key: CacheKey,
        my_link: SpanLink,
        produce_features: F,
    ) -> (Arc<FeatureSet>, CacheOutcome)
    where
        F: FnOnce() -> FeatureSet,
    {
        if let Some(v) = self.store.lookup(&key) {
            self.counters.hits.fetch_add(1, Ordering::AcqRel);
            return (v, CacheOutcome::Hit);
        }
        match self.flights.enter(&key, &self.store) {
            Joined::Resident(v) => {
                self.counters.hits.fetch_add(1, Ordering::AcqRel);
                (v, CacheOutcome::Hit)
            }
            Joined::Flight(cell) => {
                let mut led = false;
                let landed = cell.get_or_init(|| {
                    led = true;
                    Landed {
                        value: Arc::new(produce_features()),
                        leader: my_link,
                    }
                });
                let v = Arc::clone(&landed.value);
                if led {
                    self.counters.misses.fetch_add(1, Ordering::AcqRel);
                    let outcome = self.store.admit(key, Arc::clone(&v), entry_cost(&v));
                    self.apply(&outcome);
                    self.flights.retire(&key);
                    (v, CacheOutcome::Miss)
                } else {
                    self.counters.coalesced_waits.fetch_add(1, Ordering::AcqRel);
                    (
                        v,
                        CacheOutcome::Coalesced {
                            leader: clone_link(&landed.leader),
                        },
                    )
                }
            }
        }
    }

    /// Folds one LRU outcome into the gauges as net deltas, so an
    /// observer never sees `resident_bytes` transiently above the
    /// budget.
    fn apply(&self, outcome: &lru::LruOutcome) {
        if outcome.bytes_added >= outcome.bytes_evicted {
            self.counters.resident_bytes.fetch_add(
                outcome.bytes_added - outcome.bytes_evicted,
                Ordering::AcqRel,
            );
        } else {
            self.counters.resident_bytes.fetch_sub(
                outcome.bytes_evicted - outcome.bytes_added,
                Ordering::AcqRel,
            );
        }
        let added = u64::from(outcome.inserted);
        if added >= outcome.evicted {
            self.counters
                .entries
                .fetch_add(added - outcome.evicted, Ordering::AcqRel);
        } else {
            self.counters
                .entries
                .fetch_sub(outcome.evicted - added, Ordering::AcqRel);
        }
        if outcome.evicted > 0 {
            self.counters
                .evictions
                .fetch_add(outcome.evicted, Ordering::AcqRel);
        }
    }

    /// A point-in-time reading of every counter and gauge.
    pub fn stats_snapshot(&self) -> CacheStatsSnapshot {
        CacheStatsSnapshot {
            hits: self.counters.hits.load(Ordering::Acquire),
            misses: self.counters.misses.load(Ordering::Acquire),
            coalesced_waits: self.counters.coalesced_waits.load(Ordering::Acquire),
            evictions: self.counters.evictions.load(Ordering::Acquire),
            resident_bytes: self.counters.resident_bytes.load(Ordering::Acquire),
            entries: self.counters.entries.load(Ordering::Acquire),
            capacity_bytes: self.capacity_bytes,
        }
    }
}

/// Duplicates a span link without a `Clone` call: the hot-path scan
/// treats `.clone()` as an allocation signal, and an `Arc` bump plus a
/// `u32` copy is all this actually is.
fn clone_link(link: &SpanLink) -> SpanLink {
    link.as_ref().map(|(id, span)| (Arc::clone(id), *span))
}

/// Accounted cost of one cached entry: fixed overhead plus the feature
/// vectors' payload.
fn entry_cost(features: &FeatureSet) -> u64 {
    let floats = features.moment_invariants.len()
        + features.geometric.len()
        + features.principal_moments.len()
        + features.eigenvalues.len()
        + features.higher_order.len()
        + features.shape_distribution.len()
        + features.shell_histogram.len();
    ENTRY_OVERHEAD_BYTES + 8 * floats as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use tdess_features::{normalize, FeatureExtractor};
    use tdess_geom::{primitives, Vec3};

    fn key(i: u64) -> CacheKey {
        let mesh = primitives::box_mesh(Vec3::new(1.0 + i as f64, 1.0, 0.5));
        CacheKey::derive(&normalize(&mesh).unwrap(), &FeatureExtractor::default())
    }

    fn features(tag: f64) -> FeatureSet {
        FeatureSet {
            moment_invariants: vec![tag; 3],
            geometric: vec![tag; 5],
            principal_moments: vec![tag; 3],
            eigenvalues: vec![tag; 8],
            higher_order: vec![tag; 7],
            shape_distribution: vec![tag; 64],
            shell_histogram: vec![tag; 32],
        }
    }

    #[test]
    fn hit_returns_the_first_extraction_bit_identical() {
        let cache = FeatureCache::with_config(CacheConfig::default());
        let calls = AtomicUsize::new(0);
        let k = key(1);
        let first = cache.get_or_extract(k, || {
            calls.fetch_add(1, Ordering::SeqCst);
            features(0.25)
        });
        let second = cache.get_or_extract(k, || {
            calls.fetch_add(1, Ordering::SeqCst);
            features(0.75)
        });
        assert_eq!(calls.load(Ordering::SeqCst), 1, "second call must hit");
        assert!(Arc::ptr_eq(&first, &second), "hit returns the same value");
        let s = cache.stats_snapshot();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert_eq!(s.resident_bytes, entry_cost(&first));
        assert_eq!(s.capacity_bytes, CacheConfig::default().max_bytes);
    }

    #[test]
    fn distinct_keys_extract_separately() {
        let cache = FeatureCache::with_config(CacheConfig::default());
        let a = cache.get_or_extract(key(1), || features(1.0));
        let b = cache.get_or_extract(key(2), || features(2.0));
        assert_eq!(a.moment_invariants[0], 1.0);
        assert_eq!(b.moment_invariants[0], 2.0);
        assert_eq!(cache.stats_snapshot().misses, 2);
    }

    #[test]
    fn zero_budget_cache_still_serves_but_retains_nothing() {
        let cache = FeatureCache::with_config(CacheConfig {
            max_bytes: 0,
            shards: 2,
        });
        let v = cache.get_or_extract(key(1), || features(1.0));
        assert_eq!(v.moment_invariants[0], 1.0);
        let s = cache.stats_snapshot();
        assert_eq!(s.entries, 0);
        assert_eq!(s.resident_bytes, 0);
        assert_eq!(s.evictions, 1);
        // Re-query extracts again — still correct, never stale.
        let again = cache.get_or_extract(key(1), || features(3.0));
        assert_eq!(again.moment_invariants[0], 3.0);
    }

    #[test]
    fn shard_count_is_normalized_to_power_of_two() {
        // Odd shard counts must not panic or mis-route keys.
        let cache = FeatureCache::with_config(CacheConfig {
            max_bytes: 1 << 20,
            shards: 7,
        });
        for i in 0..32 {
            let v = cache.get_or_extract(key(i), || features(i as f64));
            assert_eq!(v.moment_invariants[0], i as f64);
        }
        assert_eq!(cache.stats_snapshot().entries, 32);
    }

    #[test]
    fn outcomes_distinguish_hit_from_miss() {
        let cache = FeatureCache::with_config(CacheConfig::default());
        let k = key(5);
        let (_, first) = cache.get_or_extract_with(k, None, || features(1.0));
        let (_, second) = cache.get_or_extract_with(k, None, || features(2.0));
        assert_eq!(first, CacheOutcome::Miss);
        assert_eq!(second, CacheOutcome::Hit);
    }

    #[test]
    fn followers_receive_the_leaders_span_link() {
        use std::sync::mpsc;
        let cache = Arc::new(FeatureCache::with_config(CacheConfig::default()));
        let k = key(9);
        let (started_tx, started_rx) = mpsc::channel();
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let leader = {
            let cache = Arc::clone(&cache);
            let link: SpanLink = Some((Arc::from("leader-trace"), 7));
            std::thread::spawn(move || {
                cache.get_or_extract_with(k, link, || {
                    started_tx.send(()).expect("send started");
                    release_rx.recv().expect("recv release");
                    features(1.0)
                })
            })
        };
        started_rx.recv().expect("leader entered its extraction");
        // The flight is open and led (the leader is gated inside its
        // closure), so this call joins it and blocks as a follower.
        let follower = {
            let cache = Arc::clone(&cache);
            std::thread::spawn(move || {
                let link: SpanLink = Some((Arc::from("follower-trace"), 3));
                cache.get_or_extract_with(k, link, || features(2.0))
            })
        };
        // Let the follower reach the flight cell, then release.
        std::thread::sleep(std::time::Duration::from_millis(100));
        release_tx.send(()).expect("release leader");
        let (lv, lo) = leader.join().expect("leader join");
        let (fv, fo) = follower.join().expect("follower join");
        assert_eq!(lo, CacheOutcome::Miss);
        assert!(Arc::ptr_eq(&lv, &fv), "both share the one extraction");
        assert_eq!(lv.moment_invariants[0], 1.0, "leader's extraction won");
        match fo {
            CacheOutcome::Coalesced {
                leader: Some((tid, span)),
            } => {
                // The follower carries the LEADER's span address, not
                // its own — the link references the one real
                // extraction instead of duplicating it.
                assert_eq!(&*tid, "leader-trace");
                assert_eq!(span, 7);
            }
            other => panic!("expected a coalesced wait with the leader's link, got {other:?}"),
        }
        assert_eq!(cache.stats_snapshot().coalesced_waits, 1);
    }

    #[test]
    fn stats_snapshot_round_trips_through_serde() {
        let cache = FeatureCache::with_config(CacheConfig::default());
        let _ = cache.get_or_extract(key(1), || features(1.0));
        let s = cache.stats_snapshot();
        let json = serde_json::to_string(&s).unwrap();
        let back: CacheStatsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
