//! Canonical content keys for extraction results.
//!
//! A cache key must satisfy two contracts at once:
//!
//! * **recall** — the same engineering part, re-exported by a
//!   different tool (reordered float noise, a rigid motion, a raw
//!   translation) should land on the same key, so near-duplicate
//!   queries skip the pipeline;
//! * **correctness** — two inputs whose extracted feature vectors
//!   differ beyond float noise must never share a key.
//!
//! The key is therefore derived from the *normalized* model (the
//! paper's §3.1 canonical pose: centroid at the origin, unit volume,
//! principal axes ordered and sign-fixed), with every coordinate
//! quantized to a fixed grid so last-bit float noise collides. Pose is
//! the only thing normalization may quotient out of the key: the
//! extracted geometric parameters include the surface-to-volume ratio,
//! the normalization scale, and the raw volume, none of which are
//! scale-invariant — so the normalization *scale* is folded back into
//! the key (quantized in log space, making relative float noise
//! collide). Two copies of one part at different absolute sizes get
//! different keys, exactly because their feature vectors differ.
//!
//! One caveat keeps the contract honest: canonicalization is only
//! unique when the model's principal axes and reflection signs are
//! well determined. Mirror- or rotation-symmetric parts (a plain box,
//! an unwarped torus) have zero odd moments or repeated eigenvalues,
//! so two rigid copies may legally canonicalize into different
//! symmetry-equivalent poses and land on different keys. That is a
//! *miss*, never a wrong hit — the dominant workload (bit-identical
//! re-queries, which always collide) is unaffected, and asymmetric
//! engineering parts get the full rigid-motion invariance.
//!
//! On top of the geometry the key folds in every extraction-config
//! parameter ([`FeatureExtractor`]'s voxel resolution and spectrum
//! dimension) and [`PIPELINE_VERSION`], so a config change or a
//! pipeline algorithm change can never serve stale vectors — it simply
//! misses.
//!
//! Hashing uses the same safe-Rust multiply–rotate lane construction
//! as `tdess-core`'s snapshot `checksum64`, run as two independently
//! keyed four-lane states to produce 128 bits; at 128 bits, accidental
//! collision over any realistic corpus is negligible (~2⁻¹²⁸ per
//! pair).

use tdess_features::{FeatureExtractor, NormalizedModel};
use tdess_geom::TriMesh;

/// Version of the extraction pipeline folded into every cache key.
///
/// **Bump this whenever any extraction stage changes its output** —
/// voxelization, thinning, graph construction, spectrum, any feature
/// vector, or the normalization itself. Old cached entries then miss
/// instead of serving vectors the current pipeline would not produce.
pub const PIPELINE_VERSION: u32 = 1;

/// Coordinate quantum: canonical-mesh coordinates (unit-volume models,
/// extents of order one) are rounded to steps of 2⁻¹² ≈ 2.4·10⁻⁴
/// before hashing. The width is chosen to sit between two scales:
/// exporter/normalization float noise reaches canonical coordinates at
/// ≲10⁻⁸, so the chance that any coordinate straddles a rounding
/// boundary is a few parts in 10⁵ per mesh — re-exports collide; while
/// the extracted features cannot resolve geometry differences anywhere
/// near the quantum (one voxel cell at the default resolution 48 is
/// ~2·10⁻² in canonical units, two orders coarser), so two meshes that
/// quantize identically also extract identically to within the
/// pipeline's own discretization.
const QUANT_STEPS: f64 = (1u64 << 12) as f64;

/// A 128-bit content key for one (canonical mesh, extraction config,
/// pipeline version) triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CacheKey {
    hi: u64,
    lo: u64,
}

impl CacheKey {
    /// Derives the key for a normalized model under `extractor`'s
    /// configuration and the current [`PIPELINE_VERSION`].
    pub fn derive(normalized: &NormalizedModel, extractor: &FeatureExtractor) -> CacheKey {
        Self::derive_versioned(normalized, extractor, PIPELINE_VERSION)
    }

    /// [`CacheKey::derive`] with an explicit pipeline version (exposed
    /// so tests can prove that a version bump changes the key).
    pub fn derive_versioned(
        normalized: &NormalizedModel,
        extractor: &FeatureExtractor,
        version: u32,
    ) -> CacheKey {
        let mut h = KeyHasher::new();
        h.word(u64::from(version));
        h.word(extractor.voxel_resolution as u64);
        h.word(extractor.spectrum_dim as u64);
        // The normalization scale in log space: relative noise in the
        // original model's absolute size collides, a 2x-scaled copy
        // (whose S/V, scale, and volume features differ) does not.
        h.word(quantize(normalized.scale.ln()) as u64);
        hash_mesh(&mut h, &normalized.mesh);
        let (hi, lo) = h.finish128();
        CacheKey { hi, lo }
    }

    /// The shard index for this key among `shards` shards
    /// (power of two).
    pub(crate) fn shard(&self, shards: usize) -> usize {
        debug_assert!(shards.is_power_of_two());
        (self.lo as usize) & (shards - 1)
    }
}

/// Rounds a canonical-space coordinate onto the quantization grid.
fn quantize(v: f64) -> i64 {
    (v * QUANT_STEPS).round() as i64
}

/// Absorbs the quantized canonical mesh: vertex and triangle counts,
/// every vertex coordinate on the quantization grid, every triangle's
/// vertex indices. Vertex order and winding participate — the key
/// addresses content as exported, not a graph-isomorphism class.
fn hash_mesh(h: &mut KeyHasher, mesh: &TriMesh) {
    h.word(mesh.vertices.len() as u64);
    h.word(mesh.triangles.len() as u64);
    for v in &mesh.vertices {
        h.word(quantize(v.x) as u64);
        h.word(quantize(v.y) as u64);
        h.word(quantize(v.z) as u64);
    }
    for t in &mesh.triangles {
        h.word(u64::from(t[0]) | (u64::from(t[1]) << 32));
        h.word(u64::from(t[2]));
    }
}

/// Per-lane absorb step: xor, multiply by an odd constant, rotate —
/// a bijection on `u64` for fixed key, the construction proven out by
/// `tdess-core::checksum64`.
fn absorb_word(acc: u64, w: u64, k: u64) -> u64 {
    (acc ^ w).wrapping_mul(k).rotate_left(29)
}

/// Lane keys of the first four-lane state (the `checksum64` set).
const KEYS_A: [u64; 4] = [
    0x9E37_79B9_7F4A_7C15,
    0xC2B2_AE3D_27D4_EB4F,
    0x1656_67B1_9E37_79F9,
    0x27D4_EB2F_1656_67C5,
];

/// Lane keys of the second, independently keyed state.
const KEYS_B: [u64; 4] = [
    0xA076_1D64_78BD_642F,
    0xE703_7ED1_A0B4_28DB,
    0x8EBC_6AF0_9C88_C6E3,
    0x5897_89E5_0417_1BCD,
];

/// Word-oriented two-state hasher producing 128 bits. Each input word
/// is absorbed into one lane of each state (round-robin), so the two
/// 64-bit halves are computed over the same stream under independent
/// keys and initial values.
struct KeyHasher {
    a: [u64; 4],
    b: [u64; 4],
    lane: usize,
    len: u64,
}

impl KeyHasher {
    fn new() -> KeyHasher {
        KeyHasher {
            a: [
                0x243F_6A88_85A3_08D3,
                0x1319_8A2E_0370_7344,
                0xA409_3822_299F_31D0,
                0x082E_FA98_EC4E_6C89,
            ],
            b: [
                0x4528_21E6_38D0_1377,
                0xBE54_66CF_34E9_0C6C,
                0xC0AC_29B7_C97C_50DD,
                0x3F84_D5B5_B547_0917,
            ],
            lane: 0,
            len: 0,
        }
    }

    fn word(&mut self, w: u64) {
        let lane = self.lane;
        self.a[lane] = absorb_word(self.a[lane], w, KEYS_A[lane]);
        self.b[lane] = absorb_word(self.b[lane], w, KEYS_B[lane]);
        self.lane = (lane + 1) & 3;
        self.len += 1;
    }

    fn finish128(self) -> (u64, u64) {
        (
            finish_state(&self.a, self.len),
            finish_state(&self.b, self.len),
        )
    }
}

/// Merges one state's lanes and avalanches (splitmix64 finalizer),
/// with the word count folded in so padded tails differ.
fn finish_state(acc: &[u64; 4], len: u64) -> u64 {
    let mut h = acc[0].rotate_left(1)
        ^ acc[1].rotate_left(7)
        ^ acc[2].rotate_left(12)
        ^ acc[3].rotate_left(18);
    h ^= len;
    h ^= h >> 30;
    h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^= h >> 31;
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdess_features::normalize;
    use tdess_geom::{primitives, Mat3, Vec3};

    fn extractor() -> FeatureExtractor {
        FeatureExtractor {
            voxel_resolution: 32,
            ..Default::default()
        }
    }

    fn key_of(mesh: &TriMesh, ex: &FeatureExtractor) -> CacheKey {
        CacheKey::derive(&normalize(mesh).unwrap(), ex)
    }

    /// A nonlinear warp that breaks mirror/central symmetry and
    /// eigenvalue degeneracy, so the canonical pose is uniquely
    /// determined and rigid-motion invariance is exact (symmetric
    /// shapes may legally canonicalize into symmetry-equivalent poses
    /// — see module docs).
    fn asymmetric(mut mesh: TriMesh) -> TriMesh {
        mesh.map_vertices(|v| {
            Vec3::new(
                v.x + 0.15 * v.y * v.y,
                v.y + 0.07 * v.z * v.z * v.z + 0.03 * v.x,
                v.z + 0.11 * v.x * v.x,
            )
        });
        mesh
    }

    #[test]
    fn identical_meshes_share_a_key() {
        let mesh = primitives::box_mesh(Vec3::new(2.0, 1.0, 0.5));
        assert_eq!(
            key_of(&mesh, &extractor()),
            key_of(&mesh.clone(), &extractor())
        );
    }

    #[test]
    fn rigid_motion_collides_scaling_does_not() {
        let ex = extractor();
        // A warped torus: enough vertices that the odd moments are
        // decisively nonzero (a warped 8-vertex box still flips).
        let base = asymmetric(primitives::torus(1.5, 0.4, 24, 12));
        let k0 = key_of(&base, &ex);

        // A rigidly moved copy normalizes to the same canonical mesh;
        // every extracted feature agrees up to float noise, so the key
        // must collide.
        let mut moved = base.clone();
        moved.rotate(&Mat3::rotation_axis_angle(Vec3::new(0.3, 1.0, -0.2), 1.1));
        moved.translate(Vec3::new(5.0, -2.0, 3.0));
        assert_eq!(
            key_of(&moved, &ex),
            k0,
            "rigid motion must not change the key"
        );

        // A uniformly scaled copy has different geometric parameters
        // (S/V, scale, volume) — the key must differ.
        let mut scaled = base.clone();
        scaled.scale_uniform(2.0);
        assert_ne!(
            key_of(&scaled, &ex),
            k0,
            "scaling changes features, so the key"
        );
    }

    #[test]
    fn exporter_noise_collides() {
        let ex = extractor();
        let base = asymmetric(primitives::torus(1.5, 0.4, 24, 12));
        let k0 = key_of(&base, &ex);
        // Per-vertex relative noise at 1e-10, the level of a float
        // round trip through a different exporter.
        let mut noisy = base.clone();
        noisy.map_vertices(|v| Vec3::new(v.x * (1.0 + 1e-10), v.y * (1.0 - 1e-10), v.z + 1e-10));
        assert_eq!(key_of(&noisy, &ex), k0, "float noise must quantize away");
    }

    #[test]
    fn symmetric_shape_repeats_are_stable() {
        // Symmetric parts may miss across rigid motions (ambiguous
        // canonical pose), but bit-identical re-queries — the dominant
        // cached workload — must always collide.
        let ex = extractor();
        for mesh in [
            primitives::box_mesh(Vec3::new(2.0, 1.0, 0.5)),
            primitives::torus(1.5, 0.4, 24, 12),
        ] {
            assert_eq!(key_of(&mesh, &ex), key_of(&mesh.clone(), &ex));
        }
    }

    #[test]
    fn different_shapes_differ() {
        let ex = extractor();
        assert_ne!(
            key_of(&primitives::box_mesh(Vec3::new(2.0, 1.0, 0.5)), &ex),
            key_of(&primitives::cylinder(0.6, 2.5, 24), &ex)
        );
    }

    #[test]
    fn every_config_parameter_changes_the_key() {
        let mesh = primitives::box_mesh(Vec3::new(2.0, 1.0, 0.5));
        let base = FeatureExtractor {
            voxel_resolution: 32,
            spectrum_dim: 8,
        };
        let k0 = key_of(&mesh, &base);
        let res = FeatureExtractor {
            voxel_resolution: 48,
            ..base
        };
        assert_ne!(
            key_of(&mesh, &res),
            k0,
            "voxel resolution must be in the key"
        );
        let dim = FeatureExtractor {
            spectrum_dim: 12,
            ..base
        };
        assert_ne!(key_of(&mesh, &dim), k0, "spectrum dim must be in the key");
    }

    #[test]
    fn pipeline_version_changes_the_key() {
        let mesh = primitives::box_mesh(Vec3::new(2.0, 1.0, 0.5));
        let nm = normalize(&mesh).unwrap();
        let ex = extractor();
        let k1 = CacheKey::derive_versioned(&nm, &ex, 1);
        let k2 = CacheKey::derive_versioned(&nm, &ex, 2);
        assert_ne!(k1, k2, "a pipeline version bump must miss");
        assert_eq!(
            CacheKey::derive(&nm, &ex),
            CacheKey::derive_versioned(&nm, &ex, PIPELINE_VERSION)
        );
    }

    #[test]
    fn topology_participates() {
        let ex = extractor();
        let base = primitives::box_mesh(Vec3::new(2.0, 1.0, 0.5));
        let nm = normalize(&base).unwrap();
        let k0 = CacheKey::derive(&nm, &ex);
        // Same vertex set, one triangle's winding flipped: content
        // differs as exported, so the key differs.
        let mut rewound = nm.clone();
        if let Some(t) = rewound.mesh.triangles.first_mut() {
            t.swap(0, 1);
        }
        assert_ne!(CacheKey::derive(&rewound, &ex), k0);
    }

    #[test]
    fn shard_is_stable_and_in_range() {
        let mesh = primitives::box_mesh(Vec3::new(2.0, 1.0, 0.5));
        let k = key_of(&mesh, &extractor());
        assert_eq!(k.shard(16), k.shard(16));
        assert!(k.shard(16) < 16);
        assert!(k.shard(1) == 0);
    }
}
