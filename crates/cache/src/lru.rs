//! Sharded, byte-budgeted LRU storage for extraction results.
//!
//! Entries are spread across `shards` independent shards by key bits;
//! each shard is its own `parking_lot::RwLock` around a hash map plus
//! an intrusive doubly-linked recency list over a slab, so a lookup
//! touches exactly one shard lock for a few pointer updates and never
//! serializes behind another shard's traffic (or behind an extraction,
//! which runs entirely outside these locks).
//!
//! The byte budget is enforced per shard (`budget / shards` each): an
//! admit evicts from that shard's cold tail until the shard is inside
//! its slice of the budget, so the cache as a whole never holds more
//! than `budget` bytes of accounted cost. Cost accounting is exact —
//! every byte added by an admit is subtracted when its entry is
//! evicted — and each operation reports its net effect to the caller
//! in one [`LruOutcome`], so the global gauges can be updated with a
//! single atomic delta and an observer never sees a transiently
//! over-budget reading.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;
use tdess_features::FeatureSet;

use crate::key::CacheKey;

/// Slab index meaning "no node".
const NIL: usize = usize::MAX;

/// One resident entry. The value is `None` only while the slot sits on
/// the free list.
struct Node {
    key: CacheKey,
    value: Option<Arc<FeatureSet>>,
    cost: u64,
    prev: usize,
    next: usize,
}

/// One shard: key → slab index, plus the recency list (head = MRU).
struct Shard {
    map: HashMap<CacheKey, usize>,
    slab: Vec<Node>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    bytes: u64,
}

impl Shard {
    fn empty() -> Shard {
        Shard {
            map: HashMap::default(),
            slab: Vec::default(),
            free: Vec::default(),
            head: NIL,
            tail: NIL,
            bytes: 0,
        }
    }

    /// Unlinks node `i` from the recency list (it stays in the slab).
    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slab[i].prev, self.slab[i].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.slab[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slab[next].prev = prev;
        }
    }

    /// Links node `i` at the head (most recently used).
    fn link_front(&mut self, i: usize) {
        self.slab[i].prev = NIL;
        self.slab[i].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    /// Removes the least-recently-used entry, returning its cost.
    fn evict_tail(&mut self) -> u64 {
        let i = self.tail;
        if i == NIL {
            return 0;
        }
        self.unlink(i);
        let victim = self.slab[i].key;
        // `retain` rather than `remove`: one entry per key, and the
        // shard map is small; eviction runs on the miss path where an
        // extraction already dominates by orders of magnitude.
        self.map.retain(|k, _| *k != victim);
        let cost = self.slab[i].cost;
        self.bytes -= cost;
        self.slab[i].value = None;
        self.free.push(i);
        cost
    }
}

/// Net effect of one LRU operation, for the caller's atomic gauges.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct LruOutcome {
    /// Whether a new entry was created (false when the key was already
    /// resident and only its recency was refreshed).
    pub inserted: bool,
    /// Entries evicted to make room.
    pub evicted: u64,
    /// Bytes of accounted cost added by this admit.
    pub bytes_added: u64,
    /// Bytes released by evictions.
    pub bytes_evicted: u64,
}

/// The sharded store. All methods are `&self`; interior mutability is
/// per-shard.
pub(crate) struct ShardedLru {
    shards: Vec<RwLock<Shard>>,
    shard_budget: u64,
}

impl ShardedLru {
    /// `shards` must be a power of two; each shard gets an equal slice
    /// of `budget_bytes`.
    pub(crate) fn with_budget(budget_bytes: u64, shards: usize) -> ShardedLru {
        debug_assert!(shards.is_power_of_two());
        let mut v = Vec::with_capacity(shards.max(1));
        for _ in 0..shards {
            v.push(RwLock::new(Shard::empty()));
        }
        ShardedLru {
            shards: v,
            shard_budget: budget_bytes / shards.max(1) as u64,
        }
    }

    fn shard(&self, key: &CacheKey) -> &RwLock<Shard> {
        &self.shards[key.shard(self.shards.len())]
    }

    /// Looks `key` up and, on a hit, bumps it to most-recently-used.
    pub(crate) fn lookup(&self, key: &CacheKey) -> Option<Arc<FeatureSet>> {
        let mut shard = self.shard(key).write();
        let &i = shard.map.get(key)?;
        if shard.head != i {
            shard.unlink(i);
            shard.link_front(i);
        }
        shard.slab[i].value.as_ref().map(Arc::clone)
    }

    /// Admits `value` at most-recently-used with the given accounted
    /// cost, then evicts from the cold tail until the shard is inside
    /// its budget slice. Admitting a key that is already resident only
    /// refreshes its recency. The new entry itself is evicted last —
    /// if it alone exceeds the shard budget, the shard ends up empty
    /// (callers still hold the value; it is just not retained).
    pub(crate) fn admit(&self, key: CacheKey, value: Arc<FeatureSet>, cost: u64) -> LruOutcome {
        let mut out = LruOutcome::default();
        let mut shard = self.shard(&key).write();
        if let Some(&i) = shard.map.get(&key) {
            // A concurrent flight for the same key already landed (or
            // the entry survived since our lookup); keep the resident
            // value, just refresh recency.
            if shard.head != i {
                shard.unlink(i);
                shard.link_front(i);
            }
            return out;
        }
        let node = Node {
            key,
            value: Some(value),
            cost,
            prev: NIL,
            next: NIL,
        };
        let i = match shard.free.pop() {
            Some(slot) => {
                shard.slab[slot] = node;
                slot
            }
            None => {
                shard.slab.push(node);
                shard.slab.len() - 1
            }
        };
        shard.map.entry(key).or_insert(i);
        shard.link_front(i);
        shard.bytes += cost;
        out.inserted = true;
        out.bytes_added = cost;
        while shard.bytes > self.shard_budget && shard.head != NIL {
            let released = shard.evict_tail();
            out.evicted += 1;
            out.bytes_evicted += released;
        }
        out
    }

    /// Number of resident entries across all shards.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().map.len()).sum()
    }

    /// Accounted resident bytes across all shards.
    #[cfg(test)]
    pub(crate) fn bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.read().bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fs(floats: usize) -> Arc<FeatureSet> {
        Arc::new(FeatureSet {
            moment_invariants: vec![0.5; floats],
            geometric: Vec::new(),
            principal_moments: Vec::new(),
            eigenvalues: Vec::new(),
            higher_order: Vec::new(),
            shape_distribution: Vec::new(),
            shell_histogram: Vec::new(),
        })
    }

    fn key(i: u64) -> CacheKey {
        // Real key derivation on distinct boxes gives distinct,
        // deterministic keys.
        use tdess_features::{normalize, FeatureExtractor};
        use tdess_geom::{primitives, Vec3};
        let mesh = primitives::box_mesh(Vec3::new(1.0 + i as f64, 1.0, 0.5));
        CacheKey::derive(&normalize(&mesh).unwrap(), &FeatureExtractor::default())
    }

    #[test]
    fn lookup_miss_then_hit() {
        let lru = ShardedLru::with_budget(1 << 20, 4);
        let k = key(1);
        assert!(lru.lookup(&k).is_none());
        lru.admit(k, fs(4), 100);
        let v = lru.lookup(&k).unwrap();
        assert_eq!(v.moment_invariants.len(), 4);
    }

    #[test]
    fn eviction_is_lru_ordered_and_budgeted() {
        // Single shard, budget 300: three 100-cost entries fit, the
        // fourth evicts the least recently used.
        let lru = ShardedLru::with_budget(300, 1);
        let (a, b, c, d) = (key(1), key(2), key(3), key(4));
        lru.admit(a, fs(1), 100);
        lru.admit(b, fs(1), 100);
        lru.admit(c, fs(1), 100);
        assert_eq!(lru.len(), 3);
        // Touch `a` so `b` is now coldest.
        assert!(lru.lookup(&a).is_some());
        let out = lru.admit(d, fs(1), 100);
        assert!(out.inserted);
        assert_eq!(out.evicted, 1);
        assert_eq!(out.bytes_evicted, 100);
        assert!(lru.lookup(&b).is_none(), "coldest entry must go first");
        assert!(lru.lookup(&a).is_some());
        assert!(lru.lookup(&c).is_some());
        assert!(lru.lookup(&d).is_some());
        assert!(lru.bytes() <= 300);
    }

    #[test]
    fn oversized_entry_is_not_retained() {
        let lru = ShardedLru::with_budget(100, 1);
        let k = key(1);
        let out = lru.admit(k, fs(1), 1000);
        assert!(out.inserted);
        assert_eq!(out.evicted, 1, "the entry itself is evicted");
        assert_eq!(out.bytes_added, 1000);
        assert_eq!(out.bytes_evicted, 1000);
        assert_eq!(lru.len(), 0);
        assert_eq!(lru.bytes(), 0);
    }

    #[test]
    fn duplicate_admit_refreshes_without_double_accounting() {
        let lru = ShardedLru::with_budget(1 << 20, 1);
        let k = key(1);
        lru.admit(k, fs(1), 100);
        let out = lru.admit(k, fs(2), 100);
        assert!(!out.inserted);
        assert_eq!(out.bytes_added, 0);
        assert_eq!(lru.bytes(), 100);
        assert_eq!(lru.len(), 1);
        // The first value wins (flights guarantee both are identical
        // in real use).
        assert_eq!(lru.lookup(&k).unwrap().moment_invariants.len(), 1);
    }

    #[test]
    fn slab_slots_are_recycled() {
        let lru = ShardedLru::with_budget(250, 1);
        for i in 0..50 {
            lru.admit(key(i), fs(1), 100);
        }
        assert!(lru.len() <= 2);
        assert!(lru.bytes() <= 250);
        let slab_len = lru.shards[0].read().slab.len();
        assert!(slab_len <= 3, "slab grew to {slab_len} despite recycling");
    }
}
