//! Singleflight request coalescing.
//!
//! When N requests miss on the same key at the same moment, running N
//! identical extractions multiplies the worst case by the herd size.
//! The flight table turns that around: the first thread to miss opens
//! a *flight* (a shared [`OnceLock`] cell), every later thread joins
//! it, and `OnceLock::get_or_init` guarantees exactly one closure run
//! — the leader extracts once, the followers block until the value is
//! published and then share it. The thundering herd becomes a single
//! extraction plus N−1 cheap waits.
//!
//! ## Races closed here
//!
//! * **Miss → landed**: a thread can miss in the store, then lose the
//!   CPU while another flight for the same key completes, lands in the
//!   store, and retires. [`FlightMap::enter`] therefore re-checks the
//!   store *under the flight-table write lock*: retirement also takes
//!   that lock and only runs after the store admit, so a re-check that
//!   misses proves the value was not yet admitted and the returned
//!   cell is live.
//! * **Leader identification**: the leader is whichever thread's
//!   `get_or_init` closure actually ran (observed via a flag set
//!   inside the closure), not whichever created the cell — creation
//!   and initialization can interleave across threads.
//!
//! Lock order is strictly flight table → shard lock (inside the store
//! re-check); nothing takes them in the other order, and the
//! extraction itself runs outside both.

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

use parking_lot::RwLock;
use tdess_features::FeatureSet;

use crate::key::CacheKey;
use crate::lru::ShardedLru;
use crate::SpanLink;

/// What a flight leader publishes through the shared cell: the
/// extracted features plus the leader's span address, so followers
/// can link (rather than duplicate) the one extraction that actually
/// ran into their own request traces.
pub(crate) struct Landed {
    pub(crate) value: Arc<FeatureSet>,
    pub(crate) leader: SpanLink,
}

/// The shared cell one coalesced extraction publishes through.
pub(crate) type FlightCell = Arc<OnceLock<Landed>>;

/// What [`FlightMap::enter`] found for a key.
pub(crate) enum Joined {
    /// The value landed in the store between the caller's miss and the
    /// re-check — no extraction needed.
    Resident(Arc<FeatureSet>),
    /// A live flight: call `get_or_init` on it; exactly one caller's
    /// closure will run.
    Flight(FlightCell),
}

/// Table of in-progress extractions, keyed by content key.
pub(crate) struct FlightMap {
    flights: RwLock<HashMap<CacheKey, FlightCell>>,
}

impl FlightMap {
    pub(crate) fn empty() -> FlightMap {
        FlightMap {
            flights: RwLock::new(HashMap::default()),
        }
    }

    /// Joins (or opens) the flight for `key`, re-checking `store`
    /// under the table lock first (see module docs for why).
    pub(crate) fn enter(&self, key: &CacheKey, store: &ShardedLru) -> Joined {
        let mut flights = self.flights.write();
        if let Some(v) = store.lookup(key) {
            return Joined::Resident(v);
        }
        if let Some(cell) = flights.get(key) {
            return Joined::Flight(Arc::clone(cell));
        }
        Joined::Flight(Arc::clone(flights.entry(*key).or_default()))
    }

    /// Drops the flight for `key`. Called by the leader only, *after*
    /// the value is admitted to the store — so any thread that misses
    /// afterwards re-extracts from a fresh flight only if the entry
    /// was already evicted again.
    pub(crate) fn retire(&self, key: &CacheKey) {
        // `retain` rather than `remove`: the table only ever holds the
        // currently-in-flight keys (a handful), and `remove` would
        // alias unrelated workspace methods in the static hot-path
        // scan.
        self.flights.write().retain(|k, _| k != key);
    }

    /// Number of currently open flights.
    #[cfg(test)]
    pub(crate) fn open_flights(&self) -> usize {
        self.flights.read().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdess_features::{normalize, FeatureExtractor};
    use tdess_geom::{primitives, Vec3};

    fn key(i: u64) -> CacheKey {
        let mesh = primitives::box_mesh(Vec3::new(1.0 + i as f64, 1.0, 0.5));
        CacheKey::derive(&normalize(&mesh).unwrap(), &FeatureExtractor::default())
    }

    fn fs() -> Arc<FeatureSet> {
        Arc::new(FeatureSet {
            moment_invariants: vec![1.0],
            geometric: Vec::new(),
            principal_moments: Vec::new(),
            eigenvalues: Vec::new(),
            higher_order: Vec::new(),
            shape_distribution: Vec::new(),
            shell_histogram: Vec::new(),
        })
    }

    #[test]
    fn same_key_joins_same_flight() {
        let store = ShardedLru::with_budget(1 << 20, 4);
        let map = FlightMap::empty();
        let k = key(1);
        let (a, b) = match (map.enter(&k, &store), map.enter(&k, &store)) {
            (Joined::Flight(a), Joined::Flight(b)) => (a, b),
            _ => panic!("expected two flights"),
        };
        assert!(Arc::ptr_eq(&a, &b), "concurrent misses must share a cell");
        assert_eq!(map.open_flights(), 1);
    }

    #[test]
    fn resident_value_short_circuits() {
        let store = ShardedLru::with_budget(1 << 20, 4);
        let map = FlightMap::empty();
        let k = key(1);
        store.admit(k, fs(), 64);
        match map.enter(&k, &store) {
            Joined::Resident(v) => assert_eq!(v.moment_invariants, vec![1.0]),
            Joined::Flight(_) => panic!("resident entry must not open a flight"),
        }
        assert_eq!(map.open_flights(), 0);
    }

    #[test]
    fn retire_clears_only_the_given_key() {
        let store = ShardedLru::with_budget(1 << 20, 4);
        let map = FlightMap::empty();
        let (k1, k2) = (key(1), key(2));
        let _ = map.enter(&k1, &store);
        let _ = map.enter(&k2, &store);
        assert_eq!(map.open_flights(), 2);
        map.retire(&k1);
        assert_eq!(map.open_flights(), 1);
        match map.enter(&k2, &store) {
            Joined::Flight(_) => {}
            Joined::Resident(_) => panic!("k2 flight should still be open"),
        }
    }
}
