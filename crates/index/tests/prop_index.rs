//! Property tests: the R-tree must agree with the linear scan on every
//! query, for any point set and any fan-out configuration.

use proptest::prelude::*;

use tdess_index::{LinearScan, QueryStats, RTree, RTreeConfig, Rect};

fn arb_points(dim: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(-100.0f64..100.0, dim..=dim), 1..300)
}

fn build(dim: usize, pts: &[Vec<f64>], max_entries: usize) -> (RTree<usize>, LinearScan<usize>) {
    let mut t = RTree::new(
        dim,
        RTreeConfig {
            max_entries,
            min_entries: (max_entries / 2).max(1).min(max_entries / 2).max(1),
        },
    );
    let mut l = LinearScan::new(dim);
    for (i, p) in pts.iter().enumerate() {
        t.insert(p.clone(), i);
        l.insert(p.clone(), i);
    }
    (t, l)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn knn_matches_linear(pts in arb_points(3), qx in -120.0f64..120.0, qy in -120.0f64..120.0,
                          qz in -120.0f64..120.0, k in 1usize..20) {
        let (t, l) = build(3, &pts, 8);
        t.check_invariants().map_err(TestCaseError::fail)?;
        let q = [qx, qy, qz];
        let mut s1 = QueryStats::default();
        let mut s2 = QueryStats::default();
        let a = t.knn(&q, k, &mut s1);
        let b = l.knn(&q, k, &mut s2);
        prop_assert_eq!(a.len(), b.len());
        // Distances must match (payloads may differ on exact ties).
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x.2 - y.2).abs() < 1e-9, "knn distance {} vs {}", x.2, y.2);
        }
    }

    #[test]
    fn ball_query_matches_linear(pts in arb_points(4), r in 0.0f64..150.0) {
        let (t, l) = build(4, &pts, 12);
        let q = [0.0, 0.0, 0.0, 0.0];
        let mut s = QueryStats::default();
        let mut a: Vec<usize> = t.within_distance(&q, r, &mut s).iter().map(|e| *e.1).collect();
        let mut b: Vec<usize> = l.within_distance(&q, r, &mut s).iter().map(|e| *e.1).collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn range_query_matches_linear(pts in arb_points(2),
                                  x0 in -120.0f64..0.0, y0 in -120.0f64..0.0,
                                  w in 0.0f64..200.0, h in 0.0f64..200.0) {
        let (t, l) = build(2, &pts, 6);
        let rect = Rect::new(vec![x0, y0], vec![x0 + w, y0 + h]);
        let mut s = QueryStats::default();
        let mut a: Vec<usize> = t.range(&rect, &mut s).iter().map(|e| *e.1).collect();
        let mut b: Vec<usize> = l.range(&rect, &mut s).iter().map(|e| *e.1).collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn removal_preserves_agreement(pts in arb_points(3), seed in 0u64..1000) {
        let (mut t, mut l) = build(3, &pts, 8);
        // Remove roughly half the points, pseudo-randomly.
        let mut s = seed.wrapping_mul(0x2545F4914F6CDD1D).wrapping_add(1);
        for (i, p) in pts.iter().enumerate() {
            s ^= s << 13; s ^= s >> 7; s ^= s << 17;
            if s % 2 == 0 {
                let a = t.remove(p, |&x| x == i);
                let b = l.remove(p, |&x| x == i);
                prop_assert_eq!(a.is_some(), b.is_some());
            }
        }
        prop_assert_eq!(t.len(), l.len());
        t.check_invariants().map_err(TestCaseError::fail)?;
        let q = [1.0, 2.0, 3.0];
        let mut st = QueryStats::default();
        let a = t.knn(&q, 5, &mut st);
        let b = l.knn(&q, 5, &mut st);
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x.2 - y.2).abs() < 1e-9);
        }
    }

    /// On clustered data the R-tree must prune: kNN touches far fewer
    /// entries than the linear scan for large point sets.
    #[test]
    fn knn_prunes_on_clustered_data(seed in 0u64..100) {
        let n_clusters = 20usize;
        let per = 100usize;
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut rnd = || {
            s ^= s << 13; s ^= s >> 7; s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut t: RTree<usize> = RTree::with_dim(3);
        let mut id = 0usize;
        for c in 0..n_clusters {
            let cx = (c as f64) * 50.0;
            for _ in 0..per {
                t.insert(vec![cx + rnd(), rnd(), rnd()], id);
                id += 1;
            }
        }
        let mut stats = QueryStats::default();
        let got = t.knn(&[250.0, 0.5, 0.5], 10, &mut stats);
        prop_assert_eq!(got.len(), 10);
        // Pruning bound: far fewer entry checks than the 2000 points.
        prop_assert!(stats.entries_checked < 1200,
                     "checked {} entries of 2000", stats.entries_checked);
    }
}
