//! Instrumentation counters for index traversals.

use serde::{Deserialize, Serialize};

/// Counters accumulated during a query; used by the index-efficiency
/// experiment (E-IDX) to compare the R-tree against a linear scan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryStats {
    /// Tree nodes (inner + leaf) touched.
    pub nodes_visited: usize,
    /// Leaf nodes touched.
    pub leaves_visited: usize,
    /// Entries (child rectangles or points) examined.
    pub entries_checked: usize,
}

impl QueryStats {
    /// Adds another stats record into this one.
    pub fn merge(&mut self, other: &QueryStats) {
        self.nodes_visited += other.nodes_visited;
        self.leaves_visited += other.leaves_visited;
        self.entries_checked += other.entries_checked;
    }

    /// Total node accesses (the paper's index-cost measure): every
    /// inner or leaf node touched during traversal.
    pub fn node_accesses(&self) -> usize {
        self.nodes_visited
    }
}

impl std::fmt::Display for QueryStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} node accesses ({} leaves), {} entries checked",
            self.nodes_visited, self.leaves_visited, self.entries_checked
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates() {
        let mut a = QueryStats {
            nodes_visited: 1,
            leaves_visited: 2,
            entries_checked: 3,
        };
        let b = QueryStats {
            nodes_visited: 10,
            leaves_visited: 20,
            entries_checked: 30,
        };
        a.merge(&b);
        assert_eq!(
            a,
            QueryStats {
                nodes_visited: 11,
                leaves_visited: 22,
                entries_checked: 33
            }
        );
    }
}
