//! An R-tree over feature-space points (§2.3 of the paper).
//!
//! Classic Guttman R-tree with quadratic split, storing points at the
//! leaves. Supports range queries, similarity-ball queries, and
//! best-first k-nearest-neighbor search with MINDIST pruning
//! (Roussopoulos et al. / Hjaltason & Samet). All traversals are
//! instrumented with node-access counters so the index-efficiency
//! experiment can compare against a linear scan.

use serde::{Deserialize, Serialize};

use crate::rect::Rect;
use crate::stats::QueryStats;

/// Tree fan-out configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RTreeConfig {
    /// Maximum entries per node before a split (Guttman's `M`).
    pub max_entries: usize,
    /// Minimum entries per node (Guttman's `m ≤ M/2`).
    pub min_entries: usize,
}

impl Default for RTreeConfig {
    fn default() -> Self {
        RTreeConfig {
            max_entries: 16,
            min_entries: 6,
        }
    }
}

impl RTreeConfig {
    /// Checks `1 ≤ min_entries ≤ max_entries / 2` — the precondition
    /// `RTree::new` asserts, exposed as a fallible check so snapshot
    /// loaders can reject hostile configs instead of panicking later.
    pub fn validate(&self) -> Result<(), TreeError> {
        if self.min_entries >= 1 && self.min_entries * 2 <= self.max_entries {
            Ok(())
        } else {
            Err(TreeError::BadConfig {
                min_entries: self.min_entries,
                max_entries: self.max_entries,
            })
        }
    }
}

/// Why a deserialized or snapshot-loaded R-tree was rejected.
///
/// `RTree::new` enforces its preconditions with assertions because a
/// bad config in code is a programming error; data read from disk gets
/// this typed error instead, so a corrupt or hostile snapshot fails
/// loudly at load time rather than underflowing a split later.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeError {
    /// `min_entries`/`max_entries` violate `1 ≤ m ≤ M/2`.
    BadConfig {
        /// Stored minimum fan-out.
        min_entries: usize,
        /// Stored maximum fan-out.
        max_entries: usize,
    },
    /// Zero-dimensional tree.
    ZeroDim,
    /// A node's entry count is outside what the config permits.
    BadFanout {
        /// Entries found in the offending node.
        found: usize,
        /// Configured maximum.
        max: usize,
    },
    /// A stored point or bounding rect is malformed (wrong dimension,
    /// non-finite coordinate, inverted corners, or not covering its
    /// child).
    BadGeometry(String),
    /// Leaves at differing depths.
    UnevenDepth,
    /// Stored `len` disagrees with the number of leaf entries.
    LenMismatch {
        /// `len` recorded in the snapshot.
        stored: usize,
        /// Entries actually present.
        counted: usize,
    },
}

impl std::fmt::Display for TreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TreeError::BadConfig {
                min_entries,
                max_entries,
            } => write!(
                f,
                "invalid fan-out config: need 1 <= min_entries <= max_entries/2, \
                 got min {min_entries}, max {max_entries}"
            ),
            TreeError::ZeroDim => write!(f, "tree dimension must be positive"),
            TreeError::BadFanout { found, max } => {
                write!(f, "node fan-out {found} outside [1, {max}]")
            }
            TreeError::BadGeometry(why) => write!(f, "malformed geometry: {why}"),
            TreeError::UnevenDepth => write!(f, "leaves at differing depths"),
            TreeError::LenMismatch { stored, counted } => {
                write!(f, "stored len {stored} != counted entries {counted}")
            }
        }
    }
}

impl std::error::Error for TreeError {}

#[derive(Debug, Clone, Serialize, Deserialize)]
enum Node<T> {
    Leaf(Vec<(Vec<f64>, T)>),
    Inner(Vec<(Rect, Node<T>)>),
}

impl<T> Node<T> {
    fn len(&self) -> usize {
        match self {
            Node::Leaf(e) => e.len(),
            Node::Inner(e) => e.len(),
        }
    }

    fn bounding_rect(&self, dim: usize) -> Rect {
        let mut r: Option<Rect> = None;
        match self {
            Node::Leaf(entries) => {
                // Widen two corner vectors in place rather than
                // building a degenerate Rect per point — this runs
                // once per leaf during bulk loads and splits.
                if let Some(((p0, _), rest)) = entries.split_first() {
                    let mut rect = Rect::from_point(p0);
                    for (p, _) in rest {
                        for (d, &v) in p.iter().enumerate() {
                            rect.min[d] = rect.min[d].min(v);
                            rect.max[d] = rect.max[d].max(v);
                        }
                    }
                    r = Some(rect);
                }
            }
            Node::Inner(entries) => {
                for (er, _) in entries {
                    match &mut r {
                        Some(acc) => acc.union_in_place(er),
                        // hotpath: allow(hot-alloc) — the enclosing rect is the computed artifact
                        None => r = Some(er.clone()),
                    }
                }
            }
        }
        r.unwrap_or_else(|| Rect::new(vec![0.0; dim], vec![0.0; dim]))
    }
}

/// A point R-tree with payloads of type `T`.
///
/// ```
/// use tdess_index::{QueryStats, RTree};
///
/// let mut tree: RTree<&str> = RTree::with_dim(2);
/// tree.insert(vec![0.0, 0.0], "origin");
/// tree.insert(vec![5.0, 5.0], "far");
///
/// let mut stats = QueryStats::default();
/// let nearest = tree.knn(&[0.2, 0.1], 1, &mut stats);
/// assert_eq!(*nearest[0].1, "origin");
/// ```
#[derive(Debug, Clone, Serialize)]
pub struct RTree<T> {
    config: RTreeConfig,
    dim: usize,
    len: usize,
    root: Node<T>,
}

// Hand-written rather than derived: a derive would reconstruct the
// struct field-by-field and bypass every invariant `RTree::new` and
// `insert` enforce, so a corrupt or hostile snapshot (min_entries: 0,
// overflowing nodes, NaN coordinates) would load silently. Deserialize
// the fields, then run the same structural validation the binary
// snapshot loader uses.
impl<T: Deserialize> Deserialize for RTree<T> {
    fn from_value(v: &serde::Value) -> Result<RTree<T>, serde::Error> {
        let field = |name: &str| {
            v.get(name)
                .ok_or_else(|| serde::Error::custom(format!("RTree: missing field `{name}`")))
        };
        let tree = RTree {
            config: RTreeConfig::from_value(field("config")?)?,
            dim: usize::from_value(field("dim")?)?,
            len: usize::from_value(field("len")?)?,
            root: Node::<T>::from_value(field("root")?)?,
        };
        tree.validate()
            .map_err(|e| serde::Error::custom(format!("invalid R-tree: {e}")))?;
        Ok(tree)
    }
}

impl<T: Clone> RTree<T> {
    /// Creates an empty tree for `dim`-dimensional points.
    pub fn new(dim: usize, config: RTreeConfig) -> RTree<T> {
        assert!(dim > 0, "dimension must be positive");
        assert!(
            config.min_entries >= 1 && config.min_entries * 2 <= config.max_entries,
            "need 1 <= min_entries <= max_entries/2"
        );
        RTree {
            config,
            dim,
            len: 0,
            root: Node::Leaf(Vec::new()),
        }
    }

    /// Creates an empty tree with the default fan-out.
    pub fn with_dim(dim: usize) -> RTree<T> {
        RTree::new(dim, RTreeConfig::default())
    }

    /// Builds a tree from a batch of points in one pass using
    /// sort-tile-recursive (STR) packing (Leutenegger et al.).
    ///
    /// Points are partitioned into even slabs by their first
    /// coordinate (quantile selection, no full sort), and each slab
    /// recursively tiled on the remaining axes until a tile fits in
    /// one leaf; upper levels are packed the same way on node-rect
    /// centers. Tiles are split as evenly as possible, so every node
    /// holds at least `max_entries / 2 ≥ min_entries` entries and the
    /// result satisfies [`RTree::check_invariants`]. Compared to
    /// repeated [`RTree::insert`], the packed tree is built in near
    /// linear time instead of amortized quadratic-split work, and its
    /// full, low-overlap nodes need no more node accesses per query.
    ///
    /// Deterministic: the same entry sequence produces a byte-identical
    /// tree (keys compared with `total_cmp`, ties broken by position,
    /// so the tiling order is a pure function of the input sequence).
    pub fn bulk_load(dim: usize, config: RTreeConfig, entries: Vec<(Vec<f64>, T)>) -> RTree<T> {
        assert!(dim > 0, "dimension must be positive");
        assert!(
            config.min_entries >= 1 && config.min_entries * 2 <= config.max_entries,
            "need 1 <= min_entries <= max_entries/2"
        );
        // Per-point preconditions are a caller contract, checked in
        // debug builds: every call site (feature extraction, snapshot
        // decode) has already validated dimensionality and finiteness,
        // and an O(n·d) rescan here is measurable on the snapshot
        // load path at 10⁵ entries.
        for (p, _) in &entries {
            debug_assert_eq!(p.len(), dim, "point dimension mismatch");
            debug_assert!(p.iter().all(|v| v.is_finite()), "point must be finite");
        }
        let len = entries.len();
        let tile_axes = dim.min(STR_TILE_AXES);
        // Tile indices, not entries: the sorts move one machine word
        // per element instead of a (point, payload) tuple, and the
        // entries themselves move exactly once, into their leaf.
        let mut leaf_index_groups: Vec<Vec<usize>> = Vec::new();
        str_tile(
            (0..len).collect(),
            0,
            tile_axes,
            config.max_entries,
            &|&i: &usize, axis| entries[i].0[axis],
            &mut leaf_index_groups,
        );
        let mut slots: Vec<Option<(Vec<f64>, T)>> = entries.into_iter().map(Some).collect();
        let mut level: Vec<(Rect, Node<T>)> = leaf_index_groups
            .into_iter()
            .map(|g| {
                let node = Node::Leaf(
                    g.into_iter()
                        // lint: allow(unwrap) — str_tile emits every index exactly once
                        .map(|i| slots[i].take().expect("index tiled once"))
                        .collect(),
                );
                (node.bounding_rect(dim), node)
            })
            .collect();
        while level.len() > 1 {
            let mut groups: Vec<Vec<(Rect, Node<T>)>> = Vec::new();
            str_tile(
                level,
                0,
                tile_axes,
                config.max_entries,
                &|e: &(Rect, Node<T>), axis| e.0.center(axis),
                &mut groups,
            );
            level = groups
                .into_iter()
                .map(|g| {
                    let node = Node::Inner(g);
                    (node.bounding_rect(dim), node)
                })
                .collect();
        }
        let root = match level.pop() {
            Some((_, node)) => node,
            None => Node::Leaf(Vec::new()),
        };
        RTree {
            config,
            dim,
            len,
            root,
        }
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Point dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Height of the tree (1 for a single leaf).
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut node = &self.root;
        while let Node::Inner(entries) = node {
            h += 1;
            node = &entries[0].1;
        }
        h
    }

    /// Inserts a point with payload.
    pub fn insert(&mut self, point: Vec<f64>, payload: T) {
        assert_eq!(point.len(), self.dim, "point dimension mismatch");
        assert!(point.iter().all(|v| v.is_finite()), "point must be finite");
        self.len += 1;
        if let Some((r1, n1, r2, n2)) =
            Self::insert_rec(&mut self.root, point, payload, &self.config, self.dim)
        {
            // Root split: grow the tree.
            // hotpath: allow(hot-alloc) — allocates only when the root splits
            self.root = Node::Inner(vec![(r1, n1), (r2, n2)]);
        }
    }

    /// Recursive insert; returns `Some(split)` if the child split and
    /// the parent must absorb two nodes instead of one.
    fn insert_rec(
        node: &mut Node<T>,
        point: Vec<f64>,
        payload: T,
        config: &RTreeConfig,
        dim: usize,
    ) -> Option<(Rect, Node<T>, Rect, Node<T>)> {
        match node {
            Node::Leaf(entries) => {
                entries.push((point, payload));
                if entries.len() > config.max_entries {
                    let (a, b) = split_leaf(std::mem::take(entries), config);
                    let ra = a.bounding_rect(dim);
                    let rb = b.bounding_rect(dim);
                    debug_assert!(
                        ra.is_ordered() && rb.is_ordered(),
                        "leaf split produced an inverted bounding rect"
                    );
                    return Some((ra, a, rb, b));
                }
                None
            }
            Node::Inner(entries) => {
                // ChooseLeaf: least enlargement, ties by smallest volume.
                let pr = Rect::from_point(&point);
                let mut best = 0usize;
                let mut best_enl = f64::INFINITY;
                let mut best_vol = f64::INFINITY;
                for (i, (r, _)) in entries.iter().enumerate() {
                    let enl = r.enlargement(&pr);
                    let vol = r.volume();
                    if enl < best_enl || (enl == best_enl && vol < best_vol) {
                        best = i;
                        best_enl = enl;
                        best_vol = vol;
                    }
                }
                let split = Self::insert_rec(&mut entries[best].1, point, payload, config, dim);
                match split {
                    None => {
                        // Tighten the bounding rect.
                        entries[best].0 = entries[best].1.bounding_rect(dim);
                        None
                    }
                    Some((ra, a, rb, b)) => {
                        entries.remove(best);
                        entries.push((ra, a));
                        entries.push((rb, b));
                        if entries.len() > config.max_entries {
                            let (x, y) = split_inner(std::mem::take(entries), config);
                            let rx = x.bounding_rect(dim);
                            let ry = y.bounding_rect(dim);
                            debug_assert!(
                                rx.is_ordered() && ry.is_ordered(),
                                "inner split produced an inverted bounding rect"
                            );
                            return Some((rx, x, ry, y));
                        }
                        None
                    }
                }
            }
        }
    }

    /// Removes one point equal to `point` (exact comparison) whose
    /// payload satisfies `pred`. Returns the payload if found.
    /// Underflowed nodes are condensed by reinserting their entries.
    pub fn remove(&mut self, point: &[f64], pred: impl Fn(&T) -> bool) -> Option<T> {
        assert_eq!(point.len(), self.dim, "point dimension mismatch");
        // hotpath: allow(hot-alloc) — reinsertion buffer for underflowed nodes, filled only on removes
        let mut orphans: Vec<(Vec<f64>, T)> = Vec::new();
        let removed = Self::remove_rec(
            &mut self.root,
            point,
            &pred,
            self.config.min_entries,
            &mut orphans,
        )?;
        self.len -= 1;
        // Collapse a root with a single inner child.
        loop {
            let replace = match &mut self.root {
                Node::Inner(entries) if entries.len() == 1 => entries.pop().map(|(_, child)| child),
                _ => None,
            };
            match replace {
                Some(child) => self.root = child,
                None => break,
            }
        }
        let n_orphans = orphans.len();
        for (p, t) in orphans {
            self.insert(p, t);
        }
        self.len -= n_orphans; // inserts incremented; net unchanged
        Some(removed)
    }

    fn remove_rec(
        node: &mut Node<T>,
        point: &[f64],
        pred: &impl Fn(&T) -> bool,
        min_entries: usize,
        orphans: &mut Vec<(Vec<f64>, T)>,
    ) -> Option<T> {
        match node {
            Node::Leaf(entries) => {
                let pos = entries
                    .iter()
                    .position(|(p, t)| p.as_slice() == point && pred(t))?;
                let (_, t) = entries.remove(pos);
                Some(t)
            }
            Node::Inner(entries) => {
                let dim = point.len();
                for i in 0..entries.len() {
                    if !entries[i].0.contains_point(point) {
                        continue;
                    }
                    if let Some(t) =
                        Self::remove_rec(&mut entries[i].1, point, pred, min_entries, orphans)
                    {
                        if entries[i].1.len() < min_entries {
                            // Condense: orphan the whole child.
                            let (_, child) = entries.remove(i);
                            collect_entries(child, orphans);
                        } else {
                            entries[i].0 = entries[i].1.bounding_rect(dim);
                        }
                        return Some(t);
                    }
                }
                None
            }
        }
    }

    /// All points inside `rect` (boundary inclusive).
    pub fn range(&self, rect: &Rect, stats: &mut QueryStats) -> Vec<(&[f64], &T)> {
        let mut out = Vec::new();
        let mut stack = vec![&self.root];
        while let Some(node) = stack.pop() {
            stats.nodes_visited += 1;
            match node {
                Node::Leaf(entries) => {
                    stats.leaves_visited += 1;
                    for (p, t) in entries {
                        stats.entries_checked += 1;
                        if rect.contains_point(p) {
                            out.push((p.as_slice(), t));
                        }
                    }
                }
                Node::Inner(entries) => {
                    for (r, child) in entries {
                        stats.entries_checked += 1;
                        if r.intersects(rect) {
                            stack.push(child);
                        }
                    }
                }
            }
        }
        out
    }

    /// All points within Euclidean distance `radius` of `center`.
    pub fn within_distance(
        &self,
        center: &[f64],
        radius: f64,
        stats: &mut QueryStats,
    ) -> Vec<(&[f64], &T, f64)> {
        let r2 = radius * radius;
        // hotpath: allow(hot-alloc) — traversal stack and hit list are the query's working set
        let mut out = Vec::new();
        let mut stack = vec![&self.root];
        while let Some(node) = stack.pop() {
            stats.nodes_visited += 1;
            match node {
                Node::Leaf(entries) => {
                    stats.leaves_visited += 1;
                    for (p, t) in entries {
                        stats.entries_checked += 1;
                        let d2 = dist_sq(p, center);
                        if d2 <= r2 {
                            out.push((p.as_slice(), t, d2.sqrt()));
                        }
                    }
                }
                Node::Inner(entries) => {
                    for (r, child) in entries {
                        stats.entries_checked += 1;
                        if r.min_dist_sq(center) <= r2 {
                            stack.push(child);
                        }
                    }
                }
            }
        }
        out.sort_by(|a, b| a.2.total_cmp(&b.2));
        out
    }

    /// The `k` nearest neighbors of `center`, nearest first, via
    /// best-first search on a priority queue of MINDIST values.
    pub fn knn(&self, center: &[f64], k: usize, stats: &mut QueryStats) -> Vec<(&[f64], &T, f64)> {
        use std::collections::BinaryHeap;

        enum Item<'a, T> {
            Node(&'a Node<T>),
            Point(&'a [f64], &'a T),
        }

        // Min-heap on (distance², insertion order).
        struct HeapEntry<'a, T> {
            d2: f64,
            seq: usize,
            item: Item<'a, T>,
        }
        impl<T> PartialEq for HeapEntry<'_, T> {
            fn eq(&self, other: &Self) -> bool {
                self.d2 == other.d2 && self.seq == other.seq
            }
        }
        impl<T> Eq for HeapEntry<'_, T> {}
        impl<T> PartialOrd for HeapEntry<'_, T> {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl<T> Ord for HeapEntry<'_, T> {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                // Reversed: BinaryHeap is a max-heap, we want min-d2 first.
                other.d2.total_cmp(&self.d2).then(other.seq.cmp(&self.seq))
            }
        }

        let mut heap: BinaryHeap<HeapEntry<'_, T>> = BinaryHeap::new();
        let mut tiebreak = 0usize;
        heap.push(HeapEntry {
            d2: 0.0,
            seq: tiebreak,
            item: Item::Node(&self.root),
        });
        // hotpath: allow(hot-alloc) — the candidate heap is the query's working set
        let mut out = Vec::with_capacity(k);

        while let Some(HeapEntry { d2, item, .. }) = heap.pop() {
            if out.len() >= k {
                break;
            }
            match item {
                Item::Point(p, t) => out.push((p, t, d2.sqrt())),
                Item::Node(node) => {
                    stats.nodes_visited += 1;
                    match node {
                        Node::Leaf(entries) => {
                            stats.leaves_visited += 1;
                            for (p, t) in entries {
                                stats.entries_checked += 1;
                                tiebreak += 1;
                                heap.push(HeapEntry {
                                    d2: dist_sq(p, center),
                                    seq: tiebreak,
                                    item: Item::Point(p, t),
                                });
                            }
                        }
                        Node::Inner(entries) => {
                            for (r, child) in entries {
                                stats.entries_checked += 1;
                                tiebreak += 1;
                                heap.push(HeapEntry {
                                    d2: r.min_dist_sq(center),
                                    seq: tiebreak,
                                    item: Item::Node(child),
                                });
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// Iterates over all stored (point, payload) pairs.
    pub fn iter(&self) -> Vec<(&[f64], &T)> {
        // hotpath: allow(hot-alloc) — traversal stack and output list are the returned artifact
        let mut out = Vec::with_capacity(self.len);
        let mut stack = vec![&self.root];
        while let Some(node) = stack.pop() {
            match node {
                Node::Leaf(entries) => {
                    out.extend(entries.iter().map(|(p, t)| (p.as_slice(), t)));
                }
                Node::Inner(entries) => stack.extend(entries.iter().map(|(_, c)| c)),
            }
        }
        out
    }

    /// Checks structural invariants (for tests): bounding rectangles
    /// cover children, node occupancy within [min, max] except the
    /// root, uniform leaf depth.
    pub fn check_invariants(&self) -> Result<(), String> {
        fn depth_of<T>(node: &Node<T>) -> usize {
            match node {
                Node::Leaf(_) => 1,
                Node::Inner(entries) => 1 + depth_of(&entries[0].1),
            }
        }
        fn rec<T>(
            node: &Node<T>,
            dim: usize,
            config: &RTreeConfig,
            depth: usize,
            leaf_depth: usize,
            is_root: bool,
        ) -> Result<usize, String> {
            match node {
                Node::Leaf(entries) => {
                    if depth != leaf_depth {
                        return Err(format!("leaf at depth {depth}, expected {leaf_depth}"));
                    }
                    if !is_root && entries.len() < config.min_entries {
                        return Err(format!("leaf underflow: {}", entries.len()));
                    }
                    if entries.len() > config.max_entries {
                        return Err(format!("leaf overflow: {}", entries.len()));
                    }
                    Ok(entries.len())
                }
                Node::Inner(entries) => {
                    if !is_root && entries.len() < config.min_entries {
                        return Err(format!("inner underflow: {}", entries.len()));
                    }
                    if entries.len() > config.max_entries {
                        return Err(format!("inner overflow: {}", entries.len()));
                    }
                    let mut total = 0;
                    for (r, child) in entries {
                        let cr = child.bounding_rect(dim);
                        if !(r.contains_point(&cr.min) && r.contains_point(&cr.max)) {
                            return Err("bounding rect does not cover child".into());
                        }
                        total += rec(child, dim, config, depth + 1, leaf_depth, false)?;
                    }
                    Ok(total)
                }
            }
        }
        let leaf_depth = depth_of(&self.root);
        let count = rec(&self.root, self.dim, &self.config, 1, leaf_depth, true)?;
        if count != self.len {
            return Err(format!("stored count {count} != len {}", self.len));
        }
        Ok(())
    }
}

impl<T> RTree<T> {
    /// The fan-out configuration this tree was built with.
    pub fn config(&self) -> RTreeConfig {
        self.config
    }

    /// Validates a tree whose fields came from untrusted bytes: config
    /// sanity, positive dimension, uniform leaf depth, per-node
    /// fan-out within `[1, max_entries]`, point/rect dimensions and
    /// finiteness, rects covering their children, and `len` matching
    /// the actual entry count.
    ///
    /// Minimum occupancy is deliberately *not* enforced here: it is a
    /// packing-quality property, not a safety one, and the root is
    /// exempt from it anyway. Everything checked here is a property
    /// whose violation can panic or corrupt later operations.
    pub fn validate(&self) -> Result<(), TreeError> {
        fn walk<T>(
            node: &Node<T>,
            dim: usize,
            max: usize,
            depth: usize,
            leaf_depth: &mut Option<usize>,
            is_root: bool,
        ) -> Result<usize, TreeError> {
            match node {
                Node::Leaf(entries) => {
                    match *leaf_depth {
                        None => *leaf_depth = Some(depth),
                        Some(d) if d != depth => return Err(TreeError::UnevenDepth),
                        Some(_) => {}
                    }
                    if entries.len() > max || (!is_root && entries.is_empty()) {
                        return Err(TreeError::BadFanout {
                            found: entries.len(),
                            max,
                        });
                    }
                    for (p, _) in entries {
                        if p.len() != dim {
                            // hotpath: allow(hot-alloc) — error path: formats once, then validation aborts
                            return Err(TreeError::BadGeometry(format!(
                                "point dimension {} != tree dimension {dim}",
                                p.len()
                            )));
                        }
                        if !p.iter().all(|v| v.is_finite()) {
                            return Err(TreeError::BadGeometry("non-finite point".into()));
                        }
                    }
                    Ok(entries.len())
                }
                Node::Inner(entries) => {
                    if entries.is_empty() || entries.len() > max {
                        return Err(TreeError::BadFanout {
                            found: entries.len(),
                            max,
                        });
                    }
                    let mut total = 0;
                    for (r, child) in entries {
                        if r.dim() != dim || r.max.len() != dim {
                            return Err(TreeError::BadGeometry(format!(
                                "rect dimension {} != tree dimension {dim}",
                                r.dim()
                            )));
                        }
                        if !r.is_finite() || !r.is_ordered() {
                            return Err(TreeError::BadGeometry(
                                "non-finite or inverted bounding rect".into(),
                            ));
                        }
                        let cr = child.bounding_rect(dim);
                        if !(r.contains_point(&cr.min) && r.contains_point(&cr.max)) {
                            return Err(TreeError::BadGeometry(
                                "bounding rect does not cover child".into(),
                            ));
                        }
                        total += walk(child, dim, max, depth + 1, leaf_depth, false)?;
                    }
                    Ok(total)
                }
            }
        }

        self.config.validate()?;
        if self.dim == 0 {
            return Err(TreeError::ZeroDim);
        }
        let mut leaf_depth = None;
        let counted = walk(
            &self.root,
            self.dim,
            self.config.max_entries,
            1,
            &mut leaf_depth,
            true,
        )?;
        if counted != self.len {
            return Err(TreeError::LenMismatch {
                stored: self.len,
                counted,
            });
        }
        Ok(())
    }
}

/// Splits decorated `items` into `parts` groups in key order, group
/// sizes differing by at most one, via recursive quickselect —
/// `O(n log parts)` comparisons instead of a full sort's
/// `O(n log n)`. Groups come back ordered by key range but unsorted
/// internally; STR only needs slab *membership*, never the order
/// within a slab. `select_nth_unstable_by` is deterministic and the
/// positional tie-break makes the order total, so the partition is a
/// pure function of the input sequence.
fn split_even<I>(
    mut items: Vec<(f64, usize, I)>,
    parts: usize,
    out: &mut Vec<Vec<(f64, usize, I)>>,
) {
    if parts <= 1 {
        out.push(items);
        return;
    }
    let n = items.len();
    let (base, extra) = (n / parts, n % parts);
    let left_parts = parts / 2;
    // Exactly what the first `left_parts` groups of an even split
    // over `parts` hold, so group sizes stay even down the recursion.
    let left_len = base * left_parts + left_parts.min(extra);
    items.select_nth_unstable_by(left_len, |a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    let right = items.split_off(left_len);
    split_even(items, left_parts, out);
    split_even(right, parts - left_parts, out);
}

/// Whether `r^k >= target`, without overflowing.
fn pow_at_least(r: usize, k: usize, target: usize) -> bool {
    let mut acc: usize = 1;
    for _ in 0..k {
        acc = acc.saturating_mul(r);
        if acc >= target {
            return true;
        }
    }
    acc >= target
}

/// Smallest `r` with `r^k >= target` (`ceil(target^(1/k))`).
fn nth_root_ceil(target: usize, k: usize) -> usize {
    let mut r = 1;
    while !pow_at_least(r, k, target) {
        r += 1;
    }
    r
}

/// Number of axes STR tiling actually sorts on. Tiling every axis of a
/// 64-dimensional histogram space degenerates into ~log₂(nodes) binary
/// slab splits — a full stable sort of the level per axis — while the
/// packing quality comes almost entirely from the first few axes.
/// Capping keeps bulk builds at a constant number of sorting passes
/// regardless of feature dimensionality.
const STR_TILE_AXES: usize = 3;

/// Sort-tile-recursive partitioning: partitions `items` into even
/// slabs by their `axis` coordinate and recurses on the next axis
/// until a tile fits in one node of `max` entries. Every emitted
/// group holds at least `max/2` items (when more than `max` items are
/// tiled), because slab and chunk boundaries are distributed evenly.
/// Slabs are carved out with [`split_even`] rather than a full sort —
/// STR needs quantile membership, not sorted order.
///
/// `dim` is the number of axes to tile over, already capped by the
/// caller (see [`STR_TILE_AXES`]), not the full point dimensionality.
fn str_tile<I>(
    items: Vec<I>,
    axis: usize,
    dim: usize,
    max: usize,
    key: &impl Fn(&I, usize) -> f64,
    out: &mut Vec<Vec<I>>,
) {
    let n = items.len();
    if n <= max {
        out.push(items);
        return;
    }
    let nodes = n.div_ceil(max);
    let axes_left = dim - axis;
    let parts = if axes_left <= 1 {
        nodes
    } else {
        nth_root_ceil(nodes, axes_left)
    };
    // Decorate with (key, position): each comparison reads two inline
    // f64s instead of chasing the key closure's indirections.
    let dec: Vec<(f64, usize, I)> = items
        .into_iter()
        .enumerate()
        .map(|(i, it)| (key(&it, axis), i, it))
        .collect();
    let mut groups: Vec<Vec<(f64, usize, I)>> = Vec::with_capacity(parts);
    split_even(dec, parts, &mut groups);
    for group in groups {
        let slab: Vec<I> = group.into_iter().map(|(_, _, it)| it).collect();
        if axes_left <= 1 {
            out.push(slab);
        } else {
            str_tile(slab, axis + 1, dim, max, key, out);
        }
    }
}

/// Collects all leaf entries beneath `node` into `out`.
fn collect_entries<T>(node: Node<T>, out: &mut Vec<(Vec<f64>, T)>) {
    match node {
        Node::Leaf(entries) => out.extend(entries),
        Node::Inner(entries) => {
            for (_, child) in entries {
                collect_entries(child, out);
            }
        }
    }
}

fn dist_sq(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Quadratic split (Guttman): pick the pair of entries wasting the
/// most area as seeds, then assign the rest greedily by enlargement.
fn split_leaf<T>(entries: Vec<(Vec<f64>, T)>, config: &RTreeConfig) -> (Node<T>, Node<T>) {
    // hotpath: allow(hot-alloc) — node splits move entries into the two new nodes
    let rects: Vec<Rect> = entries.iter().map(|(p, _)| Rect::from_point(p)).collect();
    let (ga, gb) = quadratic_split_assign(&rects, config);
    let mut a = Vec::new();
    let mut b = Vec::new();
    for (i, e) in entries.into_iter().enumerate() {
        if ga.contains(&i) {
            a.push(e);
        } else {
            debug_assert!(gb.contains(&i));
            b.push(e);
        }
    }
    (Node::Leaf(a), Node::Leaf(b))
}

fn split_inner<T>(entries: Vec<(Rect, Node<T>)>, config: &RTreeConfig) -> (Node<T>, Node<T>) {
    // hotpath: allow(hot-alloc) — node splits move entries into the two new nodes
    let rects: Vec<Rect> = entries.iter().map(|(r, _)| r.clone()).collect();
    let (ga, gb) = quadratic_split_assign(&rects, config);
    let mut a = Vec::new();
    let mut b = Vec::new();
    for (i, e) in entries.into_iter().enumerate() {
        if ga.contains(&i) {
            a.push(e);
        } else {
            debug_assert!(gb.contains(&i));
            b.push(e);
        }
    }
    (Node::Inner(a), Node::Inner(b))
}

/// Returns the index sets of the two split groups.
fn quadratic_split_assign(
    rects: &[Rect],
    config: &RTreeConfig,
) -> (
    std::collections::HashSet<usize>,
    std::collections::HashSet<usize>,
) {
    let n = rects.len();
    debug_assert!(n >= 2);
    // PickSeeds: pair with the greatest dead space.
    let (mut s1, mut s2, mut worst) = (0usize, 1usize, f64::NEG_INFINITY);
    for i in 0..n {
        for j in (i + 1)..n {
            let dead = rects[i].union(&rects[j]).volume() - rects[i].volume() - rects[j].volume();
            if dead > worst {
                worst = dead;
                s1 = i;
                s2 = j;
            }
        }
    }
    let mut ga: std::collections::HashSet<usize> = [s1].into();
    let mut gb: std::collections::HashSet<usize> = [s2].into();
    // hotpath: allow(hot-alloc) — seed rects for the quadratic split are per-split state
    let mut ra = rects[s1].clone();
    let mut rb = rects[s2].clone();
    let mut rest: Vec<usize> = (0..n).filter(|&i| i != s1 && i != s2).collect();

    while !rest.is_empty() {
        // Force assignment when one group must absorb all remaining to
        // reach min_entries.
        if ga.len() + rest.len() == config.min_entries {
            for i in rest.drain(..) {
                ga.insert(i);
            }
            break;
        }
        if gb.len() + rest.len() == config.min_entries {
            for i in rest.drain(..) {
                gb.insert(i);
            }
            break;
        }
        // PickNext: entry with the greatest preference difference.
        let (mut pick, mut pick_pos, mut best_diff) = (rest[0], 0usize, f64::NEG_INFINITY);
        for (pos, &i) in rest.iter().enumerate() {
            let da = ra.enlargement(&rects[i]);
            let db = rb.enlargement(&rects[i]);
            let diff = (da - db).abs();
            if diff > best_diff {
                best_diff = diff;
                pick = i;
                pick_pos = pos;
            }
        }
        rest.swap_remove(pick_pos);
        let da = ra.enlargement(&rects[pick]);
        let db = rb.enlargement(&rects[pick]);
        let to_a = match da.total_cmp(&db) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => {
                // Ties: smaller volume, then fewer entries.
                if ra.volume() != rb.volume() {
                    ra.volume() < rb.volume()
                } else {
                    ga.len() <= gb.len()
                }
            }
        };
        if to_a {
            ga.insert(pick);
            ra.union_in_place(&rects[pick]);
        } else {
            gb.insert(pick);
            rb.union_in_place(&rects[pick]);
        }
    }
    (ga, gb)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_points_2d(n: usize) -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for i in 0..n {
            for j in 0..n {
                pts.push(vec![i as f64, j as f64]);
            }
        }
        pts
    }

    #[test]
    fn insert_and_len() {
        let mut t: RTree<usize> = RTree::with_dim(2);
        assert!(t.is_empty());
        for (i, p) in grid_points_2d(10).into_iter().enumerate() {
            t.insert(p, i);
        }
        assert_eq!(t.len(), 100);
        assert!(t.height() > 1, "tree should have split");
        t.check_invariants().unwrap();
    }

    #[test]
    fn range_query_matches_filter() {
        let mut t: RTree<usize> = RTree::with_dim(2);
        let pts = grid_points_2d(12);
        for (i, p) in pts.iter().enumerate() {
            t.insert(p.clone(), i);
        }
        let rect = Rect::new(vec![2.5, 3.0], vec![6.0, 7.5]);
        let mut stats = QueryStats::default();
        let got: Vec<usize> = {
            let mut ids: Vec<usize> = t.range(&rect, &mut stats).iter().map(|(_, &t)| t).collect();
            ids.sort_unstable();
            ids
        };
        let mut want: Vec<usize> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| rect.contains_point(p))
            .map(|(i, _)| i)
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
        assert!(stats.nodes_visited > 0);
    }

    #[test]
    fn knn_returns_sorted_nearest() {
        let mut t: RTree<usize> = RTree::with_dim(2);
        let pts = grid_points_2d(12);
        for (i, p) in pts.iter().enumerate() {
            t.insert(p.clone(), i);
        }
        let q = [5.2, 5.7];
        let mut stats = QueryStats::default();
        let got = t.knn(&q, 5, &mut stats);
        assert_eq!(got.len(), 5);
        // Distances non-decreasing.
        for w in got.windows(2) {
            assert!(w[0].2 <= w[1].2 + 1e-12);
        }
        // Matches brute force.
        let mut brute: Vec<(usize, f64)> = pts
            .iter()
            .enumerate()
            .map(|(i, p)| (i, ((p[0] - q[0]).powi(2) + (p[1] - q[1]).powi(2)).sqrt()))
            .collect();
        brute.sort_by(|a, b| a.1.total_cmp(&b.1));
        for (g, b) in got.iter().zip(&brute) {
            assert!((g.2 - b.1).abs() < 1e-12);
        }
        // Best-first must prune: visiting every node would defeat the
        // index.
        let total_nodes = {
            // crude upper bound: every leaf holds >= min_entries
            144 / 6 + 10
        };
        assert!(stats.nodes_visited < total_nodes, "no pruning happened");
    }

    #[test]
    fn within_distance_matches_brute_force() {
        let mut t: RTree<usize> = RTree::with_dim(3);
        let mut pts = Vec::new();
        // Deterministic pseudo-random points.
        let mut s = 7u64;
        let mut rnd = || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64 * 10.0
        };
        for i in 0..500 {
            let p = vec![rnd(), rnd(), rnd()];
            pts.push(p.clone());
            t.insert(p, i);
        }
        let q = [5.0, 5.0, 5.0];
        let mut stats = QueryStats::default();
        let got: Vec<usize> = t
            .within_distance(&q, 2.0, &mut stats)
            .iter()
            .map(|(_, &i, _)| i)
            .collect();
        let want: Vec<usize> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| {
                let d2: f64 = p.iter().zip(&q).map(|(a, b)| (a - b) * (a - b)).sum();
                d2 <= 4.0
            })
            .map(|(i, _)| i)
            .collect();
        let mut got_sorted = got.clone();
        got_sorted.sort_unstable();
        assert_eq!(got_sorted, want);
        // Results sorted by distance.
        let ds: Vec<f64> = t
            .within_distance(&q, 2.0, &mut QueryStats::default())
            .iter()
            .map(|r| r.2)
            .collect();
        for w in ds.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
    }

    #[test]
    fn remove_then_query() {
        let mut t: RTree<usize> = RTree::with_dim(2);
        let pts = grid_points_2d(8);
        for (i, p) in pts.iter().enumerate() {
            t.insert(p.clone(), i);
        }
        // Remove a handful.
        for i in [0usize, 17, 33, 63] {
            let removed = t.remove(&pts[i], |&p| p == i);
            assert_eq!(removed, Some(i));
        }
        assert_eq!(t.len(), 60);
        t.check_invariants().unwrap();
        // Removed points are gone from knn of themselves.
        let mut stats = QueryStats::default();
        let nn = t.knn(&pts[17], 1, &mut stats);
        assert_ne!(*nn[0].1, 17);
        // Removing a non-existent point is None.
        assert_eq!(t.remove(&[100.0, 100.0], |_| true), None);
    }

    #[test]
    fn duplicate_points_supported() {
        let mut t: RTree<u32> = RTree::with_dim(2);
        for i in 0..10 {
            t.insert(vec![1.0, 1.0], i);
        }
        assert_eq!(t.len(), 10);
        let mut stats = QueryStats::default();
        let got = t.knn(&[1.0, 1.0], 10, &mut stats);
        assert_eq!(got.len(), 10);
        assert!(got.iter().all(|g| g.2 == 0.0));
    }

    #[test]
    fn knn_k_larger_than_len() {
        let mut t: RTree<u32> = RTree::with_dim(2);
        t.insert(vec![0.0, 0.0], 1);
        t.insert(vec![1.0, 0.0], 2);
        let got = t.knn(&[0.0, 0.0], 10, &mut QueryStats::default());
        assert_eq!(got.len(), 2);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_dimension_rejected() {
        let mut t: RTree<u32> = RTree::with_dim(3);
        t.insert(vec![1.0, 2.0], 0);
    }

    fn pseudo_random_points(n: usize, dim: usize, mut seed: u64) -> Vec<Vec<f64>> {
        let mut rnd = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed >> 11) as f64 / (1u64 << 53) as f64 * 10.0
        };
        (0..n).map(|_| (0..dim).map(|_| rnd()).collect()).collect()
    }

    #[test]
    fn bulk_load_satisfies_invariants_at_many_sizes() {
        for n in [0usize, 1, 5, 16, 17, 33, 97, 256, 1000] {
            let pts = pseudo_random_points(n, 3, 42);
            let entries: Vec<(Vec<f64>, usize)> =
                pts.into_iter().enumerate().map(|(i, p)| (p, i)).collect();
            let t = RTree::bulk_load(3, RTreeConfig::default(), entries);
            assert_eq!(t.len(), n);
            t.check_invariants()
                .unwrap_or_else(|e| panic!("n={n}: {e}"));
            t.validate().unwrap_or_else(|e| panic!("n={n}: {e}"));
        }
    }

    #[test]
    fn bulk_load_queries_match_incremental_tree() {
        let pts = pseudo_random_points(500, 4, 7);
        let mut incremental: RTree<usize> = RTree::with_dim(4);
        for (i, p) in pts.iter().enumerate() {
            incremental.insert(p.clone(), i);
        }
        let packed = RTree::bulk_load(
            4,
            RTreeConfig::default(),
            pts.iter().cloned().zip(0..).collect(),
        );
        for q in pts.iter().step_by(37) {
            let a = incremental.knn(q, 8, &mut QueryStats::default());
            let b = packed.knn(q, 8, &mut QueryStats::default());
            let da: Vec<u64> = a.iter().map(|r| r.2.to_bits()).collect();
            let db: Vec<u64> = b.iter().map(|r| r.2.to_bits()).collect();
            assert_eq!(da, db, "knn distances differ at query {q:?}");
            let wa = incremental.within_distance(q, 1.5, &mut QueryStats::default());
            let wb = packed.within_distance(q, 1.5, &mut QueryStats::default());
            assert_eq!(wa.len(), wb.len());
        }
    }

    #[test]
    fn bulk_load_is_deterministic() {
        let pts = pseudo_random_points(300, 3, 99);
        let entries = || {
            pts.iter()
                .cloned()
                .zip(0..)
                .collect::<Vec<(Vec<f64>, u32)>>()
        };
        let a: RTree<u32> = RTree::bulk_load(3, RTreeConfig::default(), entries());
        let b: RTree<u32> = RTree::bulk_load(3, RTreeConfig::default(), entries());
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn bulk_load_needs_no_more_node_accesses_than_incremental() {
        let pts = pseudo_random_points(2000, 3, 11);
        let mut incremental: RTree<usize> = RTree::with_dim(3);
        for (i, p) in pts.iter().enumerate() {
            incremental.insert(p.clone(), i);
        }
        let packed = RTree::bulk_load(
            3,
            RTreeConfig::default(),
            pts.iter().cloned().zip(0..).collect(),
        );
        let mut inc_stats = QueryStats::default();
        let mut str_stats = QueryStats::default();
        for q in pts.iter().step_by(29) {
            incremental.knn(q, 10, &mut inc_stats);
            packed.knn(q, 10, &mut str_stats);
        }
        assert!(
            str_stats.nodes_visited <= inc_stats.nodes_visited,
            "STR tree visited {} nodes vs incremental {}",
            str_stats.nodes_visited,
            inc_stats.nodes_visited
        );
    }

    #[test]
    fn bulk_load_with_duplicates() {
        let entries: Vec<(Vec<f64>, u32)> = (0..50).map(|i| (vec![1.0, 2.0], i)).collect();
        let t = RTree::bulk_load(2, RTreeConfig::default(), entries);
        t.check_invariants().unwrap();
        let got = t.knn(&[1.0, 2.0], 50, &mut QueryStats::default());
        assert_eq!(got.len(), 50);
    }

    #[test]
    fn deserialize_roundtrips_valid_trees() {
        let pts = pseudo_random_points(120, 3, 3);
        let mut incremental: RTree<usize> = RTree::with_dim(3);
        for (i, p) in pts.iter().enumerate() {
            incremental.insert(p.clone(), i);
        }
        let packed = RTree::bulk_load(
            3,
            RTreeConfig::default(),
            pts.iter().cloned().zip(0..).collect(),
        );
        for tree in [&incremental, &packed] {
            let restored = RTree::<usize>::from_value(&tree.to_value()).unwrap();
            assert_eq!(restored.len(), tree.len());
            restored.validate().unwrap();
        }
    }

    #[test]
    fn deserialize_rejects_hostile_config() {
        let mut t: RTree<u32> = RTree::with_dim(2);
        t.insert(vec![0.0, 0.0], 1);
        let mut v = t.to_value();
        // Corrupt min_entries to 0 in the serialized form.
        if let serde::Value::Obj(fields) = &mut v {
            for (name, fv) in fields.iter_mut() {
                if name == "config" {
                    if let serde::Value::Obj(cfg) = fv {
                        for (cname, cv) in cfg.iter_mut() {
                            if cname == "min_entries" {
                                *cv = serde::Value::Int(0);
                            }
                        }
                    }
                }
            }
        }
        let err = RTree::<u32>::from_value(&v).unwrap_err();
        assert!(err.to_string().contains("invalid fan-out config"), "{err}");
    }

    #[test]
    fn deserialize_rejects_len_mismatch_and_bad_points() {
        let mut t: RTree<u32> = RTree::with_dim(2);
        t.insert(vec![0.0, 0.0], 1);
        t.insert(vec![1.0, 1.0], 2);
        // len lies about the entry count.
        let mut v = t.to_value();
        if let serde::Value::Obj(fields) = &mut v {
            for (name, fv) in fields.iter_mut() {
                if name == "len" {
                    *fv = serde::Value::Int(99);
                }
            }
        }
        let err = RTree::<u32>::from_value(&v).unwrap_err();
        assert!(err.to_string().contains("stored len"), "{err}");
        // A NaN coordinate in a stored point.
        let mut t2: RTree<u32> = RTree::with_dim(1);
        t2.insert(vec![0.5], 7);
        let mut v2 = t2.to_value();
        fn poison(v: &mut serde::Value) {
            match v {
                serde::Value::Float(f) => *f = f64::NAN,
                serde::Value::Arr(items) => items.iter_mut().for_each(poison),
                serde::Value::Obj(fields) => fields.iter_mut().for_each(|(_, x)| poison(x)),
                _ => {}
            }
        }
        poison(&mut v2);
        assert!(RTree::<u32>::from_value(&v2).is_err());
    }

    #[test]
    fn config_validate_matches_constructor_rules() {
        assert!(RTreeConfig::default().validate().is_ok());
        assert!(RTreeConfig {
            max_entries: 16,
            min_entries: 0
        }
        .validate()
        .is_err());
        assert!(RTreeConfig {
            max_entries: 10,
            min_entries: 6
        }
        .validate()
        .is_err());
        assert!(RTreeConfig {
            max_entries: 2,
            min_entries: 1
        }
        .validate()
        .is_ok());
    }

    #[test]
    fn invariants_hold_under_churn() {
        let mut t: RTree<usize> = RTree::new(
            2,
            RTreeConfig {
                max_entries: 8,
                min_entries: 3,
            },
        );
        let pts = grid_points_2d(15);
        for (i, p) in pts.iter().enumerate() {
            t.insert(p.clone(), i);
            if i % 7 == 0 && i > 0 {
                let victim = i / 2;
                t.remove(&pts[victim], |&p| p == victim);
            }
        }
        t.check_invariants().unwrap();
    }
}
