//! An R-tree over feature-space points (§2.3 of the paper).
//!
//! Classic Guttman R-tree with quadratic split, storing points at the
//! leaves. Supports range queries, similarity-ball queries, and
//! best-first k-nearest-neighbor search with MINDIST pruning
//! (Roussopoulos et al. / Hjaltason & Samet). All traversals are
//! instrumented with node-access counters so the index-efficiency
//! experiment can compare against a linear scan.

use serde::{Deserialize, Serialize};

use crate::rect::Rect;
use crate::stats::QueryStats;

/// Tree fan-out configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RTreeConfig {
    /// Maximum entries per node before a split (Guttman's `M`).
    pub max_entries: usize,
    /// Minimum entries per node (Guttman's `m ≤ M/2`).
    pub min_entries: usize,
}

impl Default for RTreeConfig {
    fn default() -> Self {
        RTreeConfig {
            max_entries: 16,
            min_entries: 6,
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
enum Node<T> {
    Leaf(Vec<(Vec<f64>, T)>),
    Inner(Vec<(Rect, Node<T>)>),
}

impl<T> Node<T> {
    fn len(&self) -> usize {
        match self {
            Node::Leaf(e) => e.len(),
            Node::Inner(e) => e.len(),
        }
    }

    fn bounding_rect(&self, dim: usize) -> Rect {
        let mut r: Option<Rect> = None;
        match self {
            Node::Leaf(entries) => {
                for (p, _) in entries {
                    let pr = Rect::from_point(p);
                    match &mut r {
                        Some(acc) => acc.union_in_place(&pr),
                        None => r = Some(pr),
                    }
                }
            }
            Node::Inner(entries) => {
                for (er, _) in entries {
                    match &mut r {
                        Some(acc) => acc.union_in_place(er),
                        // hotpath: allow(hot-alloc) — the enclosing rect is the computed artifact
                        None => r = Some(er.clone()),
                    }
                }
            }
        }
        r.unwrap_or_else(|| Rect::new(vec![0.0; dim], vec![0.0; dim]))
    }
}

/// A point R-tree with payloads of type `T`.
///
/// ```
/// use tdess_index::{QueryStats, RTree};
///
/// let mut tree: RTree<&str> = RTree::with_dim(2);
/// tree.insert(vec![0.0, 0.0], "origin");
/// tree.insert(vec![5.0, 5.0], "far");
///
/// let mut stats = QueryStats::default();
/// let nearest = tree.knn(&[0.2, 0.1], 1, &mut stats);
/// assert_eq!(*nearest[0].1, "origin");
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RTree<T> {
    config: RTreeConfig,
    dim: usize,
    len: usize,
    root: Node<T>,
}

impl<T: Clone> RTree<T> {
    /// Creates an empty tree for `dim`-dimensional points.
    pub fn new(dim: usize, config: RTreeConfig) -> RTree<T> {
        assert!(dim > 0, "dimension must be positive");
        assert!(
            config.min_entries >= 1 && config.min_entries * 2 <= config.max_entries,
            "need 1 <= min_entries <= max_entries/2"
        );
        RTree {
            config,
            dim,
            len: 0,
            root: Node::Leaf(Vec::new()),
        }
    }

    /// Creates an empty tree with the default fan-out.
    pub fn with_dim(dim: usize) -> RTree<T> {
        RTree::new(dim, RTreeConfig::default())
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Point dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Height of the tree (1 for a single leaf).
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut node = &self.root;
        while let Node::Inner(entries) = node {
            h += 1;
            node = &entries[0].1;
        }
        h
    }

    /// Inserts a point with payload.
    pub fn insert(&mut self, point: Vec<f64>, payload: T) {
        assert_eq!(point.len(), self.dim, "point dimension mismatch");
        assert!(point.iter().all(|v| v.is_finite()), "point must be finite");
        self.len += 1;
        if let Some((r1, n1, r2, n2)) =
            Self::insert_rec(&mut self.root, point, payload, &self.config, self.dim)
        {
            // Root split: grow the tree.
            // hotpath: allow(hot-alloc) — allocates only when the root splits
            self.root = Node::Inner(vec![(r1, n1), (r2, n2)]);
        }
    }

    /// Recursive insert; returns `Some(split)` if the child split and
    /// the parent must absorb two nodes instead of one.
    fn insert_rec(
        node: &mut Node<T>,
        point: Vec<f64>,
        payload: T,
        config: &RTreeConfig,
        dim: usize,
    ) -> Option<(Rect, Node<T>, Rect, Node<T>)> {
        match node {
            Node::Leaf(entries) => {
                entries.push((point, payload));
                if entries.len() > config.max_entries {
                    let (a, b) = split_leaf(std::mem::take(entries), config);
                    let ra = a.bounding_rect(dim);
                    let rb = b.bounding_rect(dim);
                    debug_assert!(
                        ra.is_ordered() && rb.is_ordered(),
                        "leaf split produced an inverted bounding rect"
                    );
                    return Some((ra, a, rb, b));
                }
                None
            }
            Node::Inner(entries) => {
                // ChooseLeaf: least enlargement, ties by smallest volume.
                let pr = Rect::from_point(&point);
                let mut best = 0usize;
                let mut best_enl = f64::INFINITY;
                let mut best_vol = f64::INFINITY;
                for (i, (r, _)) in entries.iter().enumerate() {
                    let enl = r.enlargement(&pr);
                    let vol = r.volume();
                    if enl < best_enl || (enl == best_enl && vol < best_vol) {
                        best = i;
                        best_enl = enl;
                        best_vol = vol;
                    }
                }
                let split = Self::insert_rec(&mut entries[best].1, point, payload, config, dim);
                match split {
                    None => {
                        // Tighten the bounding rect.
                        entries[best].0 = entries[best].1.bounding_rect(dim);
                        None
                    }
                    Some((ra, a, rb, b)) => {
                        entries.remove(best);
                        entries.push((ra, a));
                        entries.push((rb, b));
                        if entries.len() > config.max_entries {
                            let (x, y) = split_inner(std::mem::take(entries), config);
                            let rx = x.bounding_rect(dim);
                            let ry = y.bounding_rect(dim);
                            debug_assert!(
                                rx.is_ordered() && ry.is_ordered(),
                                "inner split produced an inverted bounding rect"
                            );
                            return Some((rx, x, ry, y));
                        }
                        None
                    }
                }
            }
        }
    }

    /// Removes one point equal to `point` (exact comparison) whose
    /// payload satisfies `pred`. Returns the payload if found.
    /// Underflowed nodes are condensed by reinserting their entries.
    pub fn remove(&mut self, point: &[f64], pred: impl Fn(&T) -> bool) -> Option<T> {
        assert_eq!(point.len(), self.dim, "point dimension mismatch");
        // hotpath: allow(hot-alloc) — reinsertion buffer for underflowed nodes, filled only on removes
        let mut orphans: Vec<(Vec<f64>, T)> = Vec::new();
        let removed = Self::remove_rec(
            &mut self.root,
            point,
            &pred,
            self.config.min_entries,
            &mut orphans,
        )?;
        self.len -= 1;
        // Collapse a root with a single inner child.
        loop {
            let replace = match &mut self.root {
                Node::Inner(entries) if entries.len() == 1 => entries.pop().map(|(_, child)| child),
                _ => None,
            };
            match replace {
                Some(child) => self.root = child,
                None => break,
            }
        }
        let n_orphans = orphans.len();
        for (p, t) in orphans {
            self.insert(p, t);
        }
        self.len -= n_orphans; // inserts incremented; net unchanged
        Some(removed)
    }

    fn remove_rec(
        node: &mut Node<T>,
        point: &[f64],
        pred: &impl Fn(&T) -> bool,
        min_entries: usize,
        orphans: &mut Vec<(Vec<f64>, T)>,
    ) -> Option<T> {
        match node {
            Node::Leaf(entries) => {
                let pos = entries
                    .iter()
                    .position(|(p, t)| p.as_slice() == point && pred(t))?;
                let (_, t) = entries.remove(pos);
                Some(t)
            }
            Node::Inner(entries) => {
                let dim = point.len();
                for i in 0..entries.len() {
                    if !entries[i].0.contains_point(point) {
                        continue;
                    }
                    if let Some(t) =
                        Self::remove_rec(&mut entries[i].1, point, pred, min_entries, orphans)
                    {
                        if entries[i].1.len() < min_entries {
                            // Condense: orphan the whole child.
                            let (_, child) = entries.remove(i);
                            collect_entries(child, orphans);
                        } else {
                            entries[i].0 = entries[i].1.bounding_rect(dim);
                        }
                        return Some(t);
                    }
                }
                None
            }
        }
    }

    /// All points inside `rect` (boundary inclusive).
    pub fn range(&self, rect: &Rect, stats: &mut QueryStats) -> Vec<(&[f64], &T)> {
        let mut out = Vec::new();
        let mut stack = vec![&self.root];
        while let Some(node) = stack.pop() {
            stats.nodes_visited += 1;
            match node {
                Node::Leaf(entries) => {
                    stats.leaves_visited += 1;
                    for (p, t) in entries {
                        stats.entries_checked += 1;
                        if rect.contains_point(p) {
                            out.push((p.as_slice(), t));
                        }
                    }
                }
                Node::Inner(entries) => {
                    for (r, child) in entries {
                        stats.entries_checked += 1;
                        if r.intersects(rect) {
                            stack.push(child);
                        }
                    }
                }
            }
        }
        out
    }

    /// All points within Euclidean distance `radius` of `center`.
    pub fn within_distance(
        &self,
        center: &[f64],
        radius: f64,
        stats: &mut QueryStats,
    ) -> Vec<(&[f64], &T, f64)> {
        let r2 = radius * radius;
        // hotpath: allow(hot-alloc) — traversal stack and hit list are the query's working set
        let mut out = Vec::new();
        let mut stack = vec![&self.root];
        while let Some(node) = stack.pop() {
            stats.nodes_visited += 1;
            match node {
                Node::Leaf(entries) => {
                    stats.leaves_visited += 1;
                    for (p, t) in entries {
                        stats.entries_checked += 1;
                        let d2 = dist_sq(p, center);
                        if d2 <= r2 {
                            out.push((p.as_slice(), t, d2.sqrt()));
                        }
                    }
                }
                Node::Inner(entries) => {
                    for (r, child) in entries {
                        stats.entries_checked += 1;
                        if r.min_dist_sq(center) <= r2 {
                            stack.push(child);
                        }
                    }
                }
            }
        }
        out.sort_by(|a, b| a.2.total_cmp(&b.2));
        out
    }

    /// The `k` nearest neighbors of `center`, nearest first, via
    /// best-first search on a priority queue of MINDIST values.
    pub fn knn(&self, center: &[f64], k: usize, stats: &mut QueryStats) -> Vec<(&[f64], &T, f64)> {
        use std::collections::BinaryHeap;

        enum Item<'a, T> {
            Node(&'a Node<T>),
            Point(&'a [f64], &'a T),
        }

        // Min-heap on (distance², insertion order).
        struct HeapEntry<'a, T> {
            d2: f64,
            seq: usize,
            item: Item<'a, T>,
        }
        impl<T> PartialEq for HeapEntry<'_, T> {
            fn eq(&self, other: &Self) -> bool {
                self.d2 == other.d2 && self.seq == other.seq
            }
        }
        impl<T> Eq for HeapEntry<'_, T> {}
        impl<T> PartialOrd for HeapEntry<'_, T> {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl<T> Ord for HeapEntry<'_, T> {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                // Reversed: BinaryHeap is a max-heap, we want min-d2 first.
                other.d2.total_cmp(&self.d2).then(other.seq.cmp(&self.seq))
            }
        }

        let mut heap: BinaryHeap<HeapEntry<'_, T>> = BinaryHeap::new();
        let mut tiebreak = 0usize;
        heap.push(HeapEntry {
            d2: 0.0,
            seq: tiebreak,
            item: Item::Node(&self.root),
        });
        // hotpath: allow(hot-alloc) — the candidate heap is the query's working set
        let mut out = Vec::with_capacity(k);

        while let Some(HeapEntry { d2, item, .. }) = heap.pop() {
            if out.len() >= k {
                break;
            }
            match item {
                Item::Point(p, t) => out.push((p, t, d2.sqrt())),
                Item::Node(node) => {
                    stats.nodes_visited += 1;
                    match node {
                        Node::Leaf(entries) => {
                            stats.leaves_visited += 1;
                            for (p, t) in entries {
                                stats.entries_checked += 1;
                                tiebreak += 1;
                                heap.push(HeapEntry {
                                    d2: dist_sq(p, center),
                                    seq: tiebreak,
                                    item: Item::Point(p, t),
                                });
                            }
                        }
                        Node::Inner(entries) => {
                            for (r, child) in entries {
                                stats.entries_checked += 1;
                                tiebreak += 1;
                                heap.push(HeapEntry {
                                    d2: r.min_dist_sq(center),
                                    seq: tiebreak,
                                    item: Item::Node(child),
                                });
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// Iterates over all stored (point, payload) pairs.
    pub fn iter(&self) -> Vec<(&[f64], &T)> {
        // hotpath: allow(hot-alloc) — traversal stack and output list are the returned artifact
        let mut out = Vec::with_capacity(self.len);
        let mut stack = vec![&self.root];
        while let Some(node) = stack.pop() {
            match node {
                Node::Leaf(entries) => {
                    out.extend(entries.iter().map(|(p, t)| (p.as_slice(), t)));
                }
                Node::Inner(entries) => stack.extend(entries.iter().map(|(_, c)| c)),
            }
        }
        out
    }

    /// Checks structural invariants (for tests): bounding rectangles
    /// cover children, node occupancy within [min, max] except the
    /// root, uniform leaf depth.
    pub fn check_invariants(&self) -> Result<(), String> {
        fn depth_of<T>(node: &Node<T>) -> usize {
            match node {
                Node::Leaf(_) => 1,
                Node::Inner(entries) => 1 + depth_of(&entries[0].1),
            }
        }
        fn rec<T>(
            node: &Node<T>,
            dim: usize,
            config: &RTreeConfig,
            depth: usize,
            leaf_depth: usize,
            is_root: bool,
        ) -> Result<usize, String> {
            match node {
                Node::Leaf(entries) => {
                    if depth != leaf_depth {
                        return Err(format!("leaf at depth {depth}, expected {leaf_depth}"));
                    }
                    if !is_root && entries.len() < config.min_entries {
                        return Err(format!("leaf underflow: {}", entries.len()));
                    }
                    if entries.len() > config.max_entries {
                        return Err(format!("leaf overflow: {}", entries.len()));
                    }
                    Ok(entries.len())
                }
                Node::Inner(entries) => {
                    if !is_root && entries.len() < config.min_entries {
                        return Err(format!("inner underflow: {}", entries.len()));
                    }
                    if entries.len() > config.max_entries {
                        return Err(format!("inner overflow: {}", entries.len()));
                    }
                    let mut total = 0;
                    for (r, child) in entries {
                        let cr = child.bounding_rect(dim);
                        if !(r.contains_point(&cr.min) && r.contains_point(&cr.max)) {
                            return Err("bounding rect does not cover child".into());
                        }
                        total += rec(child, dim, config, depth + 1, leaf_depth, false)?;
                    }
                    Ok(total)
                }
            }
        }
        let leaf_depth = depth_of(&self.root);
        let count = rec(&self.root, self.dim, &self.config, 1, leaf_depth, true)?;
        if count != self.len {
            return Err(format!("stored count {count} != len {}", self.len));
        }
        Ok(())
    }
}

/// Collects all leaf entries beneath `node` into `out`.
fn collect_entries<T>(node: Node<T>, out: &mut Vec<(Vec<f64>, T)>) {
    match node {
        Node::Leaf(entries) => out.extend(entries),
        Node::Inner(entries) => {
            for (_, child) in entries {
                collect_entries(child, out);
            }
        }
    }
}

fn dist_sq(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Quadratic split (Guttman): pick the pair of entries wasting the
/// most area as seeds, then assign the rest greedily by enlargement.
fn split_leaf<T>(entries: Vec<(Vec<f64>, T)>, config: &RTreeConfig) -> (Node<T>, Node<T>) {
    // hotpath: allow(hot-alloc) — node splits move entries into the two new nodes
    let rects: Vec<Rect> = entries.iter().map(|(p, _)| Rect::from_point(p)).collect();
    let (ga, gb) = quadratic_split_assign(&rects, config);
    let mut a = Vec::new();
    let mut b = Vec::new();
    for (i, e) in entries.into_iter().enumerate() {
        if ga.contains(&i) {
            a.push(e);
        } else {
            debug_assert!(gb.contains(&i));
            b.push(e);
        }
    }
    (Node::Leaf(a), Node::Leaf(b))
}

fn split_inner<T>(entries: Vec<(Rect, Node<T>)>, config: &RTreeConfig) -> (Node<T>, Node<T>) {
    // hotpath: allow(hot-alloc) — node splits move entries into the two new nodes
    let rects: Vec<Rect> = entries.iter().map(|(r, _)| r.clone()).collect();
    let (ga, gb) = quadratic_split_assign(&rects, config);
    let mut a = Vec::new();
    let mut b = Vec::new();
    for (i, e) in entries.into_iter().enumerate() {
        if ga.contains(&i) {
            a.push(e);
        } else {
            debug_assert!(gb.contains(&i));
            b.push(e);
        }
    }
    (Node::Inner(a), Node::Inner(b))
}

/// Returns the index sets of the two split groups.
fn quadratic_split_assign(
    rects: &[Rect],
    config: &RTreeConfig,
) -> (
    std::collections::HashSet<usize>,
    std::collections::HashSet<usize>,
) {
    let n = rects.len();
    debug_assert!(n >= 2);
    // PickSeeds: pair with the greatest dead space.
    let (mut s1, mut s2, mut worst) = (0usize, 1usize, f64::NEG_INFINITY);
    for i in 0..n {
        for j in (i + 1)..n {
            let dead = rects[i].union(&rects[j]).volume() - rects[i].volume() - rects[j].volume();
            if dead > worst {
                worst = dead;
                s1 = i;
                s2 = j;
            }
        }
    }
    let mut ga: std::collections::HashSet<usize> = [s1].into();
    let mut gb: std::collections::HashSet<usize> = [s2].into();
    // hotpath: allow(hot-alloc) — seed rects for the quadratic split are per-split state
    let mut ra = rects[s1].clone();
    let mut rb = rects[s2].clone();
    let mut rest: Vec<usize> = (0..n).filter(|&i| i != s1 && i != s2).collect();

    while !rest.is_empty() {
        // Force assignment when one group must absorb all remaining to
        // reach min_entries.
        if ga.len() + rest.len() == config.min_entries {
            for i in rest.drain(..) {
                ga.insert(i);
            }
            break;
        }
        if gb.len() + rest.len() == config.min_entries {
            for i in rest.drain(..) {
                gb.insert(i);
            }
            break;
        }
        // PickNext: entry with the greatest preference difference.
        let (mut pick, mut pick_pos, mut best_diff) = (rest[0], 0usize, f64::NEG_INFINITY);
        for (pos, &i) in rest.iter().enumerate() {
            let da = ra.enlargement(&rects[i]);
            let db = rb.enlargement(&rects[i]);
            let diff = (da - db).abs();
            if diff > best_diff {
                best_diff = diff;
                pick = i;
                pick_pos = pos;
            }
        }
        rest.swap_remove(pick_pos);
        let da = ra.enlargement(&rects[pick]);
        let db = rb.enlargement(&rects[pick]);
        let to_a = match da.total_cmp(&db) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => {
                // Ties: smaller volume, then fewer entries.
                if ra.volume() != rb.volume() {
                    ra.volume() < rb.volume()
                } else {
                    ga.len() <= gb.len()
                }
            }
        };
        if to_a {
            ga.insert(pick);
            ra.union_in_place(&rects[pick]);
        } else {
            gb.insert(pick);
            rb.union_in_place(&rects[pick]);
        }
    }
    (ga, gb)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_points_2d(n: usize) -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for i in 0..n {
            for j in 0..n {
                pts.push(vec![i as f64, j as f64]);
            }
        }
        pts
    }

    #[test]
    fn insert_and_len() {
        let mut t: RTree<usize> = RTree::with_dim(2);
        assert!(t.is_empty());
        for (i, p) in grid_points_2d(10).into_iter().enumerate() {
            t.insert(p, i);
        }
        assert_eq!(t.len(), 100);
        assert!(t.height() > 1, "tree should have split");
        t.check_invariants().unwrap();
    }

    #[test]
    fn range_query_matches_filter() {
        let mut t: RTree<usize> = RTree::with_dim(2);
        let pts = grid_points_2d(12);
        for (i, p) in pts.iter().enumerate() {
            t.insert(p.clone(), i);
        }
        let rect = Rect::new(vec![2.5, 3.0], vec![6.0, 7.5]);
        let mut stats = QueryStats::default();
        let got: Vec<usize> = {
            let mut ids: Vec<usize> = t.range(&rect, &mut stats).iter().map(|(_, &t)| t).collect();
            ids.sort_unstable();
            ids
        };
        let mut want: Vec<usize> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| rect.contains_point(p))
            .map(|(i, _)| i)
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
        assert!(stats.nodes_visited > 0);
    }

    #[test]
    fn knn_returns_sorted_nearest() {
        let mut t: RTree<usize> = RTree::with_dim(2);
        let pts = grid_points_2d(12);
        for (i, p) in pts.iter().enumerate() {
            t.insert(p.clone(), i);
        }
        let q = [5.2, 5.7];
        let mut stats = QueryStats::default();
        let got = t.knn(&q, 5, &mut stats);
        assert_eq!(got.len(), 5);
        // Distances non-decreasing.
        for w in got.windows(2) {
            assert!(w[0].2 <= w[1].2 + 1e-12);
        }
        // Matches brute force.
        let mut brute: Vec<(usize, f64)> = pts
            .iter()
            .enumerate()
            .map(|(i, p)| (i, ((p[0] - q[0]).powi(2) + (p[1] - q[1]).powi(2)).sqrt()))
            .collect();
        brute.sort_by(|a, b| a.1.total_cmp(&b.1));
        for (g, b) in got.iter().zip(&brute) {
            assert!((g.2 - b.1).abs() < 1e-12);
        }
        // Best-first must prune: visiting every node would defeat the
        // index.
        let total_nodes = {
            // crude upper bound: every leaf holds >= min_entries
            144 / 6 + 10
        };
        assert!(stats.nodes_visited < total_nodes, "no pruning happened");
    }

    #[test]
    fn within_distance_matches_brute_force() {
        let mut t: RTree<usize> = RTree::with_dim(3);
        let mut pts = Vec::new();
        // Deterministic pseudo-random points.
        let mut s = 7u64;
        let mut rnd = || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64 * 10.0
        };
        for i in 0..500 {
            let p = vec![rnd(), rnd(), rnd()];
            pts.push(p.clone());
            t.insert(p, i);
        }
        let q = [5.0, 5.0, 5.0];
        let mut stats = QueryStats::default();
        let got: Vec<usize> = t
            .within_distance(&q, 2.0, &mut stats)
            .iter()
            .map(|(_, &i, _)| i)
            .collect();
        let want: Vec<usize> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| {
                let d2: f64 = p.iter().zip(&q).map(|(a, b)| (a - b) * (a - b)).sum();
                d2 <= 4.0
            })
            .map(|(i, _)| i)
            .collect();
        let mut got_sorted = got.clone();
        got_sorted.sort_unstable();
        assert_eq!(got_sorted, want);
        // Results sorted by distance.
        let ds: Vec<f64> = t
            .within_distance(&q, 2.0, &mut QueryStats::default())
            .iter()
            .map(|r| r.2)
            .collect();
        for w in ds.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
    }

    #[test]
    fn remove_then_query() {
        let mut t: RTree<usize> = RTree::with_dim(2);
        let pts = grid_points_2d(8);
        for (i, p) in pts.iter().enumerate() {
            t.insert(p.clone(), i);
        }
        // Remove a handful.
        for i in [0usize, 17, 33, 63] {
            let removed = t.remove(&pts[i], |&p| p == i);
            assert_eq!(removed, Some(i));
        }
        assert_eq!(t.len(), 60);
        t.check_invariants().unwrap();
        // Removed points are gone from knn of themselves.
        let mut stats = QueryStats::default();
        let nn = t.knn(&pts[17], 1, &mut stats);
        assert_ne!(*nn[0].1, 17);
        // Removing a non-existent point is None.
        assert_eq!(t.remove(&[100.0, 100.0], |_| true), None);
    }

    #[test]
    fn duplicate_points_supported() {
        let mut t: RTree<u32> = RTree::with_dim(2);
        for i in 0..10 {
            t.insert(vec![1.0, 1.0], i);
        }
        assert_eq!(t.len(), 10);
        let mut stats = QueryStats::default();
        let got = t.knn(&[1.0, 1.0], 10, &mut stats);
        assert_eq!(got.len(), 10);
        assert!(got.iter().all(|g| g.2 == 0.0));
    }

    #[test]
    fn knn_k_larger_than_len() {
        let mut t: RTree<u32> = RTree::with_dim(2);
        t.insert(vec![0.0, 0.0], 1);
        t.insert(vec![1.0, 0.0], 2);
        let got = t.knn(&[0.0, 0.0], 10, &mut QueryStats::default());
        assert_eq!(got.len(), 2);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_dimension_rejected() {
        let mut t: RTree<u32> = RTree::with_dim(3);
        t.insert(vec![1.0, 2.0], 0);
    }

    #[test]
    fn invariants_hold_under_churn() {
        let mut t: RTree<usize> = RTree::new(
            2,
            RTreeConfig {
                max_entries: 8,
                min_entries: 3,
            },
        );
        let pts = grid_points_2d(15);
        for (i, p) in pts.iter().enumerate() {
            t.insert(p.clone(), i);
            if i % 7 == 0 && i > 0 {
                let victim = i / 2;
                t.remove(&pts[victim], |&p| p == victim);
            }
        }
        t.check_invariants().unwrap();
    }
}
