//! Linear-scan baseline with the same query API as the R-tree.

use serde::{Deserialize, Serialize};

use crate::rect::Rect;
use crate::stats::QueryStats;

/// A flat list of points, scanned exhaustively for every query. The
/// baseline the index-efficiency experiment compares against.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LinearScan<T> {
    dim: usize,
    entries: Vec<(Vec<f64>, T)>,
}

impl<T: Clone> LinearScan<T> {
    /// Creates an empty scan structure for `dim`-dimensional points.
    pub fn new(dim: usize) -> LinearScan<T> {
        assert!(dim > 0, "dimension must be positive");
        LinearScan {
            dim,
            entries: Vec::new(),
        }
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts a point with payload.
    pub fn insert(&mut self, point: Vec<f64>, payload: T) {
        assert_eq!(point.len(), self.dim, "point dimension mismatch");
        self.entries.push((point, payload));
    }

    /// Removes one matching point; returns its payload.
    pub fn remove(&mut self, point: &[f64], pred: impl Fn(&T) -> bool) -> Option<T> {
        let pos = self
            .entries
            .iter()
            .position(|(p, t)| p.as_slice() == point && pred(t))?;
        Some(self.entries.swap_remove(pos).1)
    }

    /// All points inside `rect`.
    pub fn range(&self, rect: &Rect, stats: &mut QueryStats) -> Vec<(&[f64], &T)> {
        stats.nodes_visited += 1;
        stats.leaves_visited += 1;
        self.entries
            .iter()
            .inspect(|_| stats.entries_checked += 1)
            .filter(|(p, _)| rect.contains_point(p))
            .map(|(p, t)| (p.as_slice(), t))
            .collect()
    }

    /// All points within `radius` of `center`, sorted by distance.
    pub fn within_distance(
        &self,
        center: &[f64],
        radius: f64,
        stats: &mut QueryStats,
    ) -> Vec<(&[f64], &T, f64)> {
        stats.nodes_visited += 1;
        stats.leaves_visited += 1;
        let r2 = radius * radius;
        let mut out: Vec<(&[f64], &T, f64)> = self
            .entries
            .iter()
            .inspect(|_| stats.entries_checked += 1)
            .filter_map(|(p, t)| {
                let d2: f64 = p.iter().zip(center).map(|(a, b)| (a - b) * (a - b)).sum();
                (d2 <= r2).then(|| (p.as_slice(), t, d2.sqrt()))
            })
            // hotpath: allow(hot-alloc) — the hit list is the returned artifact
            .collect();
        out.sort_by(|a, b| a.2.total_cmp(&b.2));
        out
    }

    /// The `k` nearest neighbors of `center`, nearest first.
    pub fn knn(&self, center: &[f64], k: usize, stats: &mut QueryStats) -> Vec<(&[f64], &T, f64)> {
        stats.nodes_visited += 1;
        stats.leaves_visited += 1;
        let mut all: Vec<(&[f64], &T, f64)> = self
            .entries
            .iter()
            .inspect(|_| stats.entries_checked += 1)
            .map(|(p, t)| {
                let d2: f64 = p.iter().zip(center).map(|(a, b)| (a - b) * (a - b)).sum();
                (p.as_slice(), t, d2.sqrt())
            })
            // hotpath: allow(hot-alloc) — the hit list is the returned artifact
            .collect();
        all.sort_by(|a, b| a.2.total_cmp(&b.2));
        all.truncate(k);
        all
    }

    /// Iterates over all stored entries.
    pub fn iter(&self) -> impl Iterator<Item = (&[f64], &T)> {
        self.entries.iter().map(|(p, t)| (p.as_slice(), t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_queries() {
        let mut s: LinearScan<u32> = LinearScan::new(2);
        s.insert(vec![0.0, 0.0], 0);
        s.insert(vec![1.0, 0.0], 1);
        s.insert(vec![5.0, 5.0], 2);
        assert_eq!(s.len(), 3);

        let mut stats = QueryStats::default();
        let knn = s.knn(&[0.2, 0.0], 2, &mut stats);
        assert_eq!(*knn[0].1, 0);
        assert_eq!(*knn[1].1, 1);
        assert_eq!(stats.entries_checked, 3);

        let ball = s.within_distance(&[0.0, 0.0], 1.5, &mut stats);
        assert_eq!(ball.len(), 2);

        let rect = Rect::new(vec![4.0, 4.0], vec![6.0, 6.0]);
        let range = s.range(&rect, &mut stats);
        assert_eq!(range.len(), 1);
        assert_eq!(*range[0].1, 2);
    }

    #[test]
    fn remove_works() {
        let mut s: LinearScan<u32> = LinearScan::new(1);
        s.insert(vec![1.0], 7);
        assert_eq!(s.remove(&[1.0], |&t| t == 7), Some(7));
        assert_eq!(s.remove(&[1.0], |&t| t == 7), None);
        assert!(s.is_empty());
    }
}
