//! Hyper-rectangles for the multidimensional index.

use serde::{Deserialize, Serialize};

/// An axis-aligned hyper-rectangle in `dim` dimensions, stored as
/// min/max corners (the "tight bounding box represented by the
/// coordinates of its two diagonal vertices" of §2.3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    /// Minimum corner.
    pub min: Vec<f64>,
    /// Maximum corner.
    pub max: Vec<f64>,
}

impl Rect {
    /// A degenerate rectangle covering exactly one point.
    pub fn from_point(p: &[f64]) -> Rect {
        Rect {
            // hotpath: allow(hot-alloc) — the rect owns its bound coordinates
            min: p.to_vec(),
            max: p.to_vec(),
        }
    }

    /// Creates a rectangle from corners. Panics if dimensions differ
    /// or any min exceeds the corresponding max.
    pub fn new(min: Vec<f64>, max: Vec<f64>) -> Rect {
        assert_eq!(min.len(), max.len(), "corner dimensions differ");
        assert!(
            min.iter().zip(&max).all(|(a, b)| a <= b),
            "inverted rectangle corners"
        );
        Rect { min, max }
    }

    /// Whether every min coordinate is ≤ its max — false for
    /// inverted corners and for NaN holes. Used by debug assertions.
    pub fn is_ordered(&self) -> bool {
        self.min.len() == self.max.len() && self.min.iter().zip(&self.max).all(|(a, b)| a <= b)
    }

    /// Dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.min.len()
    }

    /// Midpoint of the rectangle along `axis` (the sort key used by
    /// sort-tile-recursive bulk loading).
    #[inline]
    pub fn center(&self, axis: usize) -> f64 {
        0.5 * (self.min[axis] + self.max[axis])
    }

    /// Whether every coordinate of both corners is finite.
    pub fn is_finite(&self) -> bool {
        self.min.iter().chain(&self.max).all(|v| v.is_finite())
    }

    /// Grows this rectangle to cover `other`.
    pub fn union_in_place(&mut self, other: &Rect) {
        for d in 0..self.dim() {
            self.min[d] = self.min[d].min(other.min[d]);
            self.max[d] = self.max[d].max(other.max[d]);
        }
    }

    /// The smallest rectangle covering both inputs.
    pub fn union(&self, other: &Rect) -> Rect {
        // hotpath: allow(hot-alloc) — the merged rect owns its bounds
        let mut r = self.clone();
        r.union_in_place(other);
        r
    }

    /// Hyper-volume (product of side lengths).
    pub fn volume(&self) -> f64 {
        self.min.iter().zip(&self.max).map(|(a, b)| b - a).product()
    }

    /// Sum of side lengths (the "margin", used as a split tiebreak).
    pub fn margin(&self) -> f64 {
        self.min.iter().zip(&self.max).map(|(a, b)| b - a).sum()
    }

    /// Volume increase needed to cover `other`.
    pub fn enlargement(&self, other: &Rect) -> f64 {
        self.union(other).volume() - self.volume()
    }

    /// Whether the rectangles overlap (closed intervals).
    pub fn intersects(&self, other: &Rect) -> bool {
        self.min
            .iter()
            .zip(&self.max)
            .zip(other.min.iter().zip(&other.max))
            .all(|((amin, amax), (bmin, bmax))| amin <= bmax && amax >= bmin)
    }

    /// Whether the rectangle contains the point (boundary inclusive).
    pub fn contains_point(&self, p: &[f64]) -> bool {
        self.min
            .iter()
            .zip(&self.max)
            .zip(p)
            .all(|((lo, hi), x)| lo <= x && x <= hi)
    }

    /// Squared MINDIST from a point to the rectangle (Roussopoulos et
    /// al.): zero when the point is inside.
    pub fn min_dist_sq(&self, p: &[f64]) -> f64 {
        self.min
            .iter()
            .zip(&self.max)
            .zip(p)
            .map(|((lo, hi), x)| {
                let d = if x < lo {
                    lo - x
                } else if x > hi {
                    x - hi
                } else {
                    0.0
                };
                d * d
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_rect_is_degenerate() {
        let r = Rect::from_point(&[1.0, 2.0, 3.0]);
        assert_eq!(r.volume(), 0.0);
        assert!(r.contains_point(&[1.0, 2.0, 3.0]));
        assert!(!r.contains_point(&[1.0, 2.0, 3.1]));
    }

    #[test]
    fn union_and_enlargement() {
        let a = Rect::new(vec![0.0, 0.0], vec![1.0, 1.0]);
        let b = Rect::new(vec![2.0, 0.5], vec![3.0, 2.0]);
        let u = a.union(&b);
        assert_eq!(u.min, vec![0.0, 0.0]);
        assert_eq!(u.max, vec![3.0, 2.0]);
        assert_eq!(u.volume(), 6.0);
        assert_eq!(a.enlargement(&b), 6.0 - 1.0);
        // Union with a contained rect costs nothing.
        let c = Rect::new(vec![0.2, 0.2], vec![0.8, 0.8]);
        assert_eq!(a.enlargement(&c), 0.0);
    }

    #[test]
    fn intersection_tests() {
        let a = Rect::new(vec![0.0, 0.0], vec![1.0, 1.0]);
        let b = Rect::new(vec![1.0, 1.0], vec![2.0, 2.0]); // touches corner
        let c = Rect::new(vec![1.5, 0.0], vec![2.0, 0.5]);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert!(a.intersects(&a));
    }

    #[test]
    fn min_dist_cases() {
        let r = Rect::new(vec![0.0, 0.0], vec![2.0, 2.0]);
        // Inside: zero.
        assert_eq!(r.min_dist_sq(&[1.0, 1.0]), 0.0);
        // Face: distance along one axis.
        assert_eq!(r.min_dist_sq(&[3.0, 1.0]), 1.0);
        // Corner: Euclidean to the corner.
        assert_eq!(r.min_dist_sq(&[3.0, 3.0]), 2.0);
        // Boundary: zero.
        assert_eq!(r.min_dist_sq(&[2.0, 2.0]), 0.0);
    }

    #[test]
    fn center_is_midpoint() {
        let r = Rect::new(vec![0.0, 2.0], vec![4.0, 3.0]);
        assert_eq!(r.center(0), 2.0);
        assert_eq!(r.center(1), 2.5);
    }

    #[test]
    fn finiteness_check() {
        let r = Rect::new(vec![0.0], vec![1.0]);
        assert!(r.is_finite());
        let bad = Rect {
            min: vec![f64::NAN],
            max: vec![1.0],
        };
        assert!(!bad.is_finite());
    }

    #[test]
    fn margin_sums_side_lengths() {
        let r = Rect::new(vec![0.0, 0.0, 0.0], vec![1.0, 2.0, 3.0]);
        assert_eq!(r.margin(), 6.0);
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_rect_rejected() {
        let _ = Rect::new(vec![1.0], vec![0.0]);
    }
}
