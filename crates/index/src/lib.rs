//! # tdess-index — multidimensional access methods for 3DESS
//!
//! Implements §2.3 of the paper: an R-tree index over feature-space
//! points (Guttman quadratic split; range, similarity-ball, and
//! best-first kNN queries with MINDIST pruning) plus a linear-scan
//! baseline, both instrumented with node-access counters for the
//! index-efficiency experiment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod linear;
pub mod rect;
pub mod rtree;
pub mod stats;

pub use linear::LinearScan;
pub use rect::Rect;
pub use rtree::{RTree, RTreeConfig, TreeError};
pub use stats::QueryStats;
