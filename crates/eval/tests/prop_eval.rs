//! Property tests for the IR metrics.

use std::collections::HashSet;

use proptest::prelude::*;
use tdess_eval::{precision_recall, ranked_metrics};

fn arb_sets() -> impl Strategy<Value = (Vec<u32>, HashSet<u32>)> {
    (
        prop::collection::vec(0u32..50, 0..40),
        prop::collection::hash_set(0u32..50, 0..20),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Precision and recall are always in [0, 1].
    #[test]
    fn pr_bounded((retrieved, relevant) in arb_sets()) {
        let pr = precision_recall(&retrieved, &relevant);
        prop_assert!((0.0..=1.0).contains(&pr.precision), "P {}", pr.precision);
        prop_assert!((0.0..=1.0).contains(&pr.recall), "R {}", pr.recall);
    }

    /// Appending an irrelevant item never increases precision and never
    /// changes recall.
    #[test]
    fn irrelevant_append_monotonicity((retrieved, relevant) in arb_sets()) {
        prop_assume!(!relevant.is_empty());
        let before = precision_recall(&retrieved, &relevant);
        let mut extended = retrieved.clone();
        extended.push(999); // guaranteed irrelevant (ids < 50)
        let after = precision_recall(&extended, &relevant);
        prop_assert!(after.precision <= before.precision + 1e-12);
        prop_assert!((after.recall - before.recall).abs() < 1e-12);
    }

    /// Appending a *new* relevant item never decreases recall.
    #[test]
    fn relevant_append_monotonicity((retrieved, relevant) in arb_sets()) {
        prop_assume!(!relevant.is_empty());
        let before = precision_recall(&retrieved, &relevant);
        let fresh = relevant.iter().find(|r| !retrieved.contains(r));
        prop_assume!(fresh.is_some());
        let mut extended = retrieved.clone();
        extended.push(*fresh.unwrap());
        let after = precision_recall(&extended, &relevant);
        prop_assert!(after.recall >= before.recall - 1e-12);
    }

    /// All ranked metrics are in [0, 1], and second tier dominates
    /// first tier.
    #[test]
    fn ranked_metrics_bounds((ranking, relevant) in arb_sets()) {
        // A ranking must not repeat items.
        let mut seen = HashSet::new();
        let ranking: Vec<u32> = ranking.into_iter().filter(|x| seen.insert(*x)).collect();
        let m = ranked_metrics(&ranking, &relevant);
        for v in [m.nearest_neighbor, m.first_tier, m.second_tier, m.average_precision] {
            prop_assert!((0.0..=1.0).contains(&v), "metric {v}");
        }
        prop_assert!(m.second_tier >= m.first_tier - 1e-12);
    }

    /// Swapping a relevant item earlier in the ranking never lowers
    /// average precision.
    #[test]
    fn ap_rewards_earlier_relevants((ranking, relevant) in arb_sets(), at in 0usize..40) {
        let mut seen = HashSet::new();
        let mut ranking: Vec<u32> = ranking.into_iter().filter(|x| seen.insert(*x)).collect();
        prop_assume!(ranking.len() >= 2 && !relevant.is_empty());
        let at = at % (ranking.len() - 1) + 1; // position >= 1
        // Only meaningful if ranking[at] is relevant and ranking[at-1] is not.
        prop_assume!(relevant.contains(&ranking[at]) && !relevant.contains(&ranking[at - 1]));
        let before = ranked_metrics(&ranking, &relevant).average_precision;
        ranking.swap(at, at - 1);
        let after = ranked_metrics(&ranking, &relevant).average_precision;
        prop_assert!(after >= before - 1e-12, "AP fell from {before} to {after}");
    }
}
