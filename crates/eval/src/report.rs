//! Report formatting: fixed-width terminal tables and JSON dumps.

use std::fmt::Write as _;

use serde::Serialize;

/// Renders a fixed-width table. `headers` sets the column count; each
/// row must have the same arity.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    for (i, r) in rows.iter().enumerate() {
        assert_eq!(
            r.len(),
            cols,
            "row {i} has {} cells, expected {cols}",
            r.len()
        );
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for r in rows {
        for (c, cell) in r.iter().enumerate() {
            widths[c] = widths[c].max(cell.len());
        }
    }
    let mut out = String::new();
    let sep: String = widths
        .iter()
        .map(|w| "-".repeat(w + 2))
        .collect::<Vec<_>>()
        .join("+");
    let render_row = |cells: &[String], out: &mut String| {
        let line: Vec<String> = cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!(" {c:<w$} "))
            .collect();
        let _ = writeln!(out, "{}", line.join("|"));
    };
    render_row(
        &headers.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        &mut out,
    );
    let _ = writeln!(out, "{sep}");
    for r in rows {
        render_row(r, &mut out);
    }
    out
}

/// Formats a float with 3 decimal places for table cells.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Serializes any experiment payload to pretty JSON for machine
/// consumption (dumped next to the printed tables).
pub fn to_json<T: Serialize>(value: &T) -> String {
    // lint: allow(unwrap) — experiment payloads are plain data with no unserializable parts
    serde_json::to_string_pretty(value).expect("experiment payloads are serializable")
}

/// Renders a crude ASCII bar chart (value in [0, 1] per labeled row),
/// used by the figure regenerators to show orderings at a glance.
pub fn render_bars(rows: &[(String, f64)], width: usize) -> String {
    let mut out = String::new();
    let label_w = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    for (label, v) in rows {
        let filled = ((v.clamp(0.0, 1.0)) * width as f64).round() as usize;
        let _ = writeln!(
            out,
            "{label:<label_w$} | {}{} {v:.3}",
            "#".repeat(filled),
            " ".repeat(width - filled)
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = render_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1.000".into()],
                vec!["longer-name".into(), "0.5".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines equal width.
        let w = lines[0].len();
        assert!(lines.iter().all(|l| l.len() == w || l.contains('-')));
        assert!(t.contains("longer-name"));
    }

    #[test]
    #[should_panic(expected = "expected 2")]
    fn ragged_rows_rejected() {
        let _ = render_table(&["a", "b"], &[vec!["only-one".into()]]);
    }

    #[test]
    fn bars_clamp_and_scale() {
        let b = render_bars(
            &[
                ("full".into(), 1.0),
                ("half".into(), 0.5),
                ("over".into(), 1.5),
            ],
            10,
        );
        let lines: Vec<&str> = b.lines().collect();
        assert_eq!(lines[0].matches('#').count(), 10);
        assert_eq!(lines[1].matches('#').count(), 5);
        assert_eq!(lines[2].matches('#').count(), 10);
    }

    #[test]
    fn json_dump_works() {
        #[derive(serde::Serialize)]
        struct Row {
            x: f64,
        }
        let s = to_json(&vec![Row { x: 1.5 }]);
        assert!(s.contains("1.5"));
    }
}
