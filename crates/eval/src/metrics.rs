//! Extended retrieval metrics over full rankings.
//!
//! Beyond the paper's precision/recall-at-k, these are the measures
//! the later shape-retrieval literature standardized on (e.g. the
//! Princeton Shape Benchmark): nearest-neighbor accuracy, first/second
//! tier, and average precision. They let the reproduced system be
//! compared against both the paper's own numbers and newer work.

use std::collections::HashSet;

use serde::{Deserialize, Serialize};

/// Metrics of one query's full ranking.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct RankedMetrics {
    /// 1.0 if the top-ranked result is relevant.
    pub nearest_neighbor: f64,
    /// Recall within the first `|A|` results.
    pub first_tier: f64,
    /// Recall within the first `2·|A|` results.
    pub second_tier: f64,
    /// Average precision (area under the precision-recall curve of the
    /// ranking).
    pub average_precision: f64,
}

/// Computes ranked-retrieval metrics for one query.
///
/// `ranking` is the full result list, best first, with the query
/// itself already removed; `relevant` is the ground-truth set (also
/// excluding the query). Returns all-zero metrics when `relevant` is
/// empty.
pub fn ranked_metrics<I: std::hash::Hash + Eq + Copy>(
    ranking: &[I],
    relevant: &HashSet<I>,
) -> RankedMetrics {
    let n_rel = relevant.len();
    if n_rel == 0 || ranking.is_empty() {
        return RankedMetrics::default();
    }

    let mut hits = 0usize;
    let mut ap_sum = 0.0;
    let mut first_tier_hits = 0usize;
    let mut second_tier_hits = 0usize;
    for (rank0, item) in ranking.iter().enumerate() {
        if relevant.contains(item) {
            hits += 1;
            ap_sum += hits as f64 / (rank0 + 1) as f64;
            if rank0 < n_rel {
                first_tier_hits += 1;
            }
            if rank0 < 2 * n_rel {
                second_tier_hits += 1;
            }
        }
    }

    RankedMetrics {
        nearest_neighbor: if relevant.contains(&ranking[0]) {
            1.0
        } else {
            0.0
        },
        first_tier: first_tier_hits as f64 / n_rel as f64,
        second_tier: second_tier_hits as f64 / n_rel as f64,
        average_precision: ap_sum / n_rel as f64,
    }
}

/// Element-wise mean of a set of metric records.
pub fn mean_metrics(all: &[RankedMetrics]) -> RankedMetrics {
    if all.is_empty() {
        return RankedMetrics::default();
    }
    let n = all.len() as f64;
    RankedMetrics {
        nearest_neighbor: all.iter().map(|m| m.nearest_neighbor).sum::<f64>() / n,
        first_tier: all.iter().map(|m| m.first_tier).sum::<f64>() / n,
        second_tier: all.iter().map(|m| m.second_tier).sum::<f64>() / n,
        average_precision: all.iter().map(|m| m.average_precision).sum::<f64>() / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(v: &[u32]) -> HashSet<u32> {
        v.iter().copied().collect()
    }

    #[test]
    fn perfect_ranking() {
        let m = ranked_metrics(&[1, 2, 3, 9, 8], &set(&[1, 2, 3]));
        assert_eq!(m.nearest_neighbor, 1.0);
        assert_eq!(m.first_tier, 1.0);
        assert_eq!(m.second_tier, 1.0);
        assert!((m.average_precision - 1.0).abs() < 1e-12);
    }

    #[test]
    fn worst_ranking() {
        let m = ranked_metrics(&[9, 8, 7, 6, 5], &set(&[1, 2]));
        assert_eq!(m.nearest_neighbor, 0.0);
        assert_eq!(m.first_tier, 0.0);
        assert_eq!(m.second_tier, 0.0);
        assert_eq!(m.average_precision, 0.0);
    }

    #[test]
    fn interleaved_ranking_ap() {
        // Ranking: R N R N; A = {a, b}.
        // AP = (1/1 + 2/3) / 2 = 5/6.
        let m = ranked_metrics(&[1, 9, 2, 8], &set(&[1, 2]));
        assert!((m.average_precision - 5.0 / 6.0).abs() < 1e-12);
        assert_eq!(m.nearest_neighbor, 1.0);
        assert_eq!(m.first_tier, 0.5); // first 2 ranks contain 1 of 2
        assert_eq!(m.second_tier, 1.0); // first 4 ranks contain both
    }

    #[test]
    fn empty_cases() {
        let m = ranked_metrics::<u32>(&[], &set(&[1]));
        assert_eq!(m.average_precision, 0.0);
        let m = ranked_metrics(&[1, 2], &HashSet::new());
        assert_eq!(m.average_precision, 0.0);
    }

    #[test]
    fn mean_is_elementwise() {
        let a = RankedMetrics {
            nearest_neighbor: 1.0,
            first_tier: 0.5,
            second_tier: 1.0,
            average_precision: 0.8,
        };
        let b = RankedMetrics::default();
        let m = mean_metrics(&[a, b]);
        assert_eq!(m.nearest_neighbor, 0.5);
        assert_eq!(m.first_tier, 0.25);
        assert_eq!(m.second_tier, 0.5);
        assert!((m.average_precision - 0.4).abs() < 1e-12);
        assert_eq!(mean_metrics(&[]).first_tier, 0.0);
    }
}
