//! Precision and recall (§4.1, Eq. 4.1–4.2).

use std::collections::HashSet;

use serde::{Deserialize, Serialize};

/// A precision/recall pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrRe {
    /// Precision: |A ∩ R| / |R|.
    pub precision: f64,
    /// Recall: |A ∩ R| / |A|.
    pub recall: f64,
}

/// Computes precision and recall of a retrieved set `retrieved` (R)
/// against the relevant set `relevant` (A). Both sets are of item
/// identifiers; the caller must already have excluded the query shape
/// from both, as the paper does ("we do not count the query shape
/// itself, because it is guaranteed to be retrieved").
///
/// Empty `R` yields precision 1 by convention only when `A` is also
/// empty; otherwise precision of an empty retrieval is defined as 0
/// here (the conservative choice for curves).
pub fn precision_recall<I: std::hash::Hash + Eq + Copy>(
    retrieved: &[I],
    relevant: &HashSet<I>,
) -> PrRe {
    if relevant.is_empty() {
        return PrRe {
            precision: if retrieved.is_empty() { 1.0 } else { 0.0 },
            recall: 1.0,
        };
    }
    if retrieved.is_empty() {
        return PrRe {
            precision: 0.0,
            recall: 0.0,
        };
    }
    let hits = retrieved.iter().filter(|i| relevant.contains(i)).count();
    // Recall counts distinct relevant items, so duplicated retrievals
    // cannot push it past 1.
    let distinct_hits = retrieved
        .iter()
        .filter(|i| relevant.contains(i))
        .collect::<HashSet<_>>()
        .len();
    PrRe {
        precision: hits as f64 / retrieved.len() as f64,
        recall: distinct_hits as f64 / relevant.len() as f64,
    }
}

/// One point of a precision-recall curve: the similarity threshold it
/// was measured at, plus the retrieved-set size.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PrCurvePoint {
    /// Similarity threshold of this measurement.
    pub threshold: f64,
    /// Number of shapes retrieved at this threshold.
    pub retrieved: usize,
    /// Precision.
    pub precision: f64,
    /// Recall.
    pub recall: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(v: &[u32]) -> HashSet<u32> {
        v.iter().copied().collect()
    }

    #[test]
    fn perfect_retrieval() {
        let pr = precision_recall(&[1, 2, 3], &set(&[1, 2, 3]));
        assert_eq!(pr.precision, 1.0);
        assert_eq!(pr.recall, 1.0);
    }

    #[test]
    fn partial_retrieval() {
        // R = {1,2,3,4}, A = {1,2,9}: hits = 2.
        let pr = precision_recall(&[1, 2, 3, 4], &set(&[1, 2, 9]));
        assert_eq!(pr.precision, 0.5);
        assert!((pr.recall - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn paper_fig7_example() {
        // Figure 7: group of 5, query excluded → |A| = 4... the paper
        // reports Pr = 0.50, Re = 0.22 for a query retrieving 2
        // relevant of 4 with |R| = 4 → Pr 0.5, Re 0.5. The exact
        // counts differ (their |A| = 9); what matters here is that the
        // arithmetic matches Eq. 4.1–4.2.
        let pr = precision_recall(
            &[10, 11, 20, 21],
            &set(&[10, 11, 30, 31, 32, 33, 34, 35, 36]),
        );
        assert_eq!(pr.precision, 0.5);
        assert!((pr.recall - 2.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn empty_cases() {
        let pr = precision_recall::<u32>(&[], &set(&[1]));
        assert_eq!(pr.precision, 0.0);
        assert_eq!(pr.recall, 0.0);
        let pr = precision_recall::<u32>(&[], &HashSet::new());
        assert_eq!(pr.precision, 1.0);
        assert_eq!(pr.recall, 1.0);
        let pr = precision_recall(&[1], &HashSet::new());
        assert_eq!(pr.precision, 0.0);
        assert_eq!(pr.recall, 1.0);
    }

    #[test]
    fn duplicates_in_retrieved_count_against_precision() {
        let pr = precision_recall(&[1, 1, 2], &set(&[1]));
        assert!((pr.precision - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(pr.recall, 1.0);
    }
}
