//! The paper's effectiveness experiments (§4) as library functions.
//!
//! Each figure of the evaluation has a runner here; the `tdess-bench`
//! binaries call these and print the corresponding rows/series.

use std::collections::HashSet;

use serde::{Deserialize, Serialize};
use tdess_core::{
    multi_step_search, MultiStepPlan, Query, QueryMode, ShapeDatabase, ShapeId, Weights,
};
use tdess_dataset::Corpus;
use tdess_features::{FeatureExtractor, FeatureKind};

use crate::metrics::{mean_metrics, ranked_metrics, RankedMetrics};
use crate::pr::{precision_recall, PrCurvePoint, PrRe};

/// A corpus indexed into a shape database, with ground truth retained.
pub struct EvalContext {
    /// The database holding all 113 shapes.
    pub db: ShapeDatabase,
    /// Shape id per corpus index (insertion order).
    pub ids: Vec<ShapeId>,
    /// Ground-truth group per corpus index (`None` = noise).
    pub groups: Vec<Option<usize>>,
    /// Number of groups.
    pub num_groups: usize,
}

impl EvalContext {
    /// Inserts every corpus shape into a fresh database, extracting
    /// features on all available cores.
    pub fn build(corpus: &Corpus, extractor: FeatureExtractor) -> EvalContext {
        let mut db = ShapeDatabase::new(extractor);
        let shapes: Vec<(String, tdess_geom::TriMesh)> = corpus
            .shapes
            .iter()
            .map(|s| (s.name.clone(), s.mesh.clone()))
            .collect();
        let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
        let ids = tdess_core::bulk_insert(&mut db, shapes, threads)
            // lint: allow(unwrap) — generated corpus meshes are watertight with positive volume
            .expect("corpus shapes are watertight with positive volume");
        let groups = corpus.shapes.iter().map(|s| s.group).collect();
        EvalContext {
            db,
            ids,
            groups,
            num_groups: corpus.num_groups(),
        }
    }

    /// Ground-truth relevant set for a query at corpus index `qi`:
    /// same-group members, excluding the query itself.
    pub fn relevant_set(&self, qi: usize) -> HashSet<ShapeId> {
        let Some(g) = self.groups[qi] else {
            return HashSet::new();
        };
        self.groups
            .iter()
            .enumerate()
            .filter(|&(i, &gi)| gi == Some(g) && i != qi)
            .map(|(i, _)| self.ids[i])
            .collect()
    }

    /// Corpus index of the first member of each group (the
    /// representative queries of Figure 15/16).
    pub fn group_representatives(&self) -> Vec<usize> {
        let mut reps = Vec::with_capacity(self.num_groups);
        for g in 0..self.num_groups {
            let idx = self
                .groups
                .iter()
                .position(|&gi| gi == Some(g))
                // lint: allow(unwrap) — the corpus generator emits every group at least once
                .expect("every group is non-empty");
            reps.push(idx);
        }
        reps
    }
}

/// A search strategy under evaluation: a one-shot feature vector or a
/// multi-step plan.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Strategy {
    /// One-shot search with a single feature vector.
    OneShot(FeatureKind),
    /// Multi-step candidate retrieval + re-ranking.
    MultiStep(MultiStepPlan),
}

impl Strategy {
    /// Label used in report tables.
    pub fn label(&self) -> String {
        match self {
            Strategy::OneShot(k) => format!("{}, one-shot", k.label()),
            Strategy::MultiStep(p) => {
                let steps: Vec<&str> = p.steps.iter().map(|k| k.label()).collect();
                format!("multi-step [{}]", steps.join(" -> "))
            }
        }
    }

    /// The paper's five strategies of Figures 15–16: the four one-shot
    /// feature vectors plus the multi-step strategy.
    ///
    /// The multi-step plan retrieves candidates by principal moments
    /// (the strongest one-shot feature) and re-ranks them by the
    /// skeletal-graph eigenvalues — the topological signal the paper
    /// found too weak alone but valuable as "other local geometric
    /// information to improve selectiveness". Re-ranking is a stable
    /// sort, so shapes the eigenvalues cannot distinguish keep their
    /// principal-moment order.
    pub fn paper_set() -> Vec<Strategy> {
        vec![
            Strategy::OneShot(FeatureKind::MomentInvariants),
            Strategy::OneShot(FeatureKind::GeometricParams),
            Strategy::OneShot(FeatureKind::PrincipalMoments),
            Strategy::OneShot(FeatureKind::Eigenvalues),
            Strategy::MultiStep(MultiStepPlan {
                steps: vec![FeatureKind::PrincipalMoments, FeatureKind::Eigenvalues],
                candidates: 30,
                presented: 10,
            }),
        ]
    }
}

/// Runs a strategy, returning up to `k` result ids with the query
/// itself removed. Internally retrieves `k + 1` so the guaranteed
/// self-match does not consume a result slot.
pub fn retrieve_k(ctx: &EvalContext, qi: usize, strategy: &Strategy, k: usize) -> Vec<ShapeId> {
    let query_id = ctx.ids[qi];
    let features = ctx
        .db
        .get(query_id)
        // lint: allow(unwrap) — ctx.ids are the ids bulk_insert returned for this database
        .expect("query id exists")
        .features
        .clone();
    let hits = match strategy {
        Strategy::OneShot(kind) => ctx.db.search(
            &features,
            &Query {
                kind: *kind,
                weights: Weights::unit(),
                mode: QueryMode::TopK(k + 1),
            },
        ),
        Strategy::MultiStep(plan) => {
            let padded = MultiStepPlan {
                steps: plan.steps.clone(),
                candidates: plan.candidates + 1,
                presented: k + 1,
            };
            multi_step_search(&ctx.db, &features, &padded)
        }
    };
    hits.into_iter()
        .map(|h| h.id)
        .filter(|&id| id != query_id)
        .take(k)
        .collect()
}

/// Figure 7-style single threshold query: returns (precision, recall,
/// retrieved ids) at a similarity threshold, query excluded.
pub fn threshold_query(
    ctx: &EvalContext,
    qi: usize,
    kind: FeatureKind,
    threshold: f64,
) -> (PrRe, Vec<ShapeId>) {
    let query_id = ctx.ids[qi];
    let features = ctx
        .db
        .get(query_id)
        // lint: allow(unwrap) — ctx.ids are the ids bulk_insert returned for this database
        .expect("query id exists")
        .features
        .clone();
    let retrieved: Vec<ShapeId> = ctx
        .db
        .search(&features, &Query::threshold(kind, threshold))
        .into_iter()
        .map(|h| h.id)
        .filter(|&id| id != query_id)
        .collect();
    let relevant = ctx.relevant_set(qi);
    (precision_recall(&retrieved, &relevant), retrieved)
}

/// Figures 8–12: the precision-recall curve of one query shape for one
/// feature vector, swept over `steps` similarity thresholds in [0, 1].
pub fn pr_curve(
    ctx: &EvalContext,
    qi: usize,
    kind: FeatureKind,
    steps: usize,
) -> Vec<PrCurvePoint> {
    assert!(steps >= 2, "need at least two thresholds");
    let mut curve = Vec::with_capacity(steps);
    for s in 0..steps {
        let threshold = s as f64 / (steps - 1) as f64;
        let (pr, retrieved) = threshold_query(ctx, qi, kind, threshold);
        curve.push(PrCurvePoint {
            threshold,
            retrieved: retrieved.len(),
            precision: pr.precision,
            recall: pr.recall,
        });
    }
    curve
}

/// How many results each query of the average-effectiveness experiment
/// retrieves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RetrievalSize {
    /// Retrieve as many shapes as the query's relevant-set size
    /// (`|R| = |A|`, where precision = recall).
    GroupSize,
    /// Retrieve a fixed number of shapes (the paper uses 10).
    Fixed(usize),
}

/// One row of the Figure 15/16 tables.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EffectivenessRow {
    /// Strategy label.
    pub strategy: String,
    /// Mean precision over the 26 representative queries.
    pub avg_precision: f64,
    /// Mean recall over the 26 representative queries.
    pub avg_recall: f64,
}

/// Figures 15–16: average precision/recall of one query per group,
/// for each strategy, at the given retrieval size.
pub fn average_effectiveness(
    ctx: &EvalContext,
    strategies: &[Strategy],
    size: RetrievalSize,
) -> Vec<EffectivenessRow> {
    let reps = ctx.group_representatives();
    strategies
        .iter()
        .map(|strategy| {
            let mut sum_p = 0.0;
            let mut sum_r = 0.0;
            for &qi in &reps {
                let relevant = ctx.relevant_set(qi);
                let k = match size {
                    RetrievalSize::GroupSize => relevant.len(),
                    RetrievalSize::Fixed(k) => k,
                };
                let retrieved = retrieve_k(ctx, qi, strategy, k);
                let pr = precision_recall(&retrieved, &relevant);
                sum_p += pr.precision;
                sum_r += pr.recall;
            }
            EffectivenessRow {
                strategy: strategy.label(),
                avg_precision: sum_p / reps.len() as f64,
                avg_recall: sum_r / reps.len() as f64,
            }
        })
        .collect()
}

/// Full-ranking metrics of a strategy averaged over the 26
/// representative queries: nearest-neighbor accuracy, first/second
/// tier, and mean average precision. Each query ranks the entire
/// database (minus itself).
pub fn extended_metrics(ctx: &EvalContext, strategy: &Strategy) -> RankedMetrics {
    let reps = ctx.group_representatives();
    let full = ctx.db.len().saturating_sub(1);
    let per_query: Vec<RankedMetrics> = reps
        .iter()
        .map(|&qi| {
            let ranking = retrieve_k(ctx, qi, strategy, full);
            ranked_metrics(&ranking, &ctx.relevant_set(qi))
        })
        .collect();
    mean_metrics(&per_query)
}

/// Figures 13–14: one query compared between the best one-shot search
/// and the multi-step strategy (candidates → re-rank → present).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MultiStepComparison {
    /// Query shape name.
    pub query: String,
    /// One-shot label, precision, recall.
    pub one_shot: (String, f64, f64),
    /// Multi-step label, precision, recall.
    pub multi_step: (String, f64, f64),
}

/// Runs the Figure 13/14 comparison for one query: one-shot with
/// `one_shot_kind` vs a multi-step plan, both presenting `presented`
/// results.
pub fn multistep_comparison(
    ctx: &EvalContext,
    qi: usize,
    one_shot_kind: FeatureKind,
    plan: &MultiStepPlan,
) -> MultiStepComparison {
    let relevant = ctx.relevant_set(qi);
    let k = plan.presented;

    let os = retrieve_k(ctx, qi, &Strategy::OneShot(one_shot_kind), k);
    let ospr = precision_recall(&os, &relevant);
    let ms = retrieve_k(ctx, qi, &Strategy::MultiStep(plan.clone()), k);
    let mspr = precision_recall(&ms, &relevant);

    MultiStepComparison {
        query: ctx
            .db
            .get(ctx.ids[qi])
            // lint: allow(unwrap) — ctx.ids are the ids bulk_insert returned for this database
            .expect("query id exists")
            .name
            .clone(),
        one_shot: (
            format!("{}, one-shot", one_shot_kind.label()),
            ospr.precision,
            ospr.recall,
        ),
        multi_step: (
            Strategy::MultiStep(plan.clone()).label(),
            mspr.precision,
            mspr.recall,
        ),
    }
}

/// The five representative queries of Figures 8–12: one shape from
/// each of five different groups, preferring the largest groups (the
/// paper chooses five shapes "from the twenty-six groups and no two
/// models are from same group").
pub fn representative_queries(ctx: &EvalContext) -> Vec<usize> {
    // Groups sorted by size descending; take the first member of each
    // of the five largest.
    let mut group_sizes: Vec<(usize, usize)> = (0..ctx.num_groups)
        .map(|g| (g, ctx.groups.iter().filter(|&&gi| gi == Some(g)).count()))
        .collect();
    group_sizes.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    group_sizes
        .iter()
        .take(5)
        .map(|&(g, _)| self::EvalContext::group_representatives(ctx)[g])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdess_dataset::build_corpus;

    /// A small context shared by the tests (low resolution to keep
    /// debug-mode runtime reasonable). Built once.
    fn ctx() -> &'static EvalContext {
        use std::sync::OnceLock;
        static CTX: OnceLock<EvalContext> = OnceLock::new();
        CTX.get_or_init(|| {
            let corpus = build_corpus(2004);
            EvalContext::build(
                &corpus,
                FeatureExtractor {
                    voxel_resolution: 20,
                    ..Default::default()
                },
            )
        })
    }

    #[test]
    fn context_indexes_whole_corpus() {
        let c = ctx();
        assert_eq!(c.db.len(), 113);
        assert_eq!(c.ids.len(), 113);
        assert_eq!(c.num_groups, 26);
        assert_eq!(c.group_representatives().len(), 26);
    }

    #[test]
    fn relevant_sets_match_group_sizes() {
        let c = ctx();
        for (qi, g) in c.groups.iter().enumerate() {
            let rel = c.relevant_set(qi);
            match g {
                Some(g) => {
                    let size = c.groups.iter().filter(|&&x| x == Some(*g)).count();
                    assert_eq!(rel.len(), size - 1);
                    assert!(!rel.contains(&c.ids[qi]), "query in its own relevant set");
                }
                None => assert!(rel.is_empty()),
            }
        }
    }

    #[test]
    fn retrieve_k_excludes_query_and_respects_k() {
        let c = ctx();
        let qi = c.group_representatives()[25]; // largest group (size 8)
        for strategy in [
            Strategy::OneShot(FeatureKind::PrincipalMoments),
            Strategy::MultiStep(MultiStepPlan::paper_default()),
        ] {
            let got = retrieve_k(c, qi, &strategy, 10);
            assert_eq!(got.len(), 10, "{}", strategy.label());
            assert!(!got.contains(&c.ids[qi]), "{}", strategy.label());
        }
    }

    #[test]
    fn pr_curve_is_monotone_in_retrieved_count() {
        let c = ctx();
        let qi = c.group_representatives()[25];
        let curve = pr_curve(c, qi, FeatureKind::PrincipalMoments, 11);
        assert_eq!(curve.len(), 11);
        // Higher thresholds retrieve fewer (or equal) shapes.
        for w in curve.windows(2) {
            assert!(w[0].retrieved >= w[1].retrieved);
        }
        // Recall is non-increasing as the threshold rises.
        for w in curve.windows(2) {
            assert!(w[0].recall >= w[1].recall - 1e-12);
        }
    }

    #[test]
    fn average_effectiveness_produces_sane_rows() {
        let c = ctx();
        let rows = average_effectiveness(c, &Strategy::paper_set(), RetrievalSize::GroupSize);
        assert_eq!(rows.len(), 5);
        for r in &rows {
            assert!((0.0..=1.0).contains(&r.avg_precision), "{r:?}");
            assert!((0.0..=1.0).contains(&r.avg_recall), "{r:?}");
            // |R| = |A| makes precision equal recall.
            assert!(
                (r.avg_precision - r.avg_recall).abs() < 1e-9,
                "Pr != Re at |R|=|A|: {r:?}"
            );
        }
    }

    #[test]
    fn representative_queries_are_five_distinct_groups() {
        let c = ctx();
        let reps = representative_queries(c);
        assert_eq!(reps.len(), 5);
        let gs: std::collections::HashSet<_> = reps.iter().map(|&qi| c.groups[qi]).collect();
        assert_eq!(gs.len(), 5);
        // Largest group (size 8) must be among them.
        let sizes: Vec<usize> = reps
            .iter()
            .map(|&qi| c.relevant_set(qi).len() + 1)
            .collect();
        assert!(sizes.contains(&8), "{sizes:?}");
    }

    #[test]
    fn multistep_comparison_reports_both_rows() {
        let c = ctx();
        let qi = c.group_representatives()[25];
        let cmp = multistep_comparison(
            c,
            qi,
            FeatureKind::PrincipalMoments,
            &MultiStepPlan::paper_default(),
        );
        assert!(cmp.one_shot.1 >= 0.0 && cmp.one_shot.1 <= 1.0);
        assert!(cmp.multi_step.2 >= 0.0 && cmp.multi_step.2 <= 1.0);
        assert!(!cmp.query.is_empty());
    }
}
