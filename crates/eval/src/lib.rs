//! # tdess-eval — evaluation harness for 3DESS
//!
//! Implements §4 of the paper: precision/recall (Eq. 4.1–4.2),
//! precision-recall curves, and the effectiveness experiments behind
//! Figures 7–16, plus plain-text/JSON reporting used by the
//! `tdess-bench` figure regenerators.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod metrics;
pub mod pr;
pub mod report;

pub use experiments::{
    average_effectiveness, extended_metrics, multistep_comparison, pr_curve,
    representative_queries, retrieve_k, threshold_query, EffectivenessRow, EvalContext,
    MultiStepComparison, RetrievalSize, Strategy,
};
pub use metrics::{mean_metrics, ranked_metrics, RankedMetrics};
pub use pr::{precision_recall, PrCurvePoint, PrRe};
pub use report::{f3, render_bars, render_table, to_json};
