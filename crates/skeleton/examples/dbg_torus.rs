use tdess_geom::primitives;
use tdess_skeleton::*;
use tdess_voxel::{voxelize, VoxelizeParams};

fn main() {
    let mesh = primitives::torus(0.8, 0.8 * 0.3942, 32, 16);
    let grid = voxelize(
        &mesh,
        &VoxelizeParams {
            resolution: 36,
            ..Default::default()
        },
    );
    let mut skel = skeletonize(&grid, &ThinningParams::default());
    let pruned = prune_spurs(&mut skel, 6);
    println!("skeleton voxels: {} ({} pruned)", skel.count(), pruned);
    let g = build_graph(&skel);
    println!("joints: {}, segments: {}", g.num_joints, g.segments.len());
    for (i, s) in g.segments.iter().enumerate() {
        println!(
            "  seg {i}: {:?} len {:.2} voxels {} joints {:?}-{:?}",
            s.kind,
            s.length,
            s.voxels.len(),
            s.start_joint,
            s.end_joint
        );
    }
    println!("edges: {:?}", g.edges);
}
