//! Property tests for thinning: topology preservation over randomized
//! solid shapes.

// 3×3×3 patches are most readable with explicit index loops.
#![allow(clippy::needless_range_loop)]

use proptest::prelude::*;
use tdess_geom::{primitives, Mat3, Vec3};
use tdess_skeleton::{
    build_graph, is_simple, prune_spurs, skeletonize, Patch, SegmentKind, ThinningParams,
};
use tdess_voxel::{connected_components_26, voxelize, VoxelizeParams};

fn arb_patch() -> impl Strategy<Value = Patch> {
    prop::array::uniform32(any::<bool>()).prop_map(|bits| {
        let mut p = [[[false; 3]; 3]; 3];
        let mut i = 0;
        for z in 0..3 {
            for y in 0..3 {
                for x in 0..3 {
                    if (x, y, z) != (1, 1, 1) {
                        p[z][y][x] = bits[i % 32];
                        i += 1;
                    }
                }
            }
        }
        p[1][1][1] = true;
        p
    })
}

/// Brute-force topology check for the 3×3×3 patch: deleting the center
/// must keep (a) the number of 26-connected object components within
/// the patch and (b) the number of 6-connected background components
/// unchanged (cavity/tunnel creation shows up as a background-count
/// change in this local window for the configurations we generate).
fn object_components(patch: &Patch, include_center: bool) -> usize {
    let occ = |x: usize, y: usize, z: usize| -> bool {
        if (x, y, z) == (1, 1, 1) {
            include_center
        } else {
            patch[z][y][x]
        }
    };
    let mut seen = [[[false; 3]; 3]; 3];
    let mut comps = 0;
    for sz in 0..3 {
        for sy in 0..3 {
            for sx in 0..3 {
                if !occ(sx, sy, sz) || seen[sz][sy][sx] {
                    continue;
                }
                comps += 1;
                let mut stack = vec![(sx, sy, sz)];
                seen[sz][sy][sx] = true;
                while let Some((x, y, z)) = stack.pop() {
                    for dz in -1i32..=1 {
                        for dy in -1i32..=1 {
                            for dx in -1i32..=1 {
                                let (nx, ny, nz) = (x as i32 + dx, y as i32 + dy, z as i32 + dz);
                                if !(0..3).contains(&nx)
                                    || !(0..3).contains(&ny)
                                    || !(0..3).contains(&nz)
                                {
                                    continue;
                                }
                                let (nx, ny, nz) = (nx as usize, ny as usize, nz as usize);
                                if occ(nx, ny, nz) && !seen[nz][ny][nx] {
                                    seen[nz][ny][nx] = true;
                                    stack.push((nx, ny, nz));
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    comps
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// A voxel classified as simple must not change the local object
    /// component count when deleted (necessary condition for topology
    /// preservation; the full criterion also covers tunnels, checked
    /// by the geometric tests below).
    #[test]
    fn simple_points_preserve_local_components(patch in arb_patch()) {
        if is_simple(&patch) {
            let with = object_components(&patch, true);
            let without = object_components(&patch, false);
            prop_assert_eq!(with, without,
                "simple point deletion changed local components");
        }
    }

    /// Thinning never changes the number of 26-connected components of
    /// randomly posed two-box scenes (0, 1, or 2 components depending
    /// on overlap).
    #[test]
    fn thinning_preserves_component_count(
        dx in 0.0f64..4.0,
        angle in 0.0f64..1.5,
        res in 16usize..28,
    ) {
        let mut mesh = primitives::box_mesh(Vec3::new(1.5, 0.6, 0.6));
        let mut other = primitives::box_mesh(Vec3::new(0.6, 1.5, 0.6));
        other.rotate(&Mat3::rotation_axis_angle(Vec3::Z, angle));
        other.translate(Vec3::new(dx, 0.0, 0.0));
        mesh.append(&other);
        let grid = voxelize(&mesh, &VoxelizeParams { resolution: res, ..Default::default() });
        let before = connected_components_26(&grid).count;
        let skel = skeletonize(&grid, &ThinningParams::default());
        let after = connected_components_26(&skel).count;
        prop_assert_eq!(before, after, "thinning changed component count");
    }

    /// Tori of random proportions always skeletonize to a graph
    /// containing a loop, and the loop survives as the dominant
    /// segment.
    #[test]
    fn torus_always_yields_a_loop(major in 0.8f64..2.0, frac in 0.2f64..0.4) {
        let mesh = primitives::torus(major, major * frac, 32, 16);
        let grid = voxelize(&mesh, &VoxelizeParams { resolution: 36, ..Default::default() });
        let mut skel = skeletonize(&grid, &ThinningParams::default());
        prune_spurs(&mut skel, 6);
        let graph = build_graph(&skel);
        prop_assert!(graph.count_kind(SegmentKind::Loop) >= 1,
            "no loop in torus skeleton: {:?}",
            graph.segments.iter().map(|s| s.kind).collect::<Vec<_>>());
    }

    /// Boxes of random aspect never produce loops.
    #[test]
    fn box_never_yields_a_loop(x in 0.5f64..3.0, y in 0.5f64..3.0, z in 0.5f64..3.0) {
        let mesh = primitives::box_mesh(Vec3::new(x, y, z));
        let grid = voxelize(&mesh, &VoxelizeParams { resolution: 24, ..Default::default() });
        let mut skel = skeletonize(&grid, &ThinningParams::default());
        prune_spurs(&mut skel, 4);
        let graph = build_graph(&skel);
        prop_assert_eq!(graph.count_kind(SegmentKind::Loop), 0,
            "phantom loop in a genus-0 solid");
    }
}
