//! Topology-preserving "simple point" test for 3-D thinning.
//!
//! A filled voxel is *simple* when deleting it changes neither the
//! number of object components, nor the number of background
//! components, nor the genus — i.e. thinning may remove it safely. We
//! use the classical local characterization (Bertrand & Malandain,
//! Malandain & Bertrand 1992) for (26, 6) connectivity:
//!
//! 1. the object voxels in the 26-neighborhood of `p` (excluding `p`)
//!    form exactly **one** 26-connected component, and
//! 2. the background voxels in the 18-neighborhood of `p` that are
//!    6-adjacent to `p` form exactly **one** 6-connected component
//!    *within* the 18-neighborhood.

// 3×3×3 patches are most readable with explicit index loops.
#![allow(clippy::needless_range_loop)]

/// A 3×3×3 occupancy patch around a voxel. Index `[dz+1][dy+1][dx+1]`;
/// the center is `patch[1][1][1]`.
pub type Patch = [[[bool; 3]; 3]; 3];

/// Extracts the 3×3×3 neighborhood of `(i, j, k)` from a grid
/// accessor. `get(di, dj, dk)` must return occupancy at the *absolute*
/// offset from the voxel.
pub fn extract_patch(get: impl Fn(isize, isize, isize) -> bool) -> Patch {
    let mut p = [[[false; 3]; 3]; 3];
    for (dz, plane) in p.iter_mut().enumerate() {
        for (dy, row) in plane.iter_mut().enumerate() {
            for (dx, cell) in row.iter_mut().enumerate() {
                *cell = get(dx as isize - 1, dy as isize - 1, dz as isize - 1);
            }
        }
    }
    p
}

/// Number of object voxels in the 26-neighborhood (center excluded).
pub fn object_neighbors(patch: &Patch) -> usize {
    let mut n = 0;
    for z in 0..3 {
        for y in 0..3 {
            for x in 0..3 {
                if (x, y, z) != (1, 1, 1) && patch[z][y][x] {
                    n += 1;
                }
            }
        }
    }
    n
}

/// Returns `true` if the center voxel of `patch` is simple for
/// (26, 6)-connectivity.
pub fn is_simple(patch: &Patch) -> bool {
    object_components_26(patch) == 1 && background_components_6(patch) == 1
}

/// Counts 26-connected components of object voxels in the
/// 26-neighborhood of the center (center excluded).
fn object_components_26(patch: &Patch) -> usize {
    // Cells are indexed 0..27, skipping the center (13).
    let occ = |i: usize| -> bool {
        let (x, y, z) = (i % 3, (i / 3) % 3, i / 9);
        (x, y, z) != (1, 1, 1) && patch[z][y][x]
    };
    let mut seen = [false; 27];
    let mut comps = 0;
    for start in 0..27 {
        if !occ(start) || seen[start] {
            continue;
        }
        comps += 1;
        // The patch has at most 26 non-center cells and each is pushed
        // once, so a fixed-size array stack avoids heap traffic in this
        // innermost thinning kernel.
        let mut stack = [0usize; 27];
        let mut sp = 1usize;
        stack[0] = start;
        seen[start] = true;
        while sp > 0 {
            sp -= 1;
            let c = stack[sp];
            let (cx, cy, cz) = ((c % 3) as isize, ((c / 3) % 3) as isize, (c / 9) as isize);
            for dz in -1..=1isize {
                for dy in -1..=1isize {
                    for dx in -1..=1isize {
                        if dx == 0 && dy == 0 && dz == 0 {
                            continue;
                        }
                        let (nx, ny, nz) = (cx + dx, cy + dy, cz + dz);
                        if !(0..3).contains(&nx) || !(0..3).contains(&ny) || !(0..3).contains(&nz) {
                            continue;
                        }
                        let n = (nx + ny * 3 + nz * 9) as usize;
                        if occ(n) && !seen[n] {
                            seen[n] = true;
                            stack[sp] = n;
                            sp += 1;
                        }
                    }
                }
            }
        }
    }
    comps
}

/// Counts 6-connected components of *background* voxels within the
/// 18-neighborhood of the center that are 6-adjacent to the center.
/// Connectivity paths may only pass through the 18-neighborhood.
fn background_components_6(patch: &Patch) -> usize {
    // 18-neighborhood = cells with Chebyshev distance 1 and Manhattan
    // distance ≤ 2 (faces + edges, no corners), center excluded.
    let in_n18 = |x: isize, y: isize, z: isize| -> bool {
        let (ax, ay, az) = ((x - 1).abs(), (y - 1).abs(), (z - 1).abs());
        let manhattan = ax + ay + az;
        (1..=2).contains(&manhattan) && ax <= 1 && ay <= 1 && az <= 1
    };
    let bg = |x: isize, y: isize, z: isize| -> bool {
        in_n18(x, y, z) && !patch[z as usize][y as usize][x as usize]
    };
    // Seeds: background voxels 6-adjacent to the center.
    let seeds: [(isize, isize, isize); 6] = [
        (0, 1, 1),
        (2, 1, 1),
        (1, 0, 1),
        (1, 2, 1),
        (1, 1, 0),
        (1, 1, 2),
    ];
    let mut seen = [[[false; 3]; 3]; 3];
    let mut comps = 0;
    for &(sx, sy, sz) in &seeds {
        if !bg(sx, sy, sz) || seen[sz as usize][sy as usize][sx as usize] {
            continue;
        }
        comps += 1;
        // The 18-neighborhood has 18 cells, each pushed at most once:
        // a fixed-size array stack keeps this heap-free.
        let mut stack = [(0isize, 0isize, 0isize); 18];
        let mut sp = 1usize;
        stack[0] = (sx, sy, sz);
        seen[sz as usize][sy as usize][sx as usize] = true;
        while sp > 0 {
            sp -= 1;
            let (cx, cy, cz) = stack[sp];
            for (dx, dy, dz) in [
                (1, 0, 0),
                (-1, 0, 0),
                (0, 1, 0),
                (0, -1, 0),
                (0, 0, 1),
                (0, 0, -1),
            ] {
                let (nx, ny, nz) = (cx + dx, cy + dy, cz + dz);
                if !(0..3).contains(&nx) || !(0..3).contains(&ny) || !(0..3).contains(&nz) {
                    continue;
                }
                if bg(nx, ny, nz) && !seen[nz as usize][ny as usize][nx as usize] {
                    seen[nz as usize][ny as usize][nx as usize] = true;
                    stack[sp] = (nx, ny, nz);
                    sp += 1;
                }
            }
        }
    }
    comps
}

#[cfg(test)]
mod tests {
    use super::*;

    fn patch_from(voxels: &[(isize, isize, isize)]) -> Patch {
        let mut p = [[[false; 3]; 3]; 3];
        p[1][1][1] = true;
        for &(x, y, z) in voxels {
            p[(z + 1) as usize][(y + 1) as usize][(x + 1) as usize] = true;
        }
        p
    }

    #[test]
    fn isolated_voxel_is_not_simple() {
        // Deleting the last voxel of a component changes topology.
        let p = patch_from(&[]);
        assert!(!is_simple(&p));
        assert_eq!(object_neighbors(&p), 0);
    }

    #[test]
    fn end_of_line_is_simple() {
        // A voxel with a single neighbor can be deleted without
        // topology change (that is why thinning protects endpoints
        // explicitly, not via simplicity).
        let p = patch_from(&[(1, 0, 0)]);
        assert!(is_simple(&p));
        assert_eq!(object_neighbors(&p), 1);
    }

    #[test]
    fn middle_of_line_is_not_simple() {
        // Two opposite neighbors: deleting the center disconnects them.
        let p = patch_from(&[(1, 0, 0), (-1, 0, 0)]);
        assert!(!is_simple(&p));
    }

    #[test]
    fn corner_of_full_block_is_simple() {
        // Center of a 2×2×2 full corner: removable surface voxel.
        let mut p = [[[false; 3]; 3]; 3];
        for z in 1..3 {
            for y in 1..3 {
                for x in 1..3 {
                    p[z][y][x] = true;
                }
            }
        }
        assert!(is_simple(&p));
    }

    #[test]
    fn interior_of_solid_is_not_simple() {
        // Fully surrounded voxel: deleting it creates a cavity.
        let p = [[[true; 3]; 3]; 3];
        assert!(!is_simple(&p));
    }

    #[test]
    fn diagonal_pair_bridge_not_simple() {
        // Center bridges two voxels touching it only diagonally.
        let p = patch_from(&[(1, 1, 0), (-1, -1, 0)]);
        assert!(!is_simple(&p));
    }

    #[test]
    fn plate_center_is_not_simple() {
        // Center of a 3×3 one-voxel-thick plate: deleting it would
        // pierce a tunnel through the plate.
        let mut p = [[[false; 3]; 3]; 3];
        for y in 0..3 {
            for x in 0..3 {
                p[1][y][x] = true;
            }
        }
        assert!(!is_simple(&p));
    }

    #[test]
    fn plate_edge_is_simple() {
        // A voxel on the rim of a plate has one object component and
        // one background component: removable.
        let mut p = [[[false; 3]; 3]; 3];
        // Plate occupies x in 0..3, y in 1..3 at z = 1; center at (1,1,1)
        // sits on the rim (y = 1 edge).
        for y in 1..3 {
            for x in 0..3 {
                p[1][y][x] = true;
            }
        }
        assert!(is_simple(&p));
    }

    #[test]
    fn extract_patch_reads_offsets() {
        let p = extract_patch(|dx, dy, dz| dx == 1 && dy == 0 && dz == -1);
        assert!(p[0][1][2]);
        assert_eq!(p.iter().flatten().flatten().filter(|&&b| b).count(), 1);
    }
}
