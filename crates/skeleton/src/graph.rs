//! Skeletal graph construction (§3.4 of the paper).
//!
//! After thinning, skeleton voxels are classified by their degree in
//! the skeleton's 26-adjacency: *endpoints* (≤ 1 neighbor), *regular*
//! voxels (2), and *junction* voxels (≥ 3). Junction voxels cluster
//! into joints; maximal regular paths between joints/endpoints become
//! graph **nodes** typed `Line`, `Curve`, or `Loop` (the paper's three
//! node types); two nodes are connected by an **edge** when their
//! segments meet at a joint. The typed adjacency matrix of this graph
//! feeds the eigenvalue feature vector.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use tdess_geom::Vec3;
use tdess_voxel::{n26, VoxelGrid};

/// Classification of a skeleton segment (a node of the skeletal graph).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SegmentKind {
    /// A straight chain of voxels.
    Line,
    /// A bent (non-straight) open chain.
    Curve,
    /// A closed chain (cycle), or an open chain with both ends on the
    /// same joint.
    Loop,
}

/// One segment of the skeleton: a node of the skeletal graph.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Segment {
    /// Node classification.
    pub kind: SegmentKind,
    /// Voxel path in traversal order (world coordinates are available
    /// through the skeleton grid).
    pub voxels: Vec<(usize, usize, usize)>,
    /// Joint id at the start of the path, if the path starts at a
    /// junction cluster.
    pub start_joint: Option<usize>,
    /// Joint id at the end of the path.
    pub end_joint: Option<usize>,
    /// Polyline length in world units.
    pub length: f64,
}

/// The skeletal graph of a thinned voxel model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SkeletalGraph {
    /// Graph nodes.
    pub segments: Vec<Segment>,
    /// Number of junction clusters (joints).
    pub num_joints: usize,
    /// Adjacency: pairs of segment indices sharing a joint, with the
    /// joint id.
    pub edges: Vec<(usize, usize, usize)>,
}

/// Relative straightness threshold for classifying a segment as a
/// `Line`: maximum perpendicular deviation from the end-to-end chord,
/// in voxel units.
const LINE_DEVIATION_VOXELS: f64 = 1.25;

/// Builds the skeletal graph of a thinned skeleton grid.
pub fn build_graph(skel: &VoxelGrid) -> SkeletalGraph {
    let _stage = tdess_obs::StageTimer::start(tdess_obs::Stage::GraphBuild);
    // hotpath: allow(hot-alloc) — graph node and edge buffers are the constructed artifact
    let voxels: Vec<(usize, usize, usize)> = skel.iter_filled().collect();
    let index: HashMap<(usize, usize, usize), usize> =
        voxels.iter().enumerate().map(|(n, &v)| (v, n)).collect();

    // Adjacency lists over skeleton voxels (26-connectivity).
    let neighbors: Vec<Vec<usize>> = voxels
        .iter()
        .map(|&(i, j, k)| {
            n26()
                .filter_map(|(dx, dy, dz)| {
                    let key = (
                        i.checked_add_signed(dx)?,
                        j.checked_add_signed(dy)?,
                        k.checked_add_signed(dz)?,
                    );
                    index.get(&key).copied()
                })
                .collect()
        })
        .collect();

    let degree: Vec<usize> = neighbors.iter().map(|n| n.len()).collect();
    let is_junction: Vec<bool> = degree.iter().map(|&d| d >= 3).collect();

    // Junction clusters (joints): 26-connected components of junction
    // voxels.
    let mut joint_of = vec![usize::MAX; voxels.len()];
    let mut num_joints = 0usize;
    for v in 0..voxels.len() {
        if !is_junction[v] || joint_of[v] != usize::MAX {
            continue;
        }
        let joint = num_joints;
        num_joints += 1;
        let mut stack = vec![v];
        joint_of[v] = joint;
        while let Some(c) = stack.pop() {
            for &n in &neighbors[c] {
                if is_junction[n] && joint_of[n] == usize::MAX {
                    joint_of[n] = joint;
                    stack.push(n);
                }
            }
        }
    }

    // Trace maximal regular (non-junction) paths. Seeds: regular voxels
    // adjacent to a joint, and endpoints.
    let mut visited = vec![false; voxels.len()];
    let mut segments: Vec<Segment> = Vec::new();

    let trace =
        |start: usize, from_joint: Option<usize>, visited: &mut Vec<bool>| -> Option<Segment> {
            if visited[start] || is_junction[start] {
                return None;
            }
            let mut path = vec![start];
            visited[start] = true;
            let mut end_joint = None;
            let mut prev: Option<usize> = None;
            let mut cur = start;
            loop {
                // Next regular neighbor not yet visited, or a joint.
                let mut next_regular = None;
                let mut next_joint = None;
                for &n in &neighbors[cur] {
                    if Some(n) == prev {
                        continue;
                    }
                    if is_junction[n] {
                        // Don't immediately return into the joint we left.
                        if path.len() == 1 && from_joint == Some(joint_of[n]) {
                            // Remember it only as a fallback if nothing else.
                            if next_joint.is_none() {
                                next_joint = Some(n);
                            }
                            continue;
                        }
                        next_joint = Some(n);
                    } else if !visited[n] && next_regular.is_none() {
                        next_regular = Some(n);
                    }
                }
                if let Some(n) = next_regular {
                    visited[n] = true;
                    path.push(n);
                    prev = Some(cur);
                    cur = n;
                    continue;
                }
                if let Some(j) = next_joint {
                    end_joint = Some(joint_of[j]);
                }
                break;
            }
            Some(make_segment(skel, &voxels, path, from_joint, end_joint))
        };

    // 1. Paths emanating from joints.
    for v in 0..voxels.len() {
        if !is_junction[v] {
            continue;
        }
        let joint = joint_of[v];
        let starts: Vec<usize> = neighbors[v]
            .iter()
            .copied()
            .filter(|&n| !is_junction[n] && !visited[n])
            .collect();
        for s in starts {
            if let Some(seg) = trace(s, Some(joint), &mut visited) {
                segments.push(seg);
            }
        }
    }
    // 2. Paths from endpoints not yet covered (components without
    // junctions, e.g. a plain line).
    for v in 0..voxels.len() {
        if degree[v] <= 1 && !visited[v] && !is_junction[v] {
            if let Some(seg) = trace(v, None, &mut visited) {
                segments.push(seg);
            }
        }
    }
    // 3. Remaining regular voxels form pure cycles (isolated rings).
    for v in 0..voxels.len() {
        if visited[v] || is_junction[v] {
            continue;
        }
        // Walk the cycle.
        let mut path = vec![v];
        visited[v] = true;
        let mut prev = None;
        let mut cur = v;
        loop {
            let mut advanced = false;
            for &n in &neighbors[cur] {
                if Some(n) == prev || visited[n] || is_junction[n] {
                    continue;
                }
                visited[n] = true;
                path.push(n);
                prev = Some(cur);
                cur = n;
                advanced = true;
                break;
            }
            if !advanced {
                break;
            }
        }
        let mut seg = make_segment(skel, &voxels, path, None, None);
        seg.kind = SegmentKind::Loop;
        segments.push(seg);
    }

    // Isolated single voxels (degree 0) were captured by the endpoint
    // pass; a bare voxel yields a 1-voxel Line segment.

    // Dissolve pass-through joints: a joint incident to exactly two
    // segment ends is a thinning artifact, not a real branch point.
    // Merging across it reconstitutes chains (and closed rings) that
    // junction noise chopped up.
    dissolve_degree2_joints(skel, &mut segments, num_joints);

    // Edges: segments sharing a joint.
    let mut edges = Vec::new();
    for joint in 0..num_joints {
        let members: Vec<usize> = segments
            .iter()
            .enumerate()
            .filter(|(_, s)| s.start_joint == Some(joint) || s.end_joint == Some(joint))
            .map(|(i, _)| i)
            .collect();
        for a in 0..members.len() {
            for b in (a + 1)..members.len() {
                edges.push((members[a], members[b], joint));
            }
        }
    }

    SkeletalGraph {
        segments,
        num_joints,
        edges,
    }
}

/// Merges segments across joints that connect exactly two segment
/// ends. A joint where both ends of the *same* segment meet closes
/// that segment into a loop.
fn dissolve_degree2_joints(skel: &VoxelGrid, segments: &mut Vec<Segment>, num_joints: usize) {
    loop {
        // Incidences: joint -> list of (segment index, is_start).
        // hotpath: allow(hot-alloc) — rebuilds the segment list in place once per graph
        let mut incidence: Vec<Vec<(usize, bool)>> = vec![Vec::new(); num_joints];
        for (si, s) in segments.iter().enumerate() {
            if let Some(j) = s.start_joint {
                incidence[j].push((si, true));
            }
            if let Some(j) = s.end_joint {
                incidence[j].push((si, false));
            }
        }
        let Some((_joint, ends)) = incidence
            .iter()
            .enumerate()
            .find(|(_, inc)| inc.len() == 2)
            .map(|(j, inc)| (j, inc.clone()))
        else {
            return;
        };

        let (sa, a_is_start) = ends[0];
        let (sb, b_is_start) = ends[1];
        if sa == sb {
            // Both ends of one segment meet here: it is a closed ring.
            let s = &mut segments[sa];
            s.kind = SegmentKind::Loop;
            s.start_joint = None;
            s.end_joint = None;
            continue;
        }

        // Orient A to *end* at the joint and B to *start* at it, then
        // concatenate.
        let mut a = segments[sa].clone();
        let mut b = segments[sb].clone();
        if a_is_start {
            a.voxels.reverse();
            std::mem::swap(&mut a.start_joint, &mut a.end_joint);
        }
        if !b_is_start {
            b.voxels.reverse();
            std::mem::swap(&mut b.start_joint, &mut b.end_joint);
        }
        let mut merged_voxels = a.voxels;
        merged_voxels.extend(b.voxels);
        let pts: Vec<Vec3> = merged_voxels
            .iter()
            .map(|&(i, j, k)| skel.voxel_center(i, j, k))
            .collect();
        let length: f64 = pts.windows(2).map(|w| w[0].distance(w[1])).sum();
        let (start_joint, end_joint) = (a.start_joint, b.end_joint);
        let kind = if start_joint.is_some() && start_joint == end_joint {
            SegmentKind::Loop
        } else if is_straight(&pts, skel.voxel_size) {
            SegmentKind::Line
        } else {
            SegmentKind::Curve
        };
        let merged = Segment {
            kind,
            voxels: merged_voxels,
            start_joint,
            end_joint,
            length,
        };
        // Replace A, drop B (preserve other indices via swap_remove
        // then fix-up: simpler to rebuild the vec).
        let keep_b = sb;
        segments[sa] = merged;
        segments.remove(keep_b);
    }
}

/// Builds a segment from a traced voxel path, classifying it as Line,
/// Curve, or Loop.
fn make_segment(
    skel: &VoxelGrid,
    voxels: &[(usize, usize, usize)],
    path: Vec<usize>,
    start_joint: Option<usize>,
    end_joint: Option<usize>,
) -> Segment {
    let pts: Vec<Vec3> = path
        .iter()
        .map(|&v| {
            let (i, j, k) = voxels[v];
            skel.voxel_center(i, j, k)
        })
        // hotpath: allow(hot-alloc) — segment voxel lists are the constructed artifact
        .collect();
    let length: f64 = pts.windows(2).map(|w| w[0].distance(w[1])).sum();

    let kind = if start_joint.is_some() && start_joint == end_joint {
        SegmentKind::Loop
    } else if is_straight(&pts, skel.voxel_size) {
        SegmentKind::Line
    } else {
        SegmentKind::Curve
    };

    Segment {
        kind,
        voxels: path.iter().map(|&v| voxels[v]).collect(),
        start_joint,
        end_joint,
        length,
    }
}

/// A path is straight when every voxel center lies within
/// [`LINE_DEVIATION_VOXELS`] of the chord between its ends.
fn is_straight(pts: &[Vec3], voxel_size: f64) -> bool {
    if pts.len() <= 2 {
        return true;
    }
    let &[a, .., b] = pts else {
        return true; // already handled by the length check above
    };
    let chord = b - a;
    let Some(dir) = chord.normalized() else {
        return false; // closed path (ends coincide): not a line
    };
    let tol = LINE_DEVIATION_VOXELS * voxel_size;
    pts.iter().all(|&p| {
        let d = p - a;
        let along = d.dot(dir);
        let perp = (d - dir * along).norm();
        perp <= tol
    })
}

impl SkeletalGraph {
    /// Total number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.segments.len()
    }

    /// Count of segments of a given kind.
    pub fn count_kind(&self, kind: SegmentKind) -> usize {
        self.segments.iter().filter(|s| s.kind == kind).count()
    }

    /// Builds the typed adjacency matrix of the graph (row-major,
    /// `n × n`). Off-diagonal entries carry the connection weight for
    /// the pair of node types (the paper values, e.g., loop-to-loop
    /// differently from loop-to-line); diagonal entries encode the node
    /// type itself so that even edgeless graphs are distinguishable.
    pub fn adjacency_matrix(&self) -> (Vec<f64>, usize) {
        let n = self.segments.len();
        // hotpath: allow(hot-alloc) — the matrix is the computed artifact
        let mut a = vec![0.0; n * n];
        for (i, s) in self.segments.iter().enumerate() {
            a[i * n + i] = type_code(s.kind);
        }
        for &(i, j, _) in &self.edges {
            let w = connection_weight(self.segments[i].kind, self.segments[j].kind);
            // Parallel edges (two segments sharing both joints)
            // accumulate, which distinguishes theta-shapes from simple
            // chains.
            a[i * n + j] += w;
            a[j * n + i] += w;
        }
        (a, n)
    }
}

/// Diagonal code for a node type.
fn type_code(kind: SegmentKind) -> f64 {
    match kind {
        SegmentKind::Line => 1.0,
        SegmentKind::Curve => 2.0,
        SegmentKind::Loop => 3.0,
    }
}

/// Connection weight for an edge between two node types.
fn connection_weight(a: SegmentKind, b: SegmentKind) -> f64 {
    use SegmentKind::*;
    match (a.min_ord(b), a.max_ord(b)) {
        (Line, Line) => 1.0,
        (Line, Curve) => 1.5,
        (Curve, Curve) => 2.0,
        (Line, Loop) => 2.5,
        (Curve, Loop) => 3.0,
        (Loop, Loop) => 3.5,
        // lint: allow(unwrap) — min_ord/max_ord normalize the pair; all ordered pairs are listed
        _ => unreachable!("min/max ordering covers all pairs"),
    }
}

impl SegmentKind {
    fn rank(self) -> u8 {
        match self {
            SegmentKind::Line => 0,
            SegmentKind::Curve => 1,
            SegmentKind::Loop => 2,
        }
    }
    fn min_ord(self, other: Self) -> Self {
        if self.rank() <= other.rank() {
            self
        } else {
            other
        }
    }
    fn max_ord(self, other: Self) -> Self {
        if self.rank() >= other.rank() {
            self
        } else {
            other
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thinning::{skeletonize, ThinningParams};
    use tdess_geom::{primitives, Vec3};
    use tdess_voxel::{voxelize, VoxelizeParams};

    fn graph_of(mesh: &tdess_geom::TriMesh, res: usize) -> SkeletalGraph {
        let grid = voxelize(
            mesh,
            &VoxelizeParams {
                resolution: res,
                ..Default::default()
            },
        );
        let skel = skeletonize(&grid, &ThinningParams::default());
        build_graph(&skel)
    }

    #[test]
    fn rod_graph_is_single_line() {
        let mesh = primitives::box_mesh(Vec3::new(4.0, 0.5, 0.5));
        let g = graph_of(&mesh, 48);
        assert_eq!(
            g.num_nodes(),
            1,
            "{:?}",
            g.segments.iter().map(|s| s.kind).collect::<Vec<_>>()
        );
        assert_eq!(g.segments[0].kind, SegmentKind::Line);
        assert_eq!(g.num_joints, 0);
        assert!(g.edges.is_empty());
        assert!(
            g.segments[0].length > 3.0,
            "length {}",
            g.segments[0].length
        );
    }

    #[test]
    fn torus_graph_is_single_loop() {
        let mesh = primitives::torus(1.0, 0.28, 48, 20);
        let g = graph_of(&mesh, 40);
        assert_eq!(
            g.count_kind(SegmentKind::Loop),
            1,
            "{:?}",
            g.segments
                .iter()
                .map(|s| (s.kind, s.voxels.len()))
                .collect::<Vec<_>>()
        );
        assert_eq!(g.num_nodes(), 1);
        // Loop length close to 2πR.
        let len = g.segments[0].length;
        let expected = std::f64::consts::TAU;
        assert!(
            (len - expected).abs() / expected < 0.25,
            "loop length {len}"
        );
    }

    #[test]
    fn elbow_is_a_curve_or_two_lines() {
        // An L-shaped solid: thinning yields either one bent path or
        // two lines joined at a joint, depending on corner geometry.
        let mut mesh = primitives::box_mesh(Vec3::new(3.0, 0.5, 0.5));
        let mut arm = primitives::box_mesh(Vec3::new(0.5, 3.0, 0.5));
        arm.translate(Vec3::new(-1.25, 1.75, 0.0));
        mesh.append(&arm);
        let g = graph_of(&mesh, 48);
        let bent = g.count_kind(SegmentKind::Curve) >= 1;
        let two_lines = g.num_nodes() >= 2;
        assert!(
            bent || two_lines,
            "unexpected graph: {:?}",
            g.segments.iter().map(|s| s.kind).collect::<Vec<_>>()
        );
    }

    #[test]
    fn cross_shape_has_junction() {
        // A plus-sign solid: four arms meeting at a joint.
        let mut mesh = primitives::box_mesh(Vec3::new(4.0, 0.6, 0.6));
        let mut arm = primitives::box_mesh(Vec3::new(0.6, 4.0, 0.6));
        arm.translate(Vec3::new(0.0, 0.0, 0.0));
        mesh.append(&arm);
        let g = graph_of(&mesh, 48);
        assert!(g.num_joints >= 1, "no joints found");
        assert!(
            g.num_nodes() >= 3,
            "expected several arms, got {}",
            g.num_nodes()
        );
        assert!(
            !g.edges.is_empty(),
            "arms must be connected through the joint"
        );
    }

    #[test]
    fn adjacency_matrix_is_symmetric_with_typed_diagonal() {
        let mesh = primitives::torus(1.0, 0.28, 48, 20);
        let g = graph_of(&mesh, 40);
        let (a, n) = g.adjacency_matrix();
        assert_eq!(a.len(), n * n);
        for r in 0..n {
            for c in 0..n {
                assert_eq!(a[r * n + c], a[c * n + r]);
            }
        }
        // Loop node carries the loop type code on the diagonal.
        assert!(a.contains(&3.0));
    }

    #[test]
    fn straightness_classifier() {
        let line: Vec<Vec3> = (0..10).map(|i| Vec3::new(i as f64, 0.0, 0.0)).collect();
        assert!(is_straight(&line, 1.0));
        let bent: Vec<Vec3> = (0..10)
            .map(|i| {
                if i < 5 {
                    Vec3::new(i as f64, 0.0, 0.0)
                } else {
                    Vec3::new(4.0, (i - 4) as f64, 0.0)
                }
            })
            .collect();
        assert!(!is_straight(&bent, 1.0));
    }

    #[test]
    fn connection_weights_are_symmetric() {
        use SegmentKind::*;
        for a in [Line, Curve, Loop] {
            for b in [Line, Curve, Loop] {
                assert_eq!(connection_weight(a, b), connection_weight(b, a));
            }
        }
    }

    #[test]
    fn empty_skeleton_gives_empty_graph() {
        let g = build_graph(&tdess_voxel::VoxelGrid::new(4, 4, 4, Vec3::ZERO, 1.0));
        assert_eq!(g.num_nodes(), 0);
        let (a, n) = g.adjacency_matrix();
        assert_eq!(n, 0);
        assert!(a.is_empty());
    }
}
