//! Spectral signatures of skeletal graphs (§3.5.4 of the paper).
//!
//! The eigenvalues of the typed adjacency matrix are indexed so graphs
//! can be compared without solving (NP-complete) graph matching. The
//! signature is the eigenvalue list sorted by magnitude (descending),
//! zero-padded or truncated to a fixed dimension so all shapes live in
//! the same feature space.

use tdess_geom::sym_eigenvalues;

use crate::graph::SkeletalGraph;

/// Default dimensionality of the eigenvalue feature vector.
pub const SPECTRUM_DIM: usize = 8;

/// Computes the spectral signature of a skeletal graph: eigenvalues of
/// its typed adjacency matrix, sorted by decreasing magnitude (sign
/// preserved), padded with zeros or truncated to `dim` entries.
pub fn spectral_signature(graph: &SkeletalGraph, dim: usize) -> Vec<f64> {
    let _stage = tdess_obs::StageTimer::start(tdess_obs::Stage::Eigen);
    let (a, n) = graph.adjacency_matrix();
    debug_assert!(
        (0..n).all(|i| (i..n).all(|j| a[i * n + j] == a[j * n + i])),
        "typed adjacency matrix must be symmetric before eigendecomposition"
    );
    let mut vals = sym_eigenvalues(&a, n);
    vals.sort_by(|x, y| y.abs().total_cmp(&x.abs()));
    vals.resize(dim.max(vals.len()), 0.0);
    vals.truncate(dim);
    vals
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::build_graph;
    use crate::thinning::{skeletonize, ThinningParams};
    use tdess_geom::{primitives, Vec3};
    use tdess_voxel::{voxelize, VoxelizeParams};

    fn signature_of(mesh: &tdess_geom::TriMesh, res: usize) -> Vec<f64> {
        let grid = voxelize(
            mesh,
            &VoxelizeParams {
                resolution: res,
                ..Default::default()
            },
        );
        let skel = skeletonize(&grid, &ThinningParams::default());
        spectral_signature(&build_graph(&skel), SPECTRUM_DIM)
    }

    #[test]
    fn signature_has_fixed_dimension() {
        let sig = signature_of(&primitives::box_mesh(Vec3::new(3.0, 0.5, 0.5)), 32);
        assert_eq!(sig.len(), SPECTRUM_DIM);
        // A single line node: adjacency is [1.0]; spectrum = [1, 0, ...].
        assert!((sig[0] - 1.0).abs() < 1e-12, "{sig:?}");
        assert!(sig[1..].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn loop_and_line_have_distinct_signatures() {
        let line = signature_of(&primitives::box_mesh(Vec3::new(3.0, 0.5, 0.5)), 32);
        let ring = signature_of(&primitives::torus(1.0, 0.28, 48, 20), 40);
        assert!(
            (line[0] - ring[0]).abs() > 0.5,
            "line {line:?} vs ring {ring:?}"
        );
    }

    #[test]
    fn signature_sorted_by_magnitude() {
        // A plus-shaped solid gives a multi-node graph.
        let mut mesh = primitives::box_mesh(Vec3::new(4.0, 0.6, 0.6));
        let arm = primitives::box_mesh(Vec3::new(0.6, 4.0, 0.6));
        mesh.append(&arm);
        let sig = signature_of(&mesh, 48);
        for w in sig.windows(2) {
            assert!(w[0].abs() >= w[1].abs() - 1e-12, "{sig:?}");
        }
    }

    #[test]
    fn empty_graph_signature_is_zero() {
        let g = build_graph(&tdess_voxel::VoxelGrid::new(3, 3, 3, Vec3::ZERO, 1.0));
        let sig = spectral_signature(&g, 5);
        assert_eq!(sig, vec![0.0; 5]);
    }

    #[test]
    fn truncation_keeps_dominant_eigenvalues() {
        let mut mesh = primitives::box_mesh(Vec3::new(4.0, 0.6, 0.6));
        let arm = primitives::box_mesh(Vec3::new(0.6, 4.0, 0.6));
        mesh.append(&arm);
        let grid = voxelize(
            &mesh,
            &VoxelizeParams {
                resolution: 48,
                ..Default::default()
            },
        );
        let skel = skeletonize(&grid, &ThinningParams::default());
        let g = build_graph(&skel);
        let full = spectral_signature(&g, 32);
        let short = spectral_signature(&g, 3);
        assert_eq!(&full[..3], &short[..]);
    }
}
