//! Iterative topology-preserving 3-D thinning (§3.3 of the paper).
//!
//! The paper extracts a curve skeleton from the voxel model with a
//! thinning algorithm that "retains the topology of the original
//! model". We implement directional iterative thinning: in each pass,
//! border voxels of one of the six face directions are deleted if they
//! are simple points (see [`crate::simple_point`]) and not curve
//! endpoints. Deletions are applied sequentially with re-checking, so
//! every individual deletion is topology-preserving by construction.

use tdess_voxel::VoxelGrid;

use crate::simple_point::{extract_patch, is_simple, object_neighbors};

/// Options for the thinning pass.
#[derive(Debug, Clone, Copy)]
pub struct ThinningParams {
    /// Keep curve endpoints (voxels with exactly one 26-neighbor).
    /// Disabling this shrinks every component without cycles to a
    /// single voxel ("topological kernel").
    pub preserve_endpoints: bool,
    /// Safety cap on full sweeps; thinning of any practical model
    /// terminates far earlier.
    pub max_iterations: usize,
}

impl Default for ThinningParams {
    fn default() -> Self {
        ThinningParams {
            preserve_endpoints: true,
            max_iterations: 10_000,
        }
    }
}

/// The six face directions used for directional sub-iterations.
const DIRECTIONS: [(isize, isize, isize); 6] = [
    (0, 0, 1),
    (0, 0, -1),
    (0, 1, 0),
    (0, -1, 0),
    (1, 0, 0),
    (-1, 0, 0),
];

/// Reusable buffers for [`thin_with`]. A caller that skeletonizes many
/// models (the feature pipeline, benchmarks) keeps one `ThinScratch`
/// and amortizes the candidate-list allocation across queries.
#[derive(Debug, Default)]
pub struct ThinScratch {
    /// Border-voxel candidates for the current directional sub-pass.
    candidates: Vec<(usize, usize, usize)>,
}

/// Thins `grid` in place to a one-voxel-wide curve skeleton.
/// Returns the number of voxels deleted.
pub fn thin(grid: &mut VoxelGrid, params: &ThinningParams) -> usize {
    thin_with(grid, params, &mut ThinScratch::default())
}

/// [`thin`] with caller-owned scratch buffers; bit-identical output.
pub fn thin_with(
    grid: &mut VoxelGrid,
    params: &ThinningParams,
    scratch: &mut ThinScratch,
) -> usize {
    let mut total_deleted = 0usize;

    for _iter in 0..params.max_iterations {
        let mut deleted_this_sweep = 0usize;
        for dir in DIRECTIONS {
            // Candidates: border voxels in this direction.
            // `for_each_filled` walks words in ascending flattened-index
            // order (i fastest, then j, then k) — exactly the order the
            // original k/j/i triple loop visited filled voxels, so the
            // sequential re-checking below sees an identical schedule.
            scratch.candidates.clear();
            let candidates = &mut scratch.candidates;
            let view: &VoxelGrid = grid;
            view.for_each_filled(|i, j, k| {
                if view.get(i as isize + dir.0, j as isize + dir.1, k as isize + dir.2) {
                    return; // not a border voxel for this direction
                }
                candidates.push((i, j, k));
            });
            // Sequential deletion with re-checking keeps every step
            // topology-preserving.
            for &(i, j, k) in scratch.candidates.iter() {
                let patch = extract_patch(|dx, dy, dz| {
                    grid.get(i as isize + dx, j as isize + dy, k as isize + dz)
                });
                if params.preserve_endpoints && object_neighbors(&patch) <= 1 {
                    continue;
                }
                if is_simple(&patch) {
                    grid.set(i, j, k, false);
                    deleted_this_sweep += 1;
                }
            }
        }
        total_deleted += deleted_this_sweep;
        if deleted_this_sweep == 0 {
            break;
        }
    }
    total_deleted
}

/// Convenience: thins a copy and returns it, leaving `grid` untouched.
pub fn skeletonize(grid: &VoxelGrid, params: &ThinningParams) -> VoxelGrid {
    let mut skel = VoxelGrid::new(1, 1, 1, tdess_geom::Vec3::ZERO, 1.0);
    skeletonize_into(grid, params, &mut skel, &mut ThinScratch::default());
    skel
}

/// [`skeletonize`] into caller-owned buffers: copies `grid` into `out`
/// (reusing its bit storage) and thins there with `scratch`. Returns
/// the number of voxels deleted. Output is bit-identical to
/// [`skeletonize`].
pub fn skeletonize_into(
    grid: &VoxelGrid,
    params: &ThinningParams,
    out: &mut VoxelGrid,
    scratch: &mut ThinScratch,
) -> usize {
    let _stage = tdess_obs::StageTimer::start(tdess_obs::Stage::Skeletonize);
    out.copy_from(grid);
    thin_with(out, params, scratch)
}

/// Removes spur branches from a thinned skeleton: any chain that runs
/// from a free endpoint to a junction in fewer than `min_len` voxels
/// is deleted. Repeats until stable (pruning can expose new spurs).
///
/// Spurs are a classic thinning artifact — a thick region sheds short
/// whiskers where the boundary was rough — and they fragment the
/// skeletal graph with fake junctions. Chains connecting two endpoints
/// (whole path components) are never pruned.
///
/// Returns the number of voxels removed.
pub fn prune_spurs(skel: &mut VoxelGrid, min_len: usize) -> usize {
    let (nx, ny, nz) = skel.dims();
    let mut removed = 0usize;
    // hotpath: allow(hot-alloc) — one buffer per call, reused for every chain walk
    let mut path: Vec<(usize, usize, usize)> = Vec::new();
    loop {
        let mut changed = false;
        for k in 0..nz {
            for j in 0..ny {
                for i in 0..nx {
                    if !skel.get(i as isize, j as isize, k as isize) {
                        continue;
                    }
                    if skel.neighbor_count26(i, j, k) != 1 {
                        continue; // not an endpoint
                    }
                    // Walk the chain from this endpoint.
                    path.clear();
                    path.push((i, j, k));
                    let mut prev = (i, j, k);
                    let Some(mut cur) = unique_neighbor(skel, i, j, k, None) else {
                        continue; // endpoint test guarantees one neighbor
                    };
                    loop {
                        let deg = skel.neighbor_count26(cur.0, cur.1, cur.2);
                        if deg >= 3 {
                            // Reached a junction: candidate spur.
                            if path.len() < min_len {
                                for &(x, y, z) in &path {
                                    skel.set(x, y, z, false);
                                }
                                removed += path.len();
                                changed = true;
                            }
                            break;
                        }
                        if deg <= 1 {
                            // Endpoint-to-endpoint: a main path, keep.
                            break;
                        }
                        path.push(cur);
                        let Some(next) = unique_neighbor(skel, cur.0, cur.1, cur.2, Some(prev))
                        else {
                            break; // degree-2 voxel always has a forward neighbor
                        };
                        prev = cur;
                        cur = next;
                    }
                }
            }
        }
        if !changed {
            return removed;
        }
    }
}

/// The unique filled 26-neighbor of `(i, j, k)` other than `skip`
/// (used for walking degree-≤2 chains).
fn unique_neighbor(
    skel: &VoxelGrid,
    i: usize,
    j: usize,
    k: usize,
    skip: Option<(usize, usize, usize)>,
) -> Option<(usize, usize, usize)> {
    for dz in -1..=1isize {
        for dy in -1..=1isize {
            for dx in -1..=1isize {
                if dx == 0 && dy == 0 && dz == 0 {
                    continue;
                }
                let (ni, nj, nk) = (i as isize + dx, j as isize + dy, k as isize + dz);
                if ni < 0 || nj < 0 || nk < 0 {
                    continue;
                }
                let key = (ni as usize, nj as usize, nk as usize);
                if Some(key) == skip {
                    continue;
                }
                if skel.get(ni, nj, nk) {
                    return Some(key);
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdess_geom::{primitives, Vec3};
    use tdess_voxel::{connected_components_26, voxelize, VoxelizeParams};

    fn thin_mesh(mesh: &tdess_geom::TriMesh, res: usize) -> VoxelGrid {
        let grid = voxelize(
            mesh,
            &VoxelizeParams {
                resolution: res,
                ..Default::default()
            },
        );
        skeletonize(&grid, &ThinningParams::default())
    }

    /// Maximum 26-neighbor count over skeleton voxels (thinness proxy).
    fn max_degree(g: &VoxelGrid) -> usize {
        g.iter_filled()
            .map(|(i, j, k)| g.neighbor_count26(i, j, k))
            .max()
            .unwrap_or(0)
    }

    #[test]
    fn rod_thins_to_a_curve() {
        let mesh = primitives::box_mesh(Vec3::new(4.0, 0.5, 0.5));
        let grid = voxelize(
            &mesh,
            &VoxelizeParams {
                resolution: 48,
                ..Default::default()
            },
        );
        let before = grid.count();
        let skel = skeletonize(&grid, &ThinningParams::default());
        let after = skel.count();
        assert!(
            after < before / 5,
            "skeleton kept {after} of {before} voxels"
        );
        // One component, and essentially a path: every voxel has ≤ 2
        // neighbors except possibly tiny junction artifacts.
        assert_eq!(connected_components_26(&skel).count, 1);
        assert!(max_degree(&skel) <= 3, "degree {}", max_degree(&skel));
        // Length comparable to the rod's long axis (48 voxels).
        assert!(after >= 30, "skeleton too short: {after}");
        assert!(after <= 70, "skeleton too long: {after}");
    }

    #[test]
    fn torus_skeleton_is_a_cycle() {
        let mesh = primitives::torus(1.0, 0.28, 48, 20);
        let skel = thin_mesh(&mesh, 40);
        assert_eq!(connected_components_26(&skel).count, 1);
        // A cycle has no endpoints: every voxel has ≥ 2 neighbors.
        for (i, j, k) in skel.iter_filled() {
            assert!(
                skel.neighbor_count26(i, j, k) >= 2,
                "endpoint at ({i},{j},{k}) on torus skeleton"
            );
        }
        assert!(skel.count() > 20, "cycle too short: {}", skel.count());
    }

    #[test]
    fn sphere_without_endpoint_preservation_shrinks_to_point() {
        let mesh = primitives::uv_sphere(0.8, 16, 8);
        let grid = voxelize(
            &mesh,
            &VoxelizeParams {
                resolution: 20,
                ..Default::default()
            },
        );
        let skel = skeletonize(
            &grid,
            &ThinningParams {
                preserve_endpoints: false,
                ..Default::default()
            },
        );
        assert_eq!(skel.count(), 1, "topological kernel of a ball is one voxel");
    }

    #[test]
    fn thinning_preserves_component_count() {
        // Two disjoint boxes stay two components.
        let mut mesh = primitives::box_mesh(Vec3::new(1.0, 0.4, 0.4));
        let mut other = primitives::box_mesh(Vec3::new(1.0, 0.4, 0.4));
        other.translate(Vec3::new(0.0, 2.0, 0.0));
        mesh.append(&other);
        let grid = voxelize(
            &mesh,
            &VoxelizeParams {
                resolution: 32,
                ..Default::default()
            },
        );
        assert_eq!(connected_components_26(&grid).count, 2);
        let skel = skeletonize(&grid, &ThinningParams::default());
        assert_eq!(connected_components_26(&skel).count, 2);
    }

    #[test]
    fn thinning_empty_grid_is_noop() {
        let mut g = VoxelGrid::new(4, 4, 4, Vec3::ZERO, 1.0);
        assert_eq!(thin(&mut g, &ThinningParams::default()), 0);
        assert_eq!(g.count(), 0);
    }

    #[test]
    fn skeletonize_into_reuses_buffers_bit_identically() {
        // A warm output grid + scratch carried across differently-sized
        // shapes must reproduce the cold path bit for bit.
        let meshes = [
            primitives::box_mesh(Vec3::new(3.0, 0.5, 0.5)),
            primitives::torus(1.0, 0.28, 32, 12),
            primitives::uv_sphere(0.8, 16, 8),
        ];
        let mut out = VoxelGrid::new(1, 1, 1, Vec3::ZERO, 1.0);
        let mut scratch = ThinScratch::default();
        for (res, mesh) in [(40usize, &meshes[0]), (28, &meshes[1]), (20, &meshes[2])] {
            let grid = voxelize(
                mesh,
                &VoxelizeParams {
                    resolution: res,
                    ..Default::default()
                },
            );
            let deleted =
                skeletonize_into(&grid, &ThinningParams::default(), &mut out, &mut scratch);
            let fresh = skeletonize(&grid, &ThinningParams::default());
            assert_eq!(out.dims(), fresh.dims());
            assert_eq!(
                out.words(),
                fresh.words(),
                "warm path diverged at res {res}"
            );
            assert_eq!(deleted, grid.count() - fresh.count());
        }
    }

    #[test]
    fn thinning_is_idempotent() {
        let mesh = primitives::box_mesh(Vec3::new(3.0, 0.5, 0.5));
        let grid = voxelize(
            &mesh,
            &VoxelizeParams {
                resolution: 32,
                ..Default::default()
            },
        );
        let skel1 = skeletonize(&grid, &ThinningParams::default());
        let skel2 = skeletonize(&skel1, &ThinningParams::default());
        assert_eq!(skel1.count(), skel2.count(), "second pass deleted voxels");
    }
}
