//! # tdess-skeleton — skeletonization substrate for 3DESS
//!
//! Implements §3.3–3.4 of the paper: topology-preserving iterative
//! thinning of voxel models into curve skeletons, classification of
//! skeleton voxels, construction of the typed skeletal graph (nodes of
//! kind line / curve / loop, edges for joint connectivity), and the
//! eigenvalue signature of the graph's adjacency matrix.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod graph;
pub mod simple_point;
pub mod spectrum;
pub mod thinning;

pub use graph::{build_graph, Segment, SegmentKind, SkeletalGraph};
pub use simple_point::{extract_patch, is_simple, object_neighbors, Patch};
pub use spectrum::{spectral_signature, SPECTRUM_DIM};
pub use thinning::{
    prune_spurs, skeletonize, skeletonize_into, thin, thin_with, ThinScratch, ThinningParams,
};
