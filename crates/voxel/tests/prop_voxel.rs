//! Property tests for voxelization: conservativeness of the fill,
//! agreement between fill strategies, and moment convergence.

use proptest::prelude::*;
use tdess_geom::{primitives, Mat3, Vec3};
use tdess_voxel::{connected_components_26, fill_parity, voxel_moments, voxelize, VoxelizeParams};

fn arb_rotation() -> impl Strategy<Value = Mat3> {
    (
        (-1.0f64..1.0, -1.0f64..1.0, -1.0f64..1.0),
        0.0f64..std::f64::consts::TAU,
    )
        .prop_filter_map("axis too short", |((x, y, z), angle)| {
            Vec3::new(x, y, z)
                .normalized()
                .map(|axis| Mat3::rotation_axis_angle(axis, angle))
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Voxel volume is a conservative overestimate of the exact volume
    /// for arbitrarily rotated boxes, within the surface-shell bound.
    #[test]
    fn voxel_volume_bounds_exact_volume(
        x in 0.4f64..3.0, y in 0.4f64..3.0, z in 0.4f64..3.0,
        r in arb_rotation(),
        res in 20usize..40,
    ) {
        let mut mesh = primitives::box_mesh(Vec3::new(x, y, z));
        mesh.rotate(&r);
        let grid = voxelize(&mesh, &VoxelizeParams { resolution: res, ..Default::default() });
        let exact = x * y * z;
        let voxel = grid.filled_volume();
        prop_assert!(voxel >= exact * 0.98, "voxel {voxel} below exact {exact}");
        // Overestimate bounded by a surface shell of ~2.2 voxel widths
        // (each boundary cell can be grabbed from either side).
        let area = mesh.surface_area();
        let bound = exact + 2.2 * area * grid.voxel_size + 20.0 * grid.voxel_size.powi(3);
        prop_assert!(voxel <= bound, "voxel {voxel} above bound {bound}");
    }

    /// Flood fill and ray-parity fill agree on the interior for rotated
    /// convex solids (disagreements only in the surface shell).
    #[test]
    fn fill_strategies_agree(r in arb_rotation(), res in 20usize..36) {
        let mut mesh = primitives::cylinder(0.6, 1.8, 24);
        mesh.rotate(&r);
        let solid = voxelize(&mesh, &VoxelizeParams { resolution: res, ..Default::default() });
        let shell = voxelize(&mesh, &VoxelizeParams { resolution: res, fill: false, ..Default::default() });
        let parity = fill_parity(&mesh, &solid);
        let (nx, ny, nz) = solid.dims();
        for k in 0..nz {
            for j in 0..ny {
                for i in 0..nx {
                    let s = solid.get(i as isize, j as isize, k as isize);
                    let p = parity.get(i as isize, j as isize, k as isize);
                    let sh = shell.get(i as isize, j as isize, k as isize);
                    if s != p && !sh {
                        prop_assert!(false, "interior fill disagreement at ({i},{j},{k})");
                    }
                }
            }
        }
    }

    /// A voxelized convex solid is one 26-connected component, and the
    /// voxel centroid matches the exact centroid to within two voxels.
    #[test]
    fn voxelization_is_connected_with_correct_centroid(
        r in arb_rotation(),
        tx in -4.0f64..4.0,
        res in 20usize..36,
    ) {
        let mut mesh = primitives::uv_sphere(0.9, 20, 10);
        mesh.rotate(&r);
        mesh.translate(Vec3::new(tx, -tx, tx * 0.5));
        let grid = voxelize(&mesh, &VoxelizeParams { resolution: res, ..Default::default() });
        prop_assert_eq!(connected_components_26(&grid).count, 1);
        let vm = voxel_moments(&grid);
        let vc = vm.centroid();
        let ec = mesh.solid_centroid().expect("sphere has volume");
        prop_assert!(vc.distance(ec) < 2.0 * grid.voxel_size,
            "centroid off by {} ({} voxels)", vc.distance(ec), vc.distance(ec) / grid.voxel_size);
    }
}
