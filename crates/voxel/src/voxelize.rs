//! Mesh → voxel conversion (§3.2 of the paper).
//!
//! Voxelization follows the paper's recipe: bound the model with a box,
//! divide it into a lattice of equal voxels, and mark each voxel that
//! intersects the model. Two complementary fill strategies recover the
//! solid interior:
//!
//! * [`fill_flood`] — flood the *exterior* from the grid boundary
//!   through 6-connected empty voxels and take the complement; robust
//!   for any watertight surface shell (the default).
//! * [`fill_parity`] — per-column ray parity using exact triangle
//!   crossings; used as an independent cross-check in tests.

use tdess_geom::{Aabb, TriMesh, Vec3};

use crate::grid::{VoxelGrid, N6};

/// Parameters controlling voxelization.
#[derive(Debug, Clone, Copy)]
pub struct VoxelizeParams {
    /// Number of voxels along the longest axis of the model's bounding
    /// box (the paper's `N`). Voxels are cubes.
    pub resolution: usize,
    /// Empty voxel layers added around the bounding box so the
    /// exterior stays 6-connected for flood filling.
    pub padding: usize,
    /// Whether to fill the interior after rasterizing the surface.
    pub fill: bool,
}

impl Default for VoxelizeParams {
    fn default() -> Self {
        VoxelizeParams {
            resolution: 64,
            padding: 1,
            fill: true,
        }
    }
}

/// Saturating conversion of a finite cell coordinate to a grid index.
/// Negative coordinates clamp to 0; float → usize `as` saturates at the
/// top end, so the result is always a valid starting index.
#[inline]
fn cell_index(coord: f64) -> usize {
    debug_assert!(coord.is_finite(), "cell coordinate must be finite");
    // lint: allow(lossy-cast) — coordinate is finite and clamped non-negative; the cast saturates
    coord.max(0.0) as usize
}

/// Voxelizes a mesh: rasterizes the surface and (optionally) fills the
/// interior by exterior flood fill.
///
/// ```
/// use tdess_geom::{primitives, Vec3};
/// use tdess_voxel::{voxelize, VoxelizeParams};
///
/// let cube = primitives::box_mesh(Vec3::ONE);
/// let grid = voxelize(&cube, &VoxelizeParams { resolution: 16, ..Default::default() });
/// // Filled volume approximates the exact volume (1.0) from above.
/// assert!(grid.filled_volume() >= 1.0 && grid.filled_volume() < 1.6);
/// ```
pub fn voxelize(mesh: &TriMesh, params: &VoxelizeParams) -> VoxelGrid {
    let mut grid = VoxelGrid::new(1, 1, 1, Vec3::ZERO, 1.0);
    let mut scratch = FloodScratch::default();
    voxelize_into(mesh, params, &mut grid, &mut scratch);
    grid
}

/// [`voxelize`] into caller-provided buffers: the grid is re-dimensioned
/// in place and the flood-fill scratch is reused, so repeated queries
/// stop reallocating the dense occupancy grid. Produces bit-identical
/// results to [`voxelize`].
pub fn voxelize_into(
    mesh: &TriMesh,
    params: &VoxelizeParams,
    grid: &mut VoxelGrid,
    scratch: &mut FloodScratch,
) {
    let _stage = tdess_obs::StageTimer::start(tdess_obs::Stage::Voxelize);
    assert!(params.resolution >= 2, "resolution must be at least 2");
    let bb = mesh.bounding_box();
    assert!(!bb.is_empty(), "cannot voxelize an empty mesh");
    let extent = bb.extent();
    let longest = extent.max_element().max(1e-12);
    let voxel_size = longest / params.resolution as f64;

    let pad = params.padding as f64 * voxel_size;
    let origin = bb.min - Vec3::splat(pad);
    let cells = |e: f64| cell_index((e / voxel_size).ceil()).max(1) + 2 * params.padding;
    let (nx, ny, nz) = (cells(extent.x), cells(extent.y), cells(extent.z));

    grid.reset(nx, ny, nz, origin, voxel_size);
    rasterize_surface(mesh, grid);
    if params.fill {
        fill_flood_with(grid, scratch);
    }
}

/// Reusable flood-fill buffers for [`voxelize_into`] /
/// [`fill_flood_with`]: the exterior bitset and the DFS stack survive
/// across queries.
#[derive(Debug, Default)]
pub struct FloodScratch {
    /// Bit-packed "reached from the exterior" flags, same word layout
    /// as [`VoxelGrid::words`].
    outside: Vec<u64>,
    stack: Vec<(u32, u32, u32)>,
}

/// Marks every voxel whose cube overlaps some triangle of the mesh.
pub fn rasterize_surface(mesh: &TriMesh, grid: &mut VoxelGrid) {
    let (nx, ny, nz) = grid.dims();
    let vs = grid.voxel_size;
    let half = Vec3::splat(vs * 0.5);
    for tri in mesh.triangle_iter() {
        let tb = Aabb::from_points(tri);
        // Voxel index range overlapped by the triangle's AABB,
        // expanded by one voxel on each side so triangles lying exactly
        // on a voxel boundary are tested against both adjacent layers
        // (floating-point rounding must never drop a layer).
        let lo = (tb.min - grid.origin) / vs;
        let hi = (tb.max - grid.origin) / vs;
        let i0 = cell_index(lo.x.floor() - 1.0);
        let j0 = cell_index(lo.y.floor() - 1.0);
        let k0 = cell_index(lo.z.floor() - 1.0);
        let i1 = cell_index(hi.x.floor() + 1.0).min(nx - 1);
        let j1 = cell_index(hi.y.floor() + 1.0).min(ny - 1);
        let k1 = cell_index(hi.z.floor() + 1.0).min(nz - 1);
        for k in k0..=k1 {
            for j in j0..=j1 {
                for i in i0..=i1 {
                    if grid.get(i as isize, j as isize, k as isize) {
                        continue;
                    }
                    let center = grid.voxel_center(i, j, k);
                    if tri_box_overlap(center, half, tri) {
                        grid.set(i, j, k, true);
                    }
                }
            }
        }
    }
}

/// Fills the interior: flood-fills the exterior from all boundary
/// voxels through empty 6-connected space, then sets everything not
/// reached. Assumes the surface shell separates inside from outside
/// (watertight mesh, adequate resolution, padding ≥ 1).
pub fn fill_flood(grid: &mut VoxelGrid) {
    let mut scratch = FloodScratch::default();
    fill_flood_with(grid, &mut scratch);
}

/// [`fill_flood`] with caller-provided scratch buffers (the warm path —
/// no allocation once the buffers have grown to the working size).
pub fn fill_flood_with(grid: &mut VoxelGrid, scratch: &mut FloodScratch) {
    let (nx, ny, nz) = grid.dims();
    let n = nx * ny * nz;
    let FloodScratch { outside, stack } = scratch;
    outside.clear();
    outside.resize(n.div_ceil(64), 0);
    stack.clear();

    let idx = |i: usize, j: usize, k: usize| i + nx * (j + ny * k);
    let tested = |outside: &[u64], id: usize| (outside[id / 64] >> (id % 64)) & 1 == 1;

    // Seed with all empty boundary voxels.
    let seed = |i: usize,
                j: usize,
                k: usize,
                grid: &VoxelGrid,
                outside: &mut [u64],
                stack: &mut Vec<(u32, u32, u32)>| {
        let id = idx(i, j, k);
        if !grid.get(i as isize, j as isize, k as isize) && !tested(outside, id) {
            outside[id / 64] |= 1 << (id % 64);
            stack.push((i as u32, j as u32, k as u32));
        }
    };
    for j in 0..ny {
        for i in 0..nx {
            seed(i, j, 0, grid, outside, stack);
            seed(i, j, nz - 1, grid, outside, stack);
        }
    }
    for k in 0..nz {
        for i in 0..nx {
            seed(i, 0, k, grid, outside, stack);
            seed(i, ny - 1, k, grid, outside, stack);
        }
        for j in 0..ny {
            seed(0, j, k, grid, outside, stack);
            seed(nx - 1, j, k, grid, outside, stack);
        }
    }

    while let Some((i, j, k)) = stack.pop() {
        let (i, j, k) = (i as usize, j as usize, k as usize);
        for d in N6 {
            let (ni, nj, nk) = (i as isize + d.0, j as isize + d.1, k as isize + d.2);
            if ni < 0 || nj < 0 || nk < 0 {
                continue;
            }
            let (ni, nj, nk) = (ni as usize, nj as usize, nk as usize);
            if ni >= nx || nj >= ny || nk >= nz {
                continue;
            }
            let id = idx(ni, nj, nk);
            if !grid.get(ni as isize, nj as isize, nk as isize) && !tested(outside, id) {
                outside[id / 64] |= 1 << (id % 64);
                stack.push((ni as u32, nj as u32, nk as u32));
            }
        }
    }

    // Everything not reached from the exterior is interior (or
    // surface): set it. The exterior bitset shares the grid's word
    // layout, so this is a word-wise OR of the complement, with the
    // tail beyond `len()` kept zero.
    let words = grid.words_mut();
    for (w, out) in words.iter_mut().zip(outside.iter()) {
        *w |= !out;
    }
    let tail = n % 64;
    if tail != 0 {
        let last = words.len() - 1;
        words[last] &= (1u64 << tail) - 1;
    }
}

/// Fills the interior by per-column parity counting: for every (i, j)
/// column, casts a +z ray through the voxel-center line and toggles
/// inside/outside at each triangle crossing. Returns a fresh grid
/// (surface voxels are *not* included unless parity covers them).
pub fn fill_parity(mesh: &TriMesh, grid: &VoxelGrid) -> VoxelGrid {
    let (nx, ny, nz) = grid.dims();
    let mut out = VoxelGrid::new(nx, ny, nz, grid.origin, grid.voxel_size);
    // Tiny deterministic offset avoids rays passing exactly through
    // vertices/edges of axis-aligned geometry.
    let eps = grid.voxel_size * 1e-4;

    // Bucket triangles by the columns their xy-projections touch.
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); nx * ny];
    for (t, tri) in mesh.triangle_iter().enumerate() {
        let bb = Aabb::from_points(tri);
        let lo = (bb.min - grid.origin) / grid.voxel_size;
        let hi = (bb.max - grid.origin) / grid.voxel_size;
        let i0 = cell_index(lo.x.floor());
        let j0 = cell_index(lo.y.floor());
        let i1 = cell_index(hi.x.floor()).min(nx - 1);
        let j1 = cell_index(hi.y.floor()).min(ny - 1);
        for j in j0..=j1 {
            for i in i0..=i1 {
                buckets[i + nx * j].push(t as u32);
            }
        }
    }

    for j in 0..ny {
        for i in 0..nx {
            let tris = &buckets[i + nx * j];
            if tris.is_empty() {
                continue;
            }
            let c = grid.voxel_center(i, j, 0);
            let (rx, ry) = (c.x + eps, c.y + eps * 0.7);
            // Collect z-crossings of the vertical line (rx, ry, ·).
            let mut crossings: Vec<f64> = Vec::new();
            for &t in tris {
                let [a, b, cc] = mesh.triangle(t as usize);
                if let Some(z) = ray_z_crossing(rx, ry, a, b, cc) {
                    crossings.push(z);
                }
            }
            crossings.sort_by(|x, y| x.total_cmp(y));
            crossings.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
            if !crossings.len().is_multiple_of(2) {
                // Degenerate hit (grazing edge); skip this column — the
                // flood fill remains the authoritative result.
                continue;
            }
            // Walk the column, toggling at crossings.
            let mut ci = 0;
            for k in 0..nz {
                let z = grid.voxel_center(i, j, k).z;
                while ci < crossings.len() && crossings[ci] < z {
                    ci += 1;
                }
                if ci % 2 == 1 {
                    out.set(i, j, k, true);
                }
            }
        }
    }
    out
}

/// Intersection z of the vertical line through (x, y) with triangle
/// (a, b, c), if the line pierces the triangle's xy-projection.
fn ray_z_crossing(x: f64, y: f64, a: Vec3, b: Vec3, c: Vec3) -> Option<f64> {
    // Barycentric coordinates in the xy-plane.
    let d = (b.y - c.y) * (a.x - c.x) + (c.x - b.x) * (a.y - c.y);
    if d.abs() < 1e-300 {
        return None; // triangle is vertical in projection
    }
    let w0 = ((b.y - c.y) * (x - c.x) + (c.x - b.x) * (y - c.y)) / d;
    let w1 = ((c.y - a.y) * (x - c.x) + (a.x - c.x) * (y - c.y)) / d;
    let w2 = 1.0 - w0 - w1;
    if w0 < 0.0 || w1 < 0.0 || w2 < 0.0 {
        return None;
    }
    Some(w0 * a.z + w1 * b.z + w2 * c.z)
}

/// Separating-axis triangle/axis-aligned-box overlap test
/// (Akenine-Möller). `center` and `half` describe the box; `tri` the
/// triangle corners in world space.
pub fn tri_box_overlap(center: Vec3, half: Vec3, tri: [Vec3; 3]) -> bool {
    // Pad the box by a relative epsilon so triangles lying exactly on a
    // box face still register as overlapping despite floating-point
    // rounding in the translation below.
    let eps = (center.abs().max_element() + half.max_element() + 1.0) * 1e-12;
    let half = half + Vec3::splat(eps);
    // Translate so the box is at the origin.
    let v0 = tri[0] - center;
    let v1 = tri[1] - center;
    let v2 = tri[2] - center;

    let e0 = v1 - v0;
    let e1 = v2 - v1;
    let e2 = v0 - v2;

    // 1. Box axes (x, y, z): test triangle AABB against box.
    let max3 = |a: f64, b: f64, c: f64| a.max(b).max(c);
    let min3 = |a: f64, b: f64, c: f64| a.min(b).min(c);
    if min3(v0.x, v1.x, v2.x) > half.x || max3(v0.x, v1.x, v2.x) < -half.x {
        return false;
    }
    if min3(v0.y, v1.y, v2.y) > half.y || max3(v0.y, v1.y, v2.y) < -half.y {
        return false;
    }
    if min3(v0.z, v1.z, v2.z) > half.z || max3(v0.z, v1.z, v2.z) < -half.z {
        return false;
    }

    // 2. Triangle plane normal.
    let normal = e0.cross(e1);
    let d = -normal.dot(v0);
    let r = half.x * normal.x.abs() + half.y * normal.y.abs() + half.z * normal.z.abs();
    if d.abs() > r {
        return false;
    }

    // 3. Nine cross-product axes a_ij = e_i × box_axis_j.
    let axis_test = |axis: Vec3| -> bool {
        // Degenerate axis (edge parallel to box axis): skip.
        let r = half.x * axis.x.abs() + half.y * axis.y.abs() + half.z * axis.z.abs();
        let p0 = axis.dot(v0);
        let p1 = axis.dot(v1);
        let p2 = axis.dot(v2);
        let lo = min3(p0, p1, p2);
        let hi = max3(p0, p1, p2);
        lo <= r && hi >= -r
    };
    for e in [e0, e1, e2] {
        if !axis_test(Vec3::new(0.0, -e.z, e.y)) {
            return false; // X × e
        }
        if !axis_test(Vec3::new(e.z, 0.0, -e.x)) {
            return false; // Y × e
        }
        if !axis_test(Vec3::new(-e.y, e.x, 0.0)) {
            return false; // Z × e
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdess_geom::primitives;

    #[test]
    fn tri_box_overlap_basics() {
        let half = Vec3::splat(0.5);
        let c = Vec3::ZERO;
        // Triangle through the box center.
        assert!(tri_box_overlap(
            c,
            half,
            [
                Vec3::new(-1.0, 0.0, 0.0),
                Vec3::new(1.0, 0.1, 0.0),
                Vec3::new(0.0, 1.0, 0.2)
            ]
        ));
        // Triangle far away.
        assert!(!tri_box_overlap(
            c,
            half,
            [
                Vec3::new(5.0, 5.0, 5.0),
                Vec3::new(6.0, 5.0, 5.0),
                Vec3::new(5.0, 6.0, 5.0)
            ]
        ));
        // Large triangle whose plane misses the box (separating axis =
        // normal).
        assert!(!tri_box_overlap(
            c,
            half,
            [
                Vec3::new(-10.0, -10.0, 2.0),
                Vec3::new(10.0, -10.0, 2.0),
                Vec3::new(0.0, 10.0, 2.0)
            ]
        ));
        // Large triangle whose plane cuts the box but whose projection
        // excludes it — tests the cross-product axes.
        assert!(!tri_box_overlap(
            c,
            half,
            [
                Vec3::new(2.0, -1.0, 0.0),
                Vec3::new(3.0, 1.0, 0.0),
                Vec3::new(2.5, 0.0, 1.0)
            ]
        ));
    }

    #[test]
    fn voxelized_cube_volume_converges() {
        let mesh = primitives::box_mesh(Vec3::ONE);
        let grid = voxelize(
            &mesh,
            &VoxelizeParams {
                resolution: 32,
                ..Default::default()
            },
        );
        let v = grid.filled_volume();
        // Volume overestimates slightly (surface voxels), but should be
        // within ~2 voxel layers.
        assert!(v >= 1.0, "filled volume {v} below exact");
        assert!(v < 1.35, "filled volume {v} too large");
    }

    #[test]
    fn higher_resolution_tightens_volume() {
        let mesh = primitives::uv_sphere(1.0, 32, 16);
        let exact = 4.0 / 3.0 * std::f64::consts::PI;
        let mut prev_err = f64::INFINITY;
        for res in [16, 32, 64] {
            let grid = voxelize(
                &mesh,
                &VoxelizeParams {
                    resolution: res,
                    ..Default::default()
                },
            );
            let err = (grid.filled_volume() - exact).abs() / exact;
            assert!(
                err < prev_err,
                "resolution {res}: error {err} vs {prev_err}"
            );
            prev_err = err;
        }
        assert!(prev_err < 0.1, "residual error {prev_err}");
    }

    #[test]
    fn hollow_vs_filled_cube() {
        let mesh = primitives::box_mesh(Vec3::ONE);
        let shell = voxelize(
            &mesh,
            &VoxelizeParams {
                resolution: 24,
                fill: false,
                ..Default::default()
            },
        );
        let solid = voxelize(
            &mesh,
            &VoxelizeParams {
                resolution: 24,
                fill: true,
                ..Default::default()
            },
        );
        assert!(solid.count() > shell.count(), "fill added interior voxels");
        // Interior voxel is filled only in the solid version.
        let center = solid.world_to_voxel(Vec3::ZERO).unwrap();
        assert!(solid.get(center.0 as isize, center.1 as isize, center.2 as isize));
        assert!(!shell.get(center.0 as isize, center.1 as isize, center.2 as isize));
    }

    #[test]
    fn parity_fill_agrees_with_flood_fill() {
        for mesh in [
            primitives::box_mesh(Vec3::new(1.0, 0.7, 0.4)),
            primitives::uv_sphere(0.8, 24, 12),
            primitives::cylinder(0.5, 1.2, 24),
        ] {
            let solid = voxelize(
                &mesh,
                &VoxelizeParams {
                    resolution: 32,
                    ..Default::default()
                },
            );
            let parity = fill_parity(&mesh, &solid);
            // Parity fill excludes pure-surface voxels, so it is a
            // subset; the difference is at most the surface shell.
            let shell = voxelize(
                &mesh,
                &VoxelizeParams {
                    resolution: 32,
                    fill: false,
                    ..Default::default()
                },
            );
            let mut mismatch = 0usize;
            let (nx, ny, nz) = solid.dims();
            for k in 0..nz {
                for j in 0..ny {
                    for i in 0..nx {
                        let s = solid.get(i as isize, j as isize, k as isize);
                        let p = parity.get(i as isize, j as isize, k as isize);
                        let sh = shell.get(i as isize, j as isize, k as isize);
                        if s != p && !sh {
                            mismatch += 1;
                        }
                    }
                }
            }
            assert_eq!(mismatch, 0, "interior disagreement between fills");
        }
    }

    #[test]
    fn voxelize_into_reuses_buffers_bit_identically() {
        let meshes = [
            primitives::box_mesh(Vec3::new(1.0, 0.7, 0.4)),
            primitives::uv_sphere(0.8, 24, 12),
            primitives::box_mesh(Vec3::ONE),
        ];
        let params = VoxelizeParams {
            resolution: 24,
            ..Default::default()
        };
        let mut grid = VoxelGrid::new(1, 1, 1, Vec3::ZERO, 1.0);
        let mut scratch = FloodScratch::default();
        // Run the warm path repeatedly over different shapes (buffer
        // shrink and grow) and compare against fresh voxelization.
        for mesh in &meshes {
            voxelize_into(mesh, &params, &mut grid, &mut scratch);
            let fresh = voxelize(mesh, &params);
            assert_eq!(grid.dims(), fresh.dims());
            assert_eq!(grid.words(), fresh.words(), "warm path diverged");
        }
    }

    #[test]
    fn torus_hole_not_filled() {
        let mesh = primitives::torus(1.0, 0.3, 32, 16);
        let grid = voxelize(
            &mesh,
            &VoxelizeParams {
                resolution: 48,
                ..Default::default()
            },
        );
        // The voxel at the torus center must stay empty.
        let c = grid.world_to_voxel(Vec3::ZERO).unwrap();
        assert!(!grid.get(c.0 as isize, c.1 as isize, c.2 as isize));
        // Volume close to exact.
        let exact = 2.0 * std::f64::consts::PI.powi(2) * 1.0 * 0.09;
        let err = (grid.filled_volume() - exact).abs() / exact;
        assert!(err < 0.25, "torus volume error {err}");
    }

    #[test]
    #[should_panic(expected = "resolution")]
    fn tiny_resolution_rejected() {
        let mesh = primitives::box_mesh(Vec3::ONE);
        let _ = voxelize(
            &mesh,
            &VoxelizeParams {
                resolution: 1,
                ..Default::default()
            },
        );
    }
}
