//! # tdess-voxel — voxelization substrate for 3DESS
//!
//! Implements §3.2 of the paper: converting triangle meshes into
//! bit-packed `N³` occupancy grids (surface rasterization via
//! separating-axis triangle/box tests, interior recovery via exterior
//! flood fill or ray parity), plus the discrete analysis the feature
//! extractors need (voxel moments, exposed surface area, connected
//! components).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod grid;
pub mod voxelize;

pub use analysis::{
    connected_components_26, connected_components_6, exposed_surface_area, voxel_centroid,
    voxel_moments, Components,
};
pub use grid::{n26, VoxelGrid, N18, N6};
pub use voxelize::{
    fill_flood, fill_flood_with, fill_parity, rasterize_surface, tri_box_overlap, voxelize,
    voxelize_into, FloodScratch, VoxelizeParams,
};
