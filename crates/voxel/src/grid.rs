//! Bit-packed 3-D occupancy grids.

use serde::{Deserialize, Serialize};

use tdess_geom::{Aabb, Vec3};

/// A dense, bit-packed voxel occupancy grid.
///
/// Voxels are axis-aligned cubes (or boxes) of size `voxel_size`,
/// arranged in an `nx × ny × nz` lattice anchored at `origin` (the
/// minimum corner of voxel `(0,0,0)`). A set bit means the voxel
/// intersects the solid — the paper's discrete density function
/// `f(i,j,k) ∈ {0,1}` (Eq. 3.5).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VoxelGrid {
    nx: usize,
    ny: usize,
    nz: usize,
    /// Minimum corner of the grid in world space.
    pub origin: Vec3,
    /// Edge length of each voxel (cubic voxels).
    pub voxel_size: f64,
    bits: Vec<u64>,
}

impl VoxelGrid {
    /// Creates an empty grid of the given dimensions.
    pub fn new(nx: usize, ny: usize, nz: usize, origin: Vec3, voxel_size: f64) -> VoxelGrid {
        assert!(
            nx > 0 && ny > 0 && nz > 0,
            "grid dimensions must be positive"
        );
        assert!(voxel_size > 0.0, "voxel size must be positive");
        let words = (nx * ny * nz).div_ceil(64);
        VoxelGrid {
            nx,
            ny,
            nz,
            origin,
            voxel_size,
            // hotpath: allow(hot-alloc) — constructor of the grid's backing store, hot callers reuse via reset
            bits: vec![0; words],
        }
    }

    /// Reinitializes the grid in place to the given dimensions, with
    /// every voxel empty. Equivalent to `*self = VoxelGrid::new(...)`
    /// but reuses the existing bit storage — the warm path for
    /// repeated extraction.
    pub fn reset(&mut self, nx: usize, ny: usize, nz: usize, origin: Vec3, voxel_size: f64) {
        assert!(
            nx > 0 && ny > 0 && nz > 0,
            "grid dimensions must be positive"
        );
        assert!(voxel_size > 0.0, "voxel size must be positive");
        let words = (nx * ny * nz).div_ceil(64);
        self.bits.clear();
        self.bits.resize(words, 0);
        self.nx = nx;
        self.ny = ny;
        self.nz = nz;
        self.origin = origin;
        self.voxel_size = voxel_size;
    }

    /// Makes `self` an exact copy of `other`, reusing storage.
    pub fn copy_from(&mut self, other: &VoxelGrid) {
        self.nx = other.nx;
        self.ny = other.ny;
        self.nz = other.nz;
        self.origin = other.origin;
        self.voxel_size = other.voxel_size;
        self.bits.clear();
        self.bits.extend_from_slice(&other.bits);
    }

    /// Grid dimensions `(nx, ny, nz)`.
    #[inline]
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.nx, self.ny, self.nz)
    }

    /// The raw occupancy words: bit `idx` of the flattened index
    /// `idx = i + nx*(j + ny*k)` lives at `words()[idx / 64]`, bit
    /// `idx % 64`. Bits at `len()..` are always zero.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.bits
    }

    /// Mutable raw word access for same-crate bulk operations. Callers
    /// must keep the tail bits beyond [`len`](Self::len) zero.
    #[inline]
    pub(crate) fn words_mut(&mut self) -> &mut [u64] {
        &mut self.bits
    }

    /// Total number of voxels.
    #[inline]
    pub fn len(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// Returns `true` if the grid has no voxels set.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }

    #[inline]
    fn index(&self, i: usize, j: usize, k: usize) -> usize {
        debug_assert!(i < self.nx && j < self.ny && k < self.nz);
        i + self.nx * (j + self.ny * k)
    }

    /// Reads voxel `(i, j, k)`. Out-of-range coordinates read as empty.
    #[inline]
    pub fn get(&self, i: isize, j: isize, k: isize) -> bool {
        if i < 0 || j < 0 || k < 0 {
            return false;
        }
        let (i, j, k) = (i as usize, j as usize, k as usize);
        if i >= self.nx || j >= self.ny || k >= self.nz {
            return false;
        }
        let idx = self.index(i, j, k);
        (self.bits[idx / 64] >> (idx % 64)) & 1 == 1
    }

    /// Sets voxel `(i, j, k)` to `value`. Panics when out of range.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, k: usize, value: bool) {
        let idx = self.index(i, j, k);
        if value {
            self.bits[idx / 64] |= 1 << (idx % 64);
        } else {
            self.bits[idx / 64] &= !(1 << (idx % 64));
        }
    }

    /// Number of filled voxels.
    pub fn count(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// World-space center of voxel `(i, j, k)`.
    #[inline]
    pub fn voxel_center(&self, i: usize, j: usize, k: usize) -> Vec3 {
        self.origin
            + Vec3::new(
                (i as f64 + 0.5) * self.voxel_size,
                (j as f64 + 0.5) * self.voxel_size,
                (k as f64 + 0.5) * self.voxel_size,
            )
    }

    /// Grid coordinates of the voxel containing the world-space point
    /// `p`, or `None` if outside the grid.
    pub fn world_to_voxel(&self, p: Vec3) -> Option<(usize, usize, usize)> {
        let q = (p - self.origin) / self.voxel_size;
        if q.x < 0.0 || q.y < 0.0 || q.z < 0.0 {
            return None;
        }
        let (i, j, k) = (q.x as usize, q.y as usize, q.z as usize);
        if i >= self.nx || j >= self.ny || k >= self.nz {
            return None;
        }
        Some((i, j, k))
    }

    /// World-space bounding box of the whole grid.
    pub fn world_bounds(&self) -> Aabb {
        Aabb::new(
            self.origin,
            self.origin
                + Vec3::new(
                    self.nx as f64 * self.voxel_size,
                    self.ny as f64 * self.voxel_size,
                    self.nz as f64 * self.voxel_size,
                ),
        )
    }

    /// Iterates over the coordinates of all filled voxels.
    pub fn iter_filled(&self) -> impl Iterator<Item = (usize, usize, usize)> + '_ {
        let (nx, ny) = (self.nx, self.ny);
        (0..self.len()).filter_map(move |idx| {
            if (self.bits[idx / 64] >> (idx % 64)) & 1 == 1 {
                let i = idx % nx;
                let j = (idx / nx) % ny;
                let k = idx / (nx * ny);
                Some((i, j, k))
            } else {
                None
            }
        })
    }

    /// Calls `f(i, j, k)` for every filled voxel in ascending
    /// flattened-index order — identical to the nested `k`/`j`/`i`
    /// loops used throughout (`i` fastest), but skipping empty 64-bit
    /// words, which dominates on the sparse grids late in thinning.
    #[inline]
    pub fn for_each_filled(&self, mut f: impl FnMut(usize, usize, usize)) {
        let (nx, ny) = (self.nx, self.ny);
        for (w, &bits) in self.bits.iter().enumerate() {
            let mut word = bits;
            while word != 0 {
                let idx = w * 64 + word.trailing_zeros() as usize;
                f(idx % nx, (idx / nx) % ny, idx / (nx * ny));
                word &= word - 1;
            }
        }
    }

    /// Volume of the filled region (count × voxel volume).
    pub fn filled_volume(&self) -> f64 {
        self.count() as f64 * self.voxel_size.powi(3)
    }

    /// Inverts every voxel in place.
    pub fn invert(&mut self) {
        let n = self.len();
        for w in &mut self.bits {
            *w = !*w;
        }
        // Clear the tail bits beyond len.
        let tail = n % 64;
        if tail != 0 {
            let last = self.bits.len() - 1;
            self.bits[last] &= (1u64 << tail) - 1;
        }
    }

    /// Number of 6-connected neighbors of `(i, j, k)` that are filled.
    pub fn neighbor_count6(&self, i: usize, j: usize, k: usize) -> usize {
        let (i, j, k) = (i as isize, j as isize, k as isize);
        N6.iter()
            .filter(|d| self.get(i + d.0, j + d.1, k + d.2))
            .count()
    }

    /// Number of 26-connected neighbors of `(i, j, k)` that are filled.
    pub fn neighbor_count26(&self, i: usize, j: usize, k: usize) -> usize {
        let (i, j, k) = (i as isize, j as isize, k as isize);
        let mut n = 0;
        for dz in -1..=1isize {
            for dy in -1..=1isize {
                for dx in -1..=1isize {
                    if dx == 0 && dy == 0 && dz == 0 {
                        continue;
                    }
                    if self.get(i + dx, j + dy, k + dz) {
                        n += 1;
                    }
                }
            }
        }
        n
    }
}

/// Offsets of the 6 face-adjacent neighbors.
pub const N6: [(isize, isize, isize); 6] = [
    (1, 0, 0),
    (-1, 0, 0),
    (0, 1, 0),
    (0, -1, 0),
    (0, 0, 1),
    (0, 0, -1),
];

/// Offsets of the 18 face- and edge-adjacent neighbors.
pub const N18: [(isize, isize, isize); 18] = [
    (1, 0, 0),
    (-1, 0, 0),
    (0, 1, 0),
    (0, -1, 0),
    (0, 0, 1),
    (0, 0, -1),
    (1, 1, 0),
    (1, -1, 0),
    (-1, 1, 0),
    (-1, -1, 0),
    (1, 0, 1),
    (1, 0, -1),
    (-1, 0, 1),
    (-1, 0, -1),
    (0, 1, 1),
    (0, 1, -1),
    (0, -1, 1),
    (0, -1, -1),
];

/// Offsets of all 26 neighbors in the 3×3×3 block.
pub fn n26() -> impl Iterator<Item = (isize, isize, isize)> {
    (-1..=1isize).flat_map(move |dz| {
        (-1..=1isize).flat_map(move |dy| {
            (-1..=1isize).filter_map(move |dx| {
                if dx == 0 && dy == 0 && dz == 0 {
                    None
                } else {
                    Some((dx, dy, dz))
                }
            })
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut g = VoxelGrid::new(5, 7, 3, Vec3::ZERO, 1.0);
        assert_eq!(g.count(), 0);
        assert!(g.is_empty());
        g.set(0, 0, 0, true);
        g.set(4, 6, 2, true);
        g.set(2, 3, 1, true);
        assert!(g.get(0, 0, 0));
        assert!(g.get(4, 6, 2));
        assert!(g.get(2, 3, 1));
        assert!(!g.get(1, 0, 0));
        assert_eq!(g.count(), 3);
        g.set(2, 3, 1, false);
        assert_eq!(g.count(), 2);
    }

    #[test]
    fn out_of_range_reads_empty() {
        let mut g = VoxelGrid::new(2, 2, 2, Vec3::ZERO, 1.0);
        g.set(1, 1, 1, true);
        assert!(!g.get(-1, 0, 0));
        assert!(!g.get(2, 0, 0));
        assert!(!g.get(0, 0, 5));
    }

    #[test]
    fn voxel_center_and_world_roundtrip() {
        let g = VoxelGrid::new(4, 4, 4, Vec3::new(1.0, 2.0, 3.0), 0.5);
        let c = g.voxel_center(0, 0, 0);
        assert!(c.approx_eq(Vec3::new(1.25, 2.25, 3.25), 1e-15));
        assert_eq!(g.world_to_voxel(c), Some((0, 0, 0)));
        assert_eq!(g.world_to_voxel(g.voxel_center(3, 2, 1)), Some((3, 2, 1)));
        assert_eq!(g.world_to_voxel(Vec3::ZERO), None);
        assert_eq!(g.world_to_voxel(Vec3::new(3.1, 2.1, 3.1)), None);
    }

    #[test]
    fn iter_filled_yields_set_voxels() {
        let mut g = VoxelGrid::new(3, 3, 3, Vec3::ZERO, 1.0);
        let want = [(0, 0, 0), (1, 2, 0), (2, 2, 2)];
        for &(i, j, k) in &want {
            g.set(i, j, k, true);
        }
        let got: Vec<_> = g.iter_filled().collect();
        assert_eq!(got.len(), 3);
        for w in want {
            assert!(got.contains(&w));
        }
    }

    #[test]
    fn invert_flips_and_preserves_tail() {
        let mut g = VoxelGrid::new(3, 3, 3, Vec3::ZERO, 1.0); // 27 bits < 64
        g.set(1, 1, 1, true);
        g.invert();
        assert_eq!(g.count(), 26);
        assert!(!g.get(1, 1, 1));
        g.invert();
        assert_eq!(g.count(), 1);
    }

    #[test]
    fn neighbor_counts() {
        let mut g = VoxelGrid::new(3, 3, 3, Vec3::ZERO, 1.0);
        // Fill the whole grid.
        for k in 0..3 {
            for j in 0..3 {
                for i in 0..3 {
                    g.set(i, j, k, true);
                }
            }
        }
        assert_eq!(g.neighbor_count6(1, 1, 1), 6);
        assert_eq!(g.neighbor_count26(1, 1, 1), 26);
        assert_eq!(g.neighbor_count6(0, 0, 0), 3);
        assert_eq!(g.neighbor_count26(0, 0, 0), 7);
    }

    #[test]
    fn filled_volume_scales_with_voxel_size() {
        let mut g = VoxelGrid::new(2, 2, 2, Vec3::ZERO, 0.5);
        g.set(0, 0, 0, true);
        g.set(1, 1, 1, true);
        assert!((g.filled_volume() - 2.0 * 0.125).abs() < 1e-15);
    }

    #[test]
    fn reset_matches_fresh_grid_and_clears_old_bits() {
        let mut g = VoxelGrid::new(5, 7, 3, Vec3::ZERO, 1.0);
        g.set(4, 6, 2, true);
        g.reset(3, 3, 3, Vec3::new(1.0, 2.0, 3.0), 0.5);
        let fresh = VoxelGrid::new(3, 3, 3, Vec3::new(1.0, 2.0, 3.0), 0.5);
        assert_eq!(g.dims(), fresh.dims());
        assert_eq!(g.words(), fresh.words());
        assert_eq!(g.count(), 0);
        // Growing again also works.
        g.reset(8, 8, 8, Vec3::ZERO, 1.0);
        assert_eq!(g.count(), 0);
        assert_eq!(
            g.words().len(),
            VoxelGrid::new(8, 8, 8, Vec3::ZERO, 1.0).words().len()
        );
    }

    #[test]
    fn copy_from_duplicates_everything() {
        let mut src = VoxelGrid::new(4, 5, 6, Vec3::new(0.5, 0.0, 0.0), 0.25);
        src.set(3, 4, 5, true);
        src.set(0, 0, 0, true);
        let mut dst = VoxelGrid::new(1, 1, 1, Vec3::ZERO, 1.0);
        dst.copy_from(&src);
        assert_eq!(dst.dims(), src.dims());
        assert_eq!(dst.words(), src.words());
        assert!(dst.get(3, 4, 5));
        assert!((dst.voxel_size - 0.25).abs() < 1e-15);
    }

    #[test]
    fn for_each_filled_matches_iter_filled_in_order() {
        let mut g = VoxelGrid::new(9, 5, 4, Vec3::ZERO, 1.0);
        for &(i, j, k) in &[(0, 0, 0), (8, 4, 3), (5, 2, 1), (1, 0, 2), (7, 3, 0)] {
            g.set(i, j, k, true);
        }
        let mut via_words = Vec::new();
        g.for_each_filled(|i, j, k| via_words.push((i, j, k)));
        let via_scan: Vec<_> = g.iter_filled().collect();
        assert_eq!(via_words, via_scan);
    }

    #[test]
    fn neighbor_offset_tables() {
        assert_eq!(N6.len(), 6);
        assert_eq!(N18.len(), 18);
        assert_eq!(n26().count(), 26);
        // N18 includes all of N6.
        for d in N6 {
            assert!(N18.contains(&d));
        }
    }
}
