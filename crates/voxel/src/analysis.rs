//! Discrete analysis of voxel models: moments, surface area, and
//! connected components.

use tdess_geom::{Moments, Vec3};

use crate::grid::{VoxelGrid, N6};

/// Computes the discrete volume moments of a voxel model, treating
/// each filled voxel as a point mass `voxel_size³` at its center
/// (Eq. 3.1 evaluated on the paper's discrete density function).
///
/// For second-order moments the voxel's own spread contributes
/// `voxel_size²/12` per axis, which is included so the discrete result
/// converges to the exact polyhedral moments as resolution grows.
pub fn voxel_moments(grid: &VoxelGrid) -> Moments {
    let dv = grid.voxel_size.powi(3);
    let self_term = grid.voxel_size * grid.voxel_size / 12.0;
    let mut m = Moments::default();
    for (i, j, k) in grid.iter_filled() {
        let c = grid.voxel_center(i, j, k);
        m.m000 += dv;
        m.m100 += dv * c.x;
        m.m010 += dv * c.y;
        m.m001 += dv * c.z;
        m.m200 += dv * (c.x * c.x + self_term);
        m.m020 += dv * (c.y * c.y + self_term);
        m.m002 += dv * (c.z * c.z + self_term);
        m.m110 += dv * c.x * c.y;
        m.m101 += dv * c.x * c.z;
        m.m011 += dv * c.y * c.z;
    }
    m
}

/// Estimates the surface area of the filled region by counting exposed
/// voxel faces. Overestimates smooth surfaces by up to a factor of
/// ~1.5 (the classic Manhattan-surface effect) but is consistent
/// across models at fixed resolution.
pub fn exposed_surface_area(grid: &VoxelGrid) -> f64 {
    let face = grid.voxel_size * grid.voxel_size;
    let mut faces = 0usize;
    for (i, j, k) in grid.iter_filled() {
        for d in N6 {
            if !grid.get(i as isize + d.0, j as isize + d.1, k as isize + d.2) {
                faces += 1;
            }
        }
    }
    faces as f64 * face
}

/// Labels 26-connected components of the filled voxels. Returns the
/// component id per filled voxel (in `iter_filled` order is *not*
/// guaranteed; use the returned map) and the number of components.
pub struct Components {
    /// Dense label array, `usize::MAX` for empty voxels.
    labels: Vec<usize>,
    nx: usize,
    ny: usize,
    /// Number of components found.
    pub count: usize,
    /// Voxel count of each component.
    pub sizes: Vec<usize>,
}

impl Components {
    /// Label of voxel `(i, j, k)`, or `None` when empty.
    pub fn label(&self, i: usize, j: usize, k: usize) -> Option<usize> {
        let l = self.labels[i + self.nx * (j + self.ny * k)];
        if l == usize::MAX {
            None
        } else {
            Some(l)
        }
    }
}

/// Computes 26-connected components of the filled region.
pub fn connected_components_26(grid: &VoxelGrid) -> Components {
    connected_components(grid, true, true)
}

/// Computes 6-connected components of the filled (or empty, when
/// `foreground = false`) region.
pub fn connected_components_6(grid: &VoxelGrid, foreground: bool) -> Components {
    connected_components(grid, false, foreground)
}

fn connected_components(grid: &VoxelGrid, conn26: bool, foreground: bool) -> Components {
    let (nx, ny, nz) = grid.dims();
    let idx = |i: usize, j: usize, k: usize| i + nx * (j + ny * k);
    let mut labels = vec![usize::MAX; nx * ny * nz];
    let mut sizes = Vec::new();
    let mut count = 0usize;
    let mut stack = Vec::new();

    let wanted = |g: &VoxelGrid, i: isize, j: isize, k: isize| g.get(i, j, k) == foreground;

    for k in 0..nz {
        for j in 0..ny {
            for i in 0..nx {
                if !wanted(grid, i as isize, j as isize, k as isize)
                    || labels[idx(i, j, k)] != usize::MAX
                {
                    continue;
                }
                let label = count;
                count += 1;
                let mut size = 0usize;
                labels[idx(i, j, k)] = label;
                stack.push((i, j, k));
                while let Some((ci, cj, ck)) = stack.pop() {
                    size += 1;
                    let visit =
                        |ni: isize,
                         nj: isize,
                         nk: isize,
                         labels: &mut Vec<usize>,
                         stack: &mut Vec<(usize, usize, usize)>| {
                            if ni < 0 || nj < 0 || nk < 0 {
                                return;
                            }
                            let (ui, uj, uk) = (ni as usize, nj as usize, nk as usize);
                            if ui >= nx || uj >= ny || uk >= nz {
                                return;
                            }
                            if wanted(grid, ni, nj, nk) && labels[idx(ui, uj, uk)] == usize::MAX {
                                labels[idx(ui, uj, uk)] = label;
                                stack.push((ui, uj, uk));
                            }
                        };
                    if conn26 {
                        for d in crate::grid::n26() {
                            visit(
                                ci as isize + d.0,
                                cj as isize + d.1,
                                ck as isize + d.2,
                                &mut labels,
                                &mut stack,
                            );
                        }
                    } else {
                        for d in N6 {
                            visit(
                                ci as isize + d.0,
                                cj as isize + d.1,
                                ck as isize + d.2,
                                &mut labels,
                                &mut stack,
                            );
                        }
                    }
                }
                sizes.push(size);
            }
        }
    }
    Components {
        labels,
        nx,
        ny,
        count,
        sizes,
    }
}

/// Geometric parameter helper: centroid of the filled voxels in world
/// space, or `None` for an empty grid.
pub fn voxel_centroid(grid: &VoxelGrid) -> Option<Vec3> {
    let m = voxel_moments(grid);
    if m.m000 <= 0.0 {
        None
    } else {
        Some(m.centroid())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::voxelize::{voxelize, VoxelizeParams};
    use tdess_geom::{mesh_moments, primitives};

    #[test]
    fn voxel_moments_match_exact_for_rotated_box() {
        // A slightly rotated box avoids the axis-aligned worst case
        // where faces sit exactly on voxel boundaries and the shell is
        // counted twice.
        let mut mesh = primitives::box_mesh(Vec3::new(1.0, 2.0, 0.5));
        mesh.rotate(&tdess_geom::Mat3::rotation_axis_angle(
            Vec3::new(1.0, 0.7, 0.3),
            0.4,
        ));
        let grid = voxelize(
            &mesh,
            &VoxelizeParams {
                resolution: 64,
                ..Default::default()
            },
        );
        let vm = voxel_moments(&grid).central();
        let em = mesh_moments(&mesh).central();
        assert!(
            (vm.m000 - em.m000).abs() / em.m000 < 0.25,
            "volume {} vs {}",
            vm.m000,
            em.m000
        );
        // Compare the rotation-invariant spectrum of per-volume second
        // moments, which is what the feature extractors consume.
        let ve = tdess_geom::sym3_eigen(&vm.second_moment_matrix()).values / vm.m000;
        let ee = tdess_geom::sym3_eigen(&em.second_moment_matrix()).values / em.m000;
        for i in 0..3 {
            let rel = (ve[i] - ee[i]).abs() / ee[i];
            assert!(
                rel < 0.25,
                "principal moment {i}: {} vs {} (rel {rel})",
                ve[i],
                ee[i]
            );
        }
    }

    #[test]
    fn axis_aligned_box_overestimates_boundedly() {
        // Faces exactly on voxel boundaries mark both adjacent layers;
        // the overestimate must stay within the double-shell bound.
        let mesh = primitives::box_mesh(Vec3::new(1.0, 2.0, 0.5));
        let grid = voxelize(
            &mesh,
            &VoxelizeParams {
                resolution: 64,
                ..Default::default()
            },
        );
        let v = voxel_moments(&grid).m000;
        assert!(v >= 1.0, "voxel volume {v} below exact");
        let vs = grid.voxel_size;
        let bound = (1.0 + 4.0 * vs) * (2.0 + 4.0 * vs) * (0.5 + 4.0 * vs);
        assert!(
            v <= bound,
            "voxel volume {v} above double-shell bound {bound}"
        );
    }

    #[test]
    fn voxel_centroid_matches_solid_centroid() {
        let mut mesh = primitives::cylinder(0.5, 2.0, 32);
        mesh.translate(Vec3::new(3.0, -1.0, 0.5));
        let grid = voxelize(
            &mesh,
            &VoxelizeParams {
                resolution: 48,
                ..Default::default()
            },
        );
        let vc = voxel_centroid(&grid).unwrap();
        let ec = mesh.solid_centroid().unwrap();
        assert!(vc.approx_eq(ec, 0.05), "{vc:?} vs {ec:?}");
    }

    #[test]
    fn exposed_area_of_single_voxel() {
        let mut g = VoxelGrid::new(3, 3, 3, Vec3::ZERO, 2.0);
        g.set(1, 1, 1, true);
        assert!((exposed_surface_area(&g) - 6.0 * 4.0).abs() < 1e-12);
    }

    #[test]
    fn exposed_area_of_two_adjacent_voxels() {
        let mut g = VoxelGrid::new(4, 3, 3, Vec3::ZERO, 1.0);
        g.set(1, 1, 1, true);
        g.set(2, 1, 1, true);
        // 12 faces total minus 2 shared = 10 exposed.
        assert!((exposed_surface_area(&g) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn components_of_two_blobs() {
        let mut g = VoxelGrid::new(10, 4, 4, Vec3::ZERO, 1.0);
        g.set(0, 0, 0, true);
        g.set(1, 1, 1, true); // diagonal: 26-connected to (0,0,0)
        g.set(8, 2, 2, true);
        let c26 = connected_components_26(&g);
        assert_eq!(c26.count, 2);
        assert_eq!(c26.label(0, 0, 0), c26.label(1, 1, 1));
        assert_ne!(c26.label(0, 0, 0), c26.label(8, 2, 2));
        // With 6-connectivity the diagonal pair splits.
        let c6 = connected_components_6(&g, true);
        assert_eq!(c6.count, 3);
    }

    #[test]
    fn background_components_detect_cavity() {
        // A 5³ grid with a hollow 3³ shell: background = outside + the
        // single interior voxel.
        let mut g = VoxelGrid::new(5, 5, 5, Vec3::ZERO, 1.0);
        for k in 1..4 {
            for j in 1..4 {
                for i in 1..4 {
                    if i == 2 && j == 2 && k == 2 {
                        continue;
                    }
                    g.set(i, j, k, true);
                }
            }
        }
        let bg = connected_components_6(&g, false);
        assert_eq!(bg.count, 2, "outside plus the cavity");
        assert!(bg.sizes.contains(&1));
    }

    #[test]
    fn empty_grid_moments() {
        let g = VoxelGrid::new(4, 4, 4, Vec3::ZERO, 1.0);
        let m = voxel_moments(&g);
        assert_eq!(m.m000, 0.0);
        assert!(voxel_centroid(&g).is_none());
    }

    #[test]
    fn component_sizes_sum_to_count() {
        let mesh = primitives::uv_sphere(1.0, 16, 8);
        let grid = voxelize(
            &mesh,
            &VoxelizeParams {
                resolution: 24,
                ..Default::default()
            },
        );
        let c = connected_components_26(&grid);
        assert_eq!(c.count, 1, "a sphere is one component");
        assert_eq!(c.sizes.iter().sum::<usize>(), grid.count());
    }
}
